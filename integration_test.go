package main_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/baseline"
	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/tap"
)

// TestEndToEndInvariantsQuick fuzzes the full Theorem 1.1 pipeline over
// random 2-edge-connected instances and checks every paper invariant at
// once: the output is a spanning 2-ECSS, its weight respects the certified
// (5+eps) bound, and both reverse-delete variants respect their coverage
// multiplicities.
func TestEndToEndInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := graph.GenConfig{Mode: graph.WeightMode(1 + rng.Intn(3)), MaxW: 1 << 12, Rng: rng}
		g := graph.RandomSpanningTreePlus(8+rng.Intn(40), rng.Intn(40), cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return false
		}
		for _, variant := range []tap.Variant{tap.Cover2, tap.Cover4} {
			opt := ecss.DefaultOptions()
			opt.Variant = variant
			opt.Eps = 0.2 + rng.Float64()/2
			res, _, err := ecss.Solve(g, opt)
			if err != nil {
				return false
			}
			if ecss.Verify(g, res) != nil {
				return false
			}
			bound := 5 + opt.Eps
			if variant == tap.Cover4 {
				bound = 9 + opt.Eps
			}
			if res.CertifiedRatio > bound+1e-9 {
				return false
			}
			limit := 2
			if variant == tap.Cover4 {
				limit = 4
			}
			if res.TAP.MaxCoverRk > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineAgainstExactQuick compares the full pipeline against the
// brute-force 2-ECSS optimum on tiny instances: the (5+eps) bound must hold
// against the TRUE optimum, not only the certificate.
func TestPipelineAgainstExactQuick(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 60 && checked < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 100, Rng: rng}
		g := graph.RandomSpanningTreePlus(6+rng.Intn(3), 2+rng.Intn(3), cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			t.Fatal(err)
		}
		if g.M() > 14 {
			continue
		}
		checked++
		optW, _, err := baseline.BruteForce2ECSS(g, 14)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := ecss.Solve(g, ecss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Weight) > 5.25*float64(optW)+1e-9 {
			t.Fatalf("seed %d: weight %d > (5+eps)*OPT %d", seed, res.Weight, optW)
		}
		if res.Weight < optW {
			t.Fatalf("seed %d: weight %d below optimum %d (verification bug)", seed, res.Weight, optW)
		}
	}
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}
