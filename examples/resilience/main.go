// Resilience example: why 2-ECSS instead of MST. Buys both subgraphs on
// the same network and measures how many single-link failures disconnect
// each — the MST dies on every one of its links; the 2-ECSS survives all.
package main

import (
	"fmt"
	"log"

	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
)

func main() {
	g := graph.ErdosRenyi(96, 0.09, graph.DefaultGenConfig(23))
	if _, err := graph.Ensure2EC(g, graph.DefaultGenConfig(24)); err != nil {
		log.Fatal(err)
	}

	mstIDs, err := mst.Kruskal(g)
	if err != nil {
		log.Fatal(err)
	}
	mstW := g.TotalWeight(mstIDs)

	res, net, err := ecss.Solve(g, ecss.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	net.Close()
	if err := ecss.Verify(g, res); err != nil {
		log.Fatal(err)
	}

	countFailures := func(edges []int) int {
		sub := g.Subgraph(edges)
		return len(sub.Bridges())
	}

	fmt.Printf("network: n=%d m=%d\n", g.N, g.M())
	fmt.Printf("MST:    weight %6d, %3d edges, %3d fatal single-link failures\n",
		mstW, len(mstIDs), countFailures(mstIDs))
	fmt.Printf("2-ECSS: weight %6d, %3d edges, %3d fatal single-link failures\n",
		res.Weight, len(res.Edges), countFailures(res.Edges))
	fmt.Printf("resilience premium: %.2fx the MST cost (certified <= %.2fx of optimal)\n",
		float64(res.Weight)/float64(mstW), res.CertifiedRatio)
}
