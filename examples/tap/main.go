// Tree augmentation example: given an existing backbone tree and priced
// candidate links, compute a (4+eps)-approximate cheapest augmentation that
// removes every single point of failure (Theorem 4.19), and compare it
// against the greedy and Khuller-Thurimella baselines and the exact path
// optimum.
package main

import (
	"fmt"
	"log"

	"twoecss/internal/baseline"
	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/primitives"
	"twoecss/internal/tap"
	"twoecss/internal/tree"
)

func main() {
	// A backbone path of 60 routers plus priced shortcut links.
	n := 60
	g := graph.PathWithIntervals(n, 50, graph.DefaultGenConfig(11))

	net := congest.NewNetwork(g)
	defer net.Close()
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		log.Fatal(err)
	}
	treeIDs := make([]int, n-1)
	for i := range treeIDs {
		treeIDs[i] = i // PathWithIntervals emits path edges first
	}
	t, err := tree.NewFromEdgeSet(g, 0, treeIDs)
	if err != nil {
		log.Fatal(err)
	}

	solver, err := tap.NewSolver(net, bfs, t)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.SolveWeighted(0.25, tap.Cover2)
	if err != nil {
		log.Fatal(err)
	}

	// Exact optimum via interval-cover DP (path trees only).
	var ivs []baseline.Interval
	for id, e := range g.Edges {
		if id < n-1 {
			continue
		}
		l, r := e.U, e.V
		if l > r {
			l, r = r, l
		}
		ivs = append(ivs, baseline.Interval{L: l, R: r, W: int64(e.W)})
	}
	opt, _, err := baseline.ExactPathTAP(n, ivs)
	if err != nil {
		log.Fatal(err)
	}
	gw, _, err := baseline.GreedyTAP(t)
	if err != nil {
		log.Fatal(err)
	}
	kw, _, _, err := baseline.KhullerThurimella(t)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("backbone: %d routers, %d candidate links\n", g.N, g.M()-(n-1))
	fmt.Printf("exact optimum:            %5d\n", opt)
	fmt.Printf("primal-dual (4+eps):      %5d  (%.3fx, proven bound 4.5x)\n",
		res.Weight, float64(res.Weight)/float64(opt))
	fmt.Printf("greedy set cover:         %5d  (%.3fx)\n", gw, float64(gw)/float64(opt))
	fmt.Printf("khuller-thurimella 2x:    %5d  (%.3fx)\n", kw, float64(kw)/float64(opt))
	fmt.Printf("dual lower bound on G':   %.1f\n", res.DualLB)
	fmt.Printf("CONGEST rounds: %d\n", net.Stats().TotalRounds())
}
