// Planar example: the shortcut-based O(log n)-approximation (Theorem 1.2)
// on a low-diameter planar-like network, where low-congestion shortcuts
// beat the sqrt(n) barrier. Compares the realized alpha+beta against
// D + sqrt(n).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/setcover"
	"twoecss/internal/shortcuts"
)

func main() {
	// A complete binary tree with a leaf cycle: planar, 2-edge-connected,
	// diameter O(log n).
	g := graph.TreeLeafCycle(8, graph.DefaultGenConfig(7))
	diam, err := g.DiameterApprox()
	if err != nil {
		log.Fatal(err)
	}

	net := congest.NewNetwork(g)
	defer net.Close()
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		log.Fatal(err)
	}
	t, err := mst.KruskalTree(g, 0, net)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := setcover.NewSolver(net, bfs, t,
		&shortcuts.SteinerBuilder{G: g, BFS: bfs})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(setcover.DefaultOptions(g.N, rand.New(rand.NewSource(7))))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planar-like network: n=%d m=%d D=%d\n", g.N, g.M(), diam)
	fmt.Printf("augmentation: %d edges, weight %d (tree weight %d)\n",
		len(res.Edges), res.Weight, t.Weight())
	fmt.Printf("realized shortcut quality alpha+beta = %d vs D+sqrt(n) = %.0f\n",
		res.MaxShortcutQuality, float64(diam)+math.Sqrt(float64(g.N)))
	fmt.Printf("outer loop: %d phases, %d sub-phases, %d samples, %d fallbacks\n",
		res.Phases, res.SubPhases, res.Samples, res.Fallbacks)
	fmt.Printf("CONGEST cost: %d rounds\n", net.Stats().TotalRounds())
}
