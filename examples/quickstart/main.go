// Quickstart: build a small weighted network, run the deterministic
// (5+eps)-approximation for minimum-weight 2-ECSS (Theorem 1.1), and print
// the solution with its certificate.
package main

import (
	"fmt"
	"log"

	"twoecss/internal/ecss"
	"twoecss/internal/graph"
)

func main() {
	// A ring of 24 datacenters with 8 random cross links: every edge has a
	// leasing cost; we want the cheapest subset that survives any single
	// link failure.
	g := graph.RingWithChords(24, 8, graph.DefaultGenConfig(42))

	res, net, err := ecss.Solve(g, ecss.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	if err := ecss.Verify(g, res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d candidate links\n", g.N, g.M())
	fmt.Printf("bought %d links for total cost %d\n", len(res.Edges), res.Weight)
	fmt.Printf("  spanning tree cost:  %d\n", res.TreeWeight)
	fmt.Printf("  augmentation cost:   %d\n", res.AugWeight)
	fmt.Printf("certified within %.2fx of optimal (proven bound 5.25x)\n", res.CertifiedRatio)
	fmt.Printf("CONGEST cost: %d rounds, %d messages\n",
		net.Stats().TotalRounds(), net.Stats().Messages)
}
