// Package mst provides minimum spanning tree computation in two forms:
//
//   - Kruskal: a centralized exact algorithm used as the verification oracle
//     and as the structural result in cost-model mode, where the round bill
//     of the cited Kutten–Peleg O(D + sqrt(n) log* n) algorithm is charged
//     analytically (the paper uses MST as a black box, Claim 2.1).
//
//   - Boruvka: a real message-level CONGEST simulation of pipelined Borůvka,
//     in which per-phase candidate edges are convergecast with combining
//     over a BFS tree and merge decisions are broadcast back. Its round
//     complexity is O(n + D log n) — not the optimal O(D + sqrt n), but it
//     is a genuine distributed MST whose measured rounds are honest.
//
// Both return the same tree on distinct weights; ties are broken by edge id
// so results are always identical and deterministic.
package mst

import (
	"errors"
	"fmt"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/primitives"
	"twoecss/internal/tree"
)

// ErrNotConnected reports an MST request on a disconnected graph.
var ErrNotConnected = errors.New("mst: graph is not connected")

// unionFind is a standard DSU with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// less orders edges by (weight, id): the deterministic tie-break shared by
// Kruskal and Borůvka.
func less(g *graph.Graph, a, b int) bool {
	if g.Edges[a].W != g.Edges[b].W {
		return g.Edges[a].W < g.Edges[b].W
	}
	return a < b
}

// Kruskal computes the MST edge ids of g.
func Kruskal(g *graph.Graph) ([]int, error) {
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	slices.SortFunc(ids, func(a, b int) int {
		if less(g, a, b) {
			return -1
		}
		if less(g, b, a) {
			return 1
		}
		return 0
	})
	uf := newUnionFind(g.N)
	out := make([]int, 0, g.N-1)
	for _, id := range ids {
		e := g.Edges[id]
		if uf.union(e.U, e.V) {
			out = append(out, id)
		}
	}
	if len(out) != g.N-1 {
		return nil, ErrNotConnected
	}
	slices.Sort(out)
	return out, nil
}

// KruskalTree computes the MST and returns it rooted at root, charging the
// cited Kutten–Peleg round bill to the network if net is non-nil.
func KruskalTree(g *graph.Graph, root int, net *congest.Network) (*tree.Rooted, error) {
	ids, err := Kruskal(g)
	if err != nil {
		return nil, err
	}
	if net != nil {
		diam, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		if err := net.Charge(congest.KuttenPelegMSTRounds(g.N, diam), "Kutten-Peleg MST"); err != nil {
			return nil, err
		}
	}
	return tree.NewFromEdgeSet(g, root, ids)
}

// Boruvka runs the pipelined distributed Borůvka algorithm on net and
// returns the MST edge ids. Every cross-node information flow is simulated:
// neighbor component exchange, per-component minimum outgoing edge
// convergecast (with combining), and merge-decision broadcast.
func Boruvka(net *congest.Network, bfsRoot int) ([]int, error) {
	g := net.G
	if g.N == 0 {
		return nil, nil
	}
	rt, err := primitives.BuildBFS(net, bfsRoot)
	if err != nil {
		if errors.Is(err, tree.ErrNotTree) {
			return nil, ErrNotConnected
		}
		return nil, err
	}

	comp := make([]int, g.N) // node-local component id
	for v := range comp {
		comp[v] = v
	}
	uf := newUnionFind(g.N) // root-local bookkeeping (lives at the BFS root)
	chosen := make(map[int]bool)
	remaining := g.N

	for phase := 0; remaining > 1; phase++ {
		if phase > 2*g.N {
			return nil, fmt.Errorf("mst: Boruvka failed to converge")
		}
		// Step 1: exchange component ids with all neighbors (1 round).
		nbrComp, err := exchangeComp(net, comp)
		if err != nil {
			return nil, err
		}
		// Step 2: each vertex proposes its minimum outgoing edge; items
		// (comp, edgeID) are convergecast to the BFS root with
		// per-component min combining at intermediate nodes.
		proposals, err := minOutgoingPerComp(net, rt, comp, nbrComp)
		if err != nil {
			return nil, err
		}
		if len(proposals) == 0 {
			return nil, ErrNotConnected
		}
		// Step 3 (root-local): merge along proposed edges.
		var newEdges []int
		pcomps := make([]int, 0, len(proposals))
		for c := range proposals {
			pcomps = append(pcomps, c)
		}
		slices.Sort(pcomps)
		for _, c := range pcomps {
			id := proposals[c]
			e := g.Edges[id]
			if uf.union(e.U, e.V) {
				newEdges = append(newEdges, id)
				remaining--
			}
		}
		// Step 4: broadcast accepted edges; endpoints mark them; then
		// every vertex recomputes its component id as the DSU root —
		// delivered as a relabeling table (old comp -> new comp), which
		// has one entry per merged component.
		items := make([]primitives.Item, 0, len(newEdges)+len(pcomps))
		for _, id := range newEdges {
			items = append(items, primitives.Item{0, congest.Word(id)})
		}
		seenOld := map[int]bool{}
		for _, c := range pcomps {
			if !seenOld[c] {
				seenOld[c] = true
				items = append(items, primitives.Item{1, congest.Word(c), congest.Word(uf.find(c))})
			}
		}
		recv, err := primitives.Broadcast(net, rt, items)
		if err != nil {
			return nil, err
		}
		for v := 0; v < g.N; v++ {
			for _, it := range recv[v] {
				switch it[0] {
				case 0:
					id := int(it[1])
					e := g.Edges[id]
					if e.U == v || e.V == v {
						chosen[id] = true
					}
				case 1:
					if comp[v] == int(it[1]) {
						comp[v] = int(it[2])
					}
				}
			}
		}
	}
	out := make([]int, 0, len(chosen))
	for id := range chosen {
		out = append(out, id)
	}
	slices.Sort(out)
	if len(out) != g.N-1 {
		return nil, fmt.Errorf("mst: Boruvka selected %d edges, want %d", len(out), g.N-1)
	}
	return out, nil
}

// exchangeComp has every vertex send its component id to all neighbors in
// one round and returns nbrComp[v][i] = component of the other endpoint of
// incident edge i of v.
func exchangeComp(net *congest.Network, comp []int) (map[int]map[int]int, error) {
	g := net.G
	out := make(map[int]map[int]int, g.N)
	sent := make([]bool, g.N)
	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			if out[v] == nil {
				out[v] = make(map[int]int, g.Degree(v))
			}
			out[v][m.EdgeID] = int(m.Data[0])
		}
		if !sent[v] {
			sent[v] = true
			msgs := make([]congest.Msg, 0, g.Degree(v))
			for _, id := range g.Incident(v) {
				msgs = append(msgs, congest.Msg{EdgeID: id, From: v, Data: []congest.Word{congest.Word(comp[v])}})
			}
			return msgs, false
		}
		return nil, false
	}
	if err := net.Run(handler, nil, 8); err != nil {
		return nil, err
	}
	return out, nil
}

// minOutgoingPerComp convergecasts, for every component, the minimum-weight
// outgoing edge to the BFS root. Intermediate vertices combine entries for
// the same component, so at most one item per component crosses any edge.
func minOutgoingPerComp(net *congest.Network, rt *tree.Rooted, comp []int, nbrComp map[int]map[int]int) (map[int]int, error) {
	g := net.G
	// best[v] is the node-local table comp -> edge id, merged en route.
	best := make([]map[int]int, g.N)
	for v := 0; v < g.N; v++ {
		best[v] = map[int]int{}
		for _, id := range g.Incident(v) {
			oc, ok := nbrComp[v][id]
			if !ok || oc == comp[v] {
				continue
			}
			cur, ok := best[v][comp[v]]
			if !ok || less(g, id, cur) {
				best[v][comp[v]] = id
			}
		}
	}
	// Streaming convergecast with combining: entries flow upward as they
	// become known; if a better edge for a component arrives later the
	// entry is re-sent. Min-combining is idempotent, so duplicates are
	// harmless and quiescence implies the root holds the global minima.
	dirty := make([][]int, g.N) // components whose entry must be (re)sent
	inDirty := make([]map[int]bool, g.N)
	for v := 0; v < g.N; v++ {
		inDirty[v] = make(map[int]bool, len(best[v]))
		comps := make([]int, 0, len(best[v]))
		for c := range best[v] {
			comps = append(comps, c)
		}
		slices.Sort(comps)
		for _, c := range comps {
			dirty[v] = append(dirty[v], c)
			inDirty[v][c] = true
		}
	}

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			c, id := int(m.Data[0]), int(m.Data[1])
			cur, ok := best[v][c]
			if !ok || less(g, id, cur) {
				best[v][c] = id
				if !inDirty[v][c] {
					inDirty[v][c] = true
					dirty[v] = append(dirty[v], c)
				}
			}
		}
		if rt.ParentEdge[v] < 0 || len(dirty[v]) == 0 {
			dirty[v] = dirty[v][:0]
			return nil, false
		}
		c := dirty[v][0]
		dirty[v] = dirty[v][1:]
		inDirty[v][c] = false
		msg := congest.Msg{
			EdgeID: rt.ParentEdge[v],
			From:   v,
			Data:   []congest.Word{congest.Word(c), congest.Word(best[v][c])},
		}
		return []congest.Msg{msg}, len(dirty[v]) > 0
	}
	if err := net.Run(handler, nil, int64(16*g.N+64)); err != nil {
		return nil, err
	}
	return best[rt.Root], nil
}
