package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
)

func TestKruskalSmall(t *testing.T) {
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 5)
	e23 := g.MustAddEdge(2, 3, 1)
	e02 := g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(1, 3, 9)
	ids, err := Kruskal(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{e01: true, e23: true, e02: true}
	if len(ids) != 3 {
		t.Fatalf("MST size %d", len(ids))
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected MST edge %d", id)
		}
	}
}

func TestKruskalDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := Kruskal(g); err != ErrNotConnected {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestKruskalTreeChargesRounds(t *testing.T) {
	g := graph.RingWithChords(30, 10, graph.DefaultGenConfig(2))
	net := congest.NewNetwork(g)
	rt, err := KruskalTree(g, 0, net)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root != 0 {
		t.Fatal("wrong root")
	}
	if net.Stats().ChargedRounds == 0 {
		t.Fatal("Kutten-Peleg bill not charged")
	}
}

func TestBoruvkaMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(50)
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 40, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, rng.Intn(2*n), cfg)
		want, err := Kruskal(g)
		if err != nil {
			t.Fatal(err)
		}
		net := congest.NewNetwork(g)
		got, err := Boruvka(net, rng.Intn(n))
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: |MST| %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: MST differs: %v vs %v", trial, got, want)
			}
		}
	}
}

func TestBoruvkaTiedWeights(t *testing.T) {
	// All weights equal: tie-break by edge id must keep Boruvka and
	// Kruskal identical and loop-free.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(30)
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		want, err := Kruskal(g)
		if err != nil {
			t.Fatal(err)
		}
		net := congest.NewNetwork(g)
		got, err := Boruvka(net, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tied-weight MST differs")
			}
		}
	}
}

func TestBoruvkaDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	net := congest.NewNetwork(g)
	if _, err := Boruvka(net, 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBoruvkaRoundsReasonable(t *testing.T) {
	g := graph.Grid(8, 8, graph.DefaultGenConfig(4))
	net := congest.NewNetwork(g)
	if _, err := Boruvka(net, 0); err != nil {
		t.Fatal(err)
	}
	// Pipelined Boruvka is O(n + D log n); allow a generous constant.
	if r := net.Stats().SimulatedRounds; r > int64(20*g.N) {
		t.Fatalf("Boruvka used %d rounds on n=%d", r, g.N)
	}
}

// Property: MST total weight equals Kruskal's on random graphs, via quick.
func TestBoruvkaWeightQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		cfg := graph.GenConfig{Mode: graph.WeightSkewed, MaxW: 1000, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, rng.Intn(n), cfg)
		want, err := Kruskal(g)
		if err != nil {
			return false
		}
		net := congest.NewNetwork(g)
		got, err := Boruvka(net, 0)
		if err != nil {
			return false
		}
		return g.TotalWeight(got) == g.TotalWeight(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if !uf.union(0, 1) || !uf.union(2, 3) {
		t.Fatal("fresh unions failed")
	}
	if uf.union(1, 0) {
		t.Fatal("repeated union succeeded")
	}
	if uf.find(0) != uf.find(1) || uf.find(0) == uf.find(2) {
		t.Fatal("find inconsistent")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Fatal("transitive union failed")
	}
}
