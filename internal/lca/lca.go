// Package lca implements the LCA labeling scheme the paper relies on
// (Section 4.1, citing Alstrup et al., and Theorem 5.3): every vertex is
// assigned a short label such that, given only the labels of two vertices u
// and v, anyone can (a) test whether u is an ancestor of v, (b) compute the
// label of LCA(u,v), and (c) test whether a non-tree ancestor-descendant
// edge covers a given tree edge (Observation 1).
//
// The scheme combines preorder-interval labels (ancestry tests) with
// heavy-light light-edge lists (LCA computation): a vertex's label carries
// the identifiers of the at most log2(n) light edges on its root path, so
// the label occupies O(log^2 n) bits and fits in O(log n) CONGEST messages.
// The distributed construction is cited prior work; its round bill
// (congest.LCALabelRounds) is charged by callers that account rounds.
package lca

import (
	"fmt"

	"twoecss/internal/tree"
)

// Label is the per-vertex core label: preorder interval, depth, and the
// vertex id (all O(log n)-bit fields).
type Label struct {
	Tin, Tout, Depth, ID int
}

// Valid reports whether l looks like a real label (zero Labels have
// Tout == 0 which is impossible for any non-root vertex; the root has
// Tout = 2n-1 > 0).
func (l Label) Valid() bool { return l.Tout > 0 || l.Tin > 0 || l.ID > 0 }

// LightEdge identifies one light edge on a root path: the labels of its
// child and parent endpoints.
type LightEdge struct {
	Child, Parent Label
}

// VertexLabel is the complete label of a vertex: its core label plus the
// light edges on its path to the root, ordered bottom-up (deepest first).
type VertexLabel struct {
	Core Label
	// Light lists the light edges on the root path of the vertex, deepest
	// first; length is at most log2(n)+1.
	Light []LightEdge
}

// Labeling holds the labels of all vertices of one rooted tree.
type Labeling struct {
	Labels []VertexLabel
	n      int
}

// Build computes the labeling for t. The returned structure supports only
// label-local operations; algorithms ship labels around in messages.
func Build(t *tree.Rooted) *Labeling {
	n := t.G.N
	lb := &Labeling{Labels: make([]VertexLabel, n), n: n}
	core := make([]Label, n)
	for v := 0; v < n; v++ {
		core[v] = Label{Tin: t.Tin[v], Tout: t.Tout[v], Depth: t.Depth[v], ID: v}
	}
	lightChildren := t.LightEdgesToRoot()
	for v := 0; v < n; v++ {
		lst := make([]LightEdge, 0, len(lightChildren[v]))
		for _, c := range lightChildren[v] {
			lst = append(lst, LightEdge{Child: core[c], Parent: core[t.Parent[c]]})
		}
		lb.Labels[v] = VertexLabel{Core: core[v], Light: lst}
	}
	return lb
}

// Of returns the full label of vertex v.
func (lb *Labeling) Of(v int) VertexLabel { return lb.Labels[v] }

// IsAncestor reports whether a is an (inclusive) ancestor of b, from labels
// alone.
func IsAncestor(a, b Label) bool {
	return a.Tin <= b.Tin && b.Tout <= a.Tout
}

// SameVertex reports whether two labels denote the same vertex.
func SameVertex(a, b Label) bool { return a.Tin == b.Tin && a.Tout == b.Tout }

// Higher returns the label closer to the root (smaller depth); both labels
// must be on one root path for the result to be meaningful.
func Higher(a, b Label) Label {
	if a.Depth <= b.Depth {
		return a
	}
	return b
}

// LCA computes the label of the lowest common ancestor of u and v using
// only their labels (Theorem 5.3's local LCA rule).
func LCA(u, v VertexLabel) (Label, error) {
	if IsAncestor(u.Core, v.Core) {
		return u.Core, nil
	}
	if IsAncestor(v.Core, u.Core) {
		return v.Core, nil
	}
	// Common light edges are exactly the light edges of the LCA's root
	// path. Find the deepest common one, e, then the topmost light edges
	// strictly below e on each side; the shallower of their parent
	// endpoints is the LCA.
	lowestCommon := -1 // index into u.Light of the deepest common light edge
	common := func(le LightEdge, lst []LightEdge) bool {
		for _, o := range lst {
			if SameVertex(le.Child, o.Child) {
				return true
			}
		}
		return false
	}
	for i, le := range u.Light {
		if common(le, v.Light) {
			lowestCommon = i
			break // u.Light is deepest-first
		}
	}
	// Candidates: parent endpoints of the topmost light edges strictly
	// below the common prefix on each side.
	var candidates []Label
	topBelow := func(lst []LightEdge, boundary Label) (Label, bool) {
		// lst is deepest-first; the topmost entry strictly below the
		// boundary (child of deepest common light edge) is the last
		// entry before the common suffix starts.
		var best Label
		found := false
		for _, le := range lst {
			if boundary.Valid() && !isBelow(le.Child, boundary) {
				break
			}
			best = le.Parent
			found = true
		}
		return best, found
	}
	var boundary Label
	if lowestCommon >= 0 {
		boundary = u.Light[lowestCommon].Child
	}
	if c, ok := topBelow(u.Light, boundary); ok {
		candidates = append(candidates, c)
	}
	if c, ok := topBelow(v.Light, boundary); ok {
		candidates = append(candidates, c)
	}
	switch len(candidates) {
	case 1:
		return candidates[0], nil
	case 2:
		return Higher(candidates[0], candidates[1]), nil
	default:
		return Label{}, fmt.Errorf("lca: labels of %d and %d admit no LCA candidate (not the same tree?)",
			u.Core.ID, v.Core.ID)
	}
}

// isBelow reports whether a is a strict descendant of b.
func isBelow(a, b Label) bool {
	return IsAncestor(b, a) && !SameVertex(a, b)
}

// Covers implements Observation 1: given the label of the child endpoint v
// of a tree edge t = {v, parent(v)} and the labels (anc, dec) of a virtual
// ancestor-to-descendant edge, it reports whether the edge covers t. This
// needs no information beyond the three labels.
func Covers(treeChild, anc, dec Label) bool {
	return IsAncestor(treeChild, dec) && isBelow(treeChild, anc)
}
