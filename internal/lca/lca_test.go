package lca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

func randTree(rng *rand.Rand, n int) *tree.Rooted {
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 10, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, 0, cfg)
	t, err := tree.BFSTree(g, rng.Intn(n))
	if err != nil {
		panic(err)
	}
	return t
}

func TestIsAncestorFromLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rt := randTree(rng, 60)
	lb := Build(rt)
	for u := 0; u < 60; u++ {
		for v := 0; v < 60; v++ {
			if got, want := IsAncestor(lb.Of(u).Core, lb.Of(v).Core), rt.IsAncestor(u, v); got != want {
				t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestLCAFromLabelsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(50)
		rt := randTree(rng, n)
		lb := Build(rt)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got, err := LCA(lb.Of(u), lb.Of(v))
				if err != nil {
					t.Fatalf("trial %d LCA(%d,%d): %v", trial, u, v, err)
				}
				want := rt.LCA(u, v)
				if got.ID != want {
					t.Fatalf("trial %d (n=%d): LCA(%d,%d) = %d, want %d", trial, n, u, v, got.ID, want)
				}
				if got.Tin != rt.Tin[want] || got.Tout != rt.Tout[want] || got.Depth != rt.Depth[want] {
					t.Fatalf("LCA label fields wrong for %d", want)
				}
			}
		}
	}
}

func TestLCAOnPathAndStar(t *testing.T) {
	// Path: LCA is the shallower vertex.
	g := graph.New(8)
	for v := 1; v < 8; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := Build(rt)
	got, err := LCA(lb.Of(3), lb.Of(6))
	if err != nil || got.ID != 3 {
		t.Fatalf("path LCA(3,6) = %v, %v", got, err)
	}
	// Star: LCA of two leaves is the center.
	s := graph.New(6)
	for v := 1; v < 6; v++ {
		s.MustAddEdge(0, v, 1)
	}
	st, err := tree.BFSTree(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	slb := Build(st)
	got, err = LCA(slb.Of(2), slb.Of(5))
	if err != nil || got.ID != 0 {
		t.Fatalf("star LCA(2,5) = %v, %v", got, err)
	}
}

func TestCoversObservation1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(40)
		rt := randTree(rng, n)
		lb := Build(rt)
		// Sample ancestor-descendant pairs and check Covers against the
		// structural definition.
		for q := 0; q < 60; q++ {
			dec := rng.Intn(n)
			if rt.Depth[dec] == 0 {
				continue
			}
			anc := rt.KthAncestor(dec, 1+rng.Intn(rt.Depth[dec]))
			for c := 0; c < n; c++ {
				if c == rt.Root {
					continue
				}
				want := rt.Covers(anc, dec, c)
				got := Covers(lb.Of(c).Core, lb.Of(anc).Core, lb.Of(dec).Core)
				if got != want {
					t.Fatalf("Covers(t=%d, anc=%d, dec=%d) = %v, want %v", c, anc, dec, got, want)
				}
			}
		}
	}
}

func TestLightListShort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(400)
		rt := randTree(rng, n)
		lb := Build(rt)
		lg := 0
		for 1<<lg < n {
			lg++
		}
		for v := 0; v < n; v++ {
			if len(lb.Of(v).Light) > lg+1 {
				t.Fatalf("label of %d has %d light edges (n=%d)", v, len(lb.Of(v).Light), n)
			}
		}
	}
}

func TestHigherAndSameVertex(t *testing.T) {
	a := Label{Tin: 1, Tout: 10, Depth: 0, ID: 0}
	b := Label{Tin: 2, Tout: 5, Depth: 3, ID: 4}
	if Higher(a, b) != a || Higher(b, a) != a {
		t.Fatal("Higher picked the deeper label")
	}
	if SameVertex(a, b) || !SameVertex(a, a) {
		t.Fatal("SameVertex wrong")
	}
}

func TestLCAQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		rt := randTree(rng, n)
		lb := Build(rt)
		for q := 0; q < 40; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			got, err := LCA(lb.Of(u), lb.Of(v))
			if err != nil || got.ID != rt.LCA(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
