package vgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

func buildRandom(t *testing.T, seed int64, n, extra int) (*graph.Graph, *tree.Rooted, *VGraph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 50, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	rt, err := tree.BFSTree(g, rng.Intn(n))
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	return g, rt, vg
}

func TestAllVirtualEdgesAncestorDescendant(t *testing.T) {
	_, rt, vg := buildRandom(t, 1, 60, 80)
	for _, e := range vg.VEdges {
		if !rt.IsAncestor(e.Anc, e.Dec) || e.Anc == e.Dec {
			t.Fatalf("virtual edge %d: %d not a proper ancestor of %d", e.ID, e.Anc, e.Dec)
		}
	}
}

func TestVirtualCoversSameTreeEdges(t *testing.T) {
	// The union of tree edges covered by the virtual replacements of an
	// original edge equals the tree edges covered by the original edge.
	g, rt, vg := buildRandom(t, 2, 50, 70)
	for _, orig := range rt.NonTreeEdgeIDs() {
		e := g.Edges[orig]
		want := map[int]bool{}
		for c := 0; c < g.N; c++ {
			if c != rt.Root && rt.Covers(e.U, e.V, c) {
				want[c] = true
			}
		}
		got := map[int]bool{}
		for _, ve := range vg.VirtualOf(orig) {
			for _, c := range vg.CoveredTreeEdges(ve) {
				got[c] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("edge %d: covered sets differ: %v vs %v", orig, got, want)
		}
		for c := range want {
			if !got[c] {
				t.Fatalf("edge %d: missing covered tree edge %d", orig, c)
			}
		}
	}
}

func TestCoversMatchesPathMembership(t *testing.T) {
	_, rt, vg := buildRandom(t, 3, 40, 60)
	for ve := range vg.VEdges {
		onPath := map[int]bool{}
		for _, c := range vg.CoveredTreeEdges(ve) {
			onPath[c] = true
		}
		for c := 0; c < 40; c++ {
			if c == rt.Root {
				continue
			}
			if vg.Covers(ve, c) != onPath[c] {
				t.Fatalf("Covers(%d,%d) mismatch", ve, c)
			}
		}
	}
}

func TestCoverIndexConsistent(t *testing.T) {
	_, rt, vg := buildRandom(t, 4, 35, 50)
	idx := vg.CoverIndex()
	for c := 0; c < 35; c++ {
		if c == rt.Root {
			continue
		}
		want := map[int]bool{}
		for ve := range vg.VEdges {
			if vg.Covers(ve, c) {
				want[ve] = true
			}
		}
		if len(idx[c]) != len(want) {
			t.Fatalf("cover index at %d: %d entries, want %d", c, len(idx[c]), len(want))
		}
		for _, ve := range idx[c] {
			if !want[ve] {
				t.Fatalf("cover index at %d has stray edge %d", c, ve)
			}
		}
	}
}

func TestFullyCoversOn2ECGraph(t *testing.T) {
	// On a 2-edge-connected graph, the set of ALL virtual edges covers
	// every tree edge (otherwise the uncovered tree edge is a bridge).
	rng := rand.New(rand.NewSource(7))
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 50, Rng: rng}
	g := graph.RingWithChords(40, 15, cfg)
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !vg.FullyCovers(func(int) bool { return true }) {
		t.Fatal("all-edges set fails to cover a 2EC graph's tree")
	}
	if vg.FullyCovers(func(int) bool { return false }) {
		t.Fatal("empty set covers the tree")
	}
}

func TestProjectDeduplicates(t *testing.T) {
	g, _, vg := buildRandom(t, 8, 30, 40)
	// Take every virtual edge; projection must contain each original
	// non-tree edge at most once and weight must not exceed virtual sum.
	all := make([]int, len(vg.VEdges))
	var vsum graph.Weight
	for i := range all {
		all[i] = i
		vsum += vg.VEdges[i].W
	}
	proj := vg.Project(all)
	seen := map[int]bool{}
	var psum graph.Weight
	for _, id := range proj {
		if seen[id] {
			t.Fatalf("duplicate original edge %d", id)
		}
		seen[id] = true
		psum += g.Edges[id].W
	}
	if psum > vsum {
		t.Fatalf("projection weight %d exceeds virtual weight %d", psum, vsum)
	}
}

func TestSplitCount(t *testing.T) {
	// Every original non-tree edge yields exactly 1 or 2 virtual edges.
	_, rt, vg := buildRandom(t, 9, 45, 70)
	for _, orig := range rt.NonTreeEdgeIDs() {
		k := len(vg.VirtualOf(orig))
		if k < 1 || k > 2 {
			t.Fatalf("original edge %d split into %d virtual edges", orig, k)
		}
	}
}

func TestVGraphQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 20, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, rng.Intn(2*n), cfg)
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			return false
		}
		vg, err := BuildFromGraph(rt)
		if err != nil {
			return false
		}
		// Each virtual edge's covered set must be non-empty and each
		// element a strict descendant of Anc.
		for ve, e := range vg.VEdges {
			cs := vg.CoveredTreeEdges(ve)
			if len(cs) == 0 {
				return false
			}
			for _, c := range cs {
				if !rt.IsAncestor(e.Anc, c) || c == e.Anc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
