// Package vgraph builds the virtual graph G' of Section 4.1 (following
// Khuller–Thurimella and Censor-Hillel–Dory): every non-tree edge {u,v} of
// the input graph is replaced by one virtual edge (if u,v are already in
// ancestor-descendant relation) or by the two virtual edges {u,w}, {v,w}
// where w = LCA(u,v). All virtual edges run between an ancestor and a
// descendant and cover exactly the same tree edges as their original edge,
// so by Lemma 4.1 an α-approximate augmentation in G' projects to a
// 2α-approximate augmentation in G.
//
// Each virtual edge is simulated by its descendant endpoint, which knows the
// LCA labels of both endpoints; covering tests against tree edges are then
// purely label-local (Observation 1).
package vgraph

import (
	"fmt"
	"slices"

	"twoecss/internal/graph"
	"twoecss/internal/lca"
	"twoecss/internal/tree"
)

// VEdge is a virtual ancestor-to-descendant non-tree edge.
type VEdge struct {
	// ID is the dense virtual edge id.
	ID int
	// Anc and Dec are the endpoints (Anc is an ancestor of Dec).
	Anc, Dec int
	// AncL and DecL are the LCA labels of the endpoints; the descendant
	// endpoint, which simulates the edge, knows both.
	AncL, DecL lca.Label
	// Orig is the id (in the input graph) of the original non-tree edge
	// this virtual edge derives from.
	Orig int
	// W is the weight, inherited from the original edge.
	W graph.Weight
}

// VGraph is the virtual graph: the tree of the input graph plus virtual
// ancestor-descendant non-tree edges.
type VGraph struct {
	T      *tree.Rooted
	Lab    *lca.Labeling
	VEdges []VEdge
	// ByDesc[v] lists ids of virtual edges simulated by (descendant) v.
	ByDesc [][]int
	// origToVirt maps an original non-tree edge id to its 1 or 2 virtual
	// edge ids.
	origToVirt map[int][]int
}

// Build constructs G' from the rooted tree t and labeling lb of the input
// graph. Non-tree edges whose endpoints coincide after LCA-splitting (an
// endpoint equal to the LCA) produce a single virtual edge.
func Build(t *tree.Rooted, lb *lca.Labeling) (*VGraph, error) {
	vg := &VGraph{
		T:          t,
		Lab:        lb,
		ByDesc:     make([][]int, t.G.N),
		origToVirt: make(map[int][]int),
	}
	add := func(anc, dec, orig int, w graph.Weight) {
		id := len(vg.VEdges)
		vg.VEdges = append(vg.VEdges, VEdge{
			ID: id, Anc: anc, Dec: dec,
			AncL: lb.Of(anc).Core, DecL: lb.Of(dec).Core,
			Orig: orig, W: w,
		})
		vg.ByDesc[dec] = append(vg.ByDesc[dec], id)
		vg.origToVirt[orig] = append(vg.origToVirt[orig], id)
	}
	for _, id := range t.NonTreeEdgeIDs() {
		e := t.G.Edges[id]
		wl, err := lca.LCA(lb.Of(e.U), lb.Of(e.V))
		if err != nil {
			return nil, fmt.Errorf("vgraph: %w", err)
		}
		w := wl.ID
		switch {
		case w == e.U:
			add(e.U, e.V, id, e.W)
		case w == e.V:
			add(e.V, e.U, id, e.W)
		default:
			add(w, e.U, id, e.W)
			add(w, e.V, id, e.W)
		}
	}
	return vg, nil
}

// Covers reports whether virtual edge ve covers the tree edge whose child
// endpoint is c (label-local, Observation 1).
func (vg *VGraph) Covers(ve int, c int) bool {
	e := vg.VEdges[ve]
	return lca.Covers(vg.Lab.Of(c).Core, e.AncL, e.DecL)
}

// CoveredTreeEdges returns the child endpoints of all tree edges covered by
// ve, i.e. the vertices on the tree path from Dec up to (excluding) Anc.
func (vg *VGraph) CoveredTreeEdges(ve int) []int {
	e := vg.VEdges[ve]
	var out []int
	for x := e.Dec; x != e.Anc; x = vg.T.Parent[x] {
		out = append(out, x)
	}
	return out
}

// CoverIndex returns, for each tree edge child endpoint v, the sorted list
// of virtual edge ids covering the tree edge {v, parent(v)}. Entry of the
// root is nil.
func (vg *VGraph) CoverIndex() [][]int {
	idx := make([][]int, vg.T.G.N)
	for ve := range vg.VEdges {
		for _, c := range vg.CoveredTreeEdges(ve) {
			idx[c] = append(idx[c], ve)
		}
	}
	for v := range idx {
		slices.Sort(idx[v])
	}
	return idx
}

// FullyCovers reports whether the set of virtual edges (given as a
// membership predicate over virtual edge ids) covers every tree edge.
func (vg *VGraph) FullyCovers(in func(ve int) bool) bool {
	n := vg.T.G.N
	covered := make([]bool, n)
	for ve := range vg.VEdges {
		if !in(ve) {
			continue
		}
		for _, c := range vg.CoveredTreeEdges(ve) {
			covered[c] = true
		}
	}
	for v := 0; v < n; v++ {
		if v != vg.T.Root && !covered[v] {
			return false
		}
	}
	return true
}

// Project maps a set of virtual edge ids back to original graph edge ids
// (Lemma 4.1): each virtual edge is replaced by its originating edge, with
// duplicates removed. The weight of the projection is at most the weight of
// the virtual set.
func (vg *VGraph) Project(ves []int) []int {
	seen := make(map[int]bool, len(ves))
	out := make([]int, 0, len(ves))
	for _, ve := range ves {
		o := vg.VEdges[ve].Orig
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	slices.Sort(out)
	return out
}

// VirtualOf returns the virtual edge ids derived from original edge id.
func (vg *VGraph) VirtualOf(orig int) []int { return vg.origToVirt[orig] }

// Weight sums the weights of the given virtual edges.
func (vg *VGraph) Weight(ves []int) graph.Weight {
	var s graph.Weight
	for _, ve := range ves {
		s += vg.VEdges[ve].W
	}
	return s
}

// BuildFromGraph is a convenience composing BFS-tree-independent pieces:
// given a graph and a root plus a precomputed spanning tree, it builds the
// labeling and the virtual graph.
func BuildFromGraph(t *tree.Rooted) (*VGraph, error) {
	return Build(t, lca.Build(t))
}
