package layering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/primitives"
	"twoecss/internal/segments"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

func mustTree(t *testing.T, g *graph.Graph, root int) *tree.Rooted {
	t.Helper()
	rt, err := tree.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	return g
}

func TestLayeringPath(t *testing.T) {
	rt := mustTree(t, pathGraph(10), 0)
	l, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers != 1 {
		t.Fatalf("path layers = %d, want 1", l.NumLayers)
	}
	if len(l.Paths) != 1 || l.Paths[0].Leaf != 9 || l.Paths[0].Top != 0 {
		t.Fatalf("path structure wrong: %+v", l.Paths)
	}
}

func TestLayeringStar(t *testing.T) {
	g := graph.New(7)
	for v := 1; v < 7; v++ {
		g.MustAddEdge(0, v, 1)
	}
	l, err := Build(mustTree(t, g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers != 1 || len(l.Paths) != 6 {
		t.Fatalf("star: layers=%d paths=%d", l.NumLayers, len(l.Paths))
	}
}

func TestLayeringCaterpillar(t *testing.T) {
	// Spine of 6 with 2 legs each, rooted at spine end: legs are layer 1,
	// spine is layer 2.
	g := graph.Caterpillar(6, 2, graph.DefaultGenConfig(1))
	rt := mustTree(t, g, 0)
	l, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers != 2 {
		t.Fatalf("caterpillar layers = %d, want 2", l.NumLayers)
	}
	for v := 6; v < g.N; v++ { // leg vertices
		if l.LayerOf[v] != 1 {
			t.Fatalf("leg edge %d in layer %d", v, l.LayerOf[v])
		}
	}
	for v := 1; v < 6; v++ { // spine vertices except root
		if l.LayerOf[v] != 2 {
			t.Fatalf("spine edge %d in layer %d", v, l.LayerOf[v])
		}
	}
}

func TestLayeringBinaryTreeLogLayers(t *testing.T) {
	// A complete binary tree of depth d has exactly d layers.
	for depth := 2; depth <= 7; depth++ {
		n := (1 << (depth + 1)) - 1
		g := graph.New(n)
		for v := 0; v < n; v++ {
			if 2*v+1 < n {
				g.MustAddEdge(v, 2*v+1, 1)
			}
			if 2*v+2 < n {
				g.MustAddEdge(v, 2*v+2, 1)
			}
		}
		l, err := Build(mustTree(t, g, 0))
		if err != nil {
			t.Fatal(err)
		}
		if l.NumLayers != depth {
			t.Fatalf("depth-%d binary tree: %d layers", depth, l.NumLayers)
		}
	}
}

// Claim 4.7: the number of layers is at most log2(#leaves)+1.
func TestClaim47LayerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(400)
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, 0, cfg)
		rt := mustTree(t, g, rng.Intn(n))
		l, err := Build(rt)
		if err != nil {
			t.Fatal(err)
		}
		leaves := 0
		for v := 0; v < n; v++ {
			if len(rt.Children[v]) == 0 {
				leaves++
			}
		}
		bound := 1
		for 1<<bound < leaves {
			bound++
		}
		if l.NumLayers > bound+1 {
			t.Fatalf("n=%d leaves=%d: %d layers > bound %d", n, leaves, l.NumLayers, bound+1)
		}
		// Every non-root edge must be layered and on a path.
		for v := 0; v < n; v++ {
			if v == rt.Root {
				continue
			}
			if l.LayerOf[v] < 1 || l.PathOf[v] < 0 || l.LeafOf[v] < 0 {
				t.Fatalf("edge %d not layered", v)
			}
		}
	}
}

// Monotonicity: along any root path, layers are non-decreasing towards the
// root (stated in the proof of Claim 4.8).
func TestLayerMonotoneUp(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, 0, cfg)
		rt := mustTree(t, g, 0)
		l, err := Build(rt)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			p := rt.Parent[v]
			if v == rt.Root || p == rt.Root {
				continue
			}
			if l.LayerOf[p] < l.LayerOf[v] {
				t.Fatalf("layer decreases from %d(%d) to parent %d(%d)",
					v, l.LayerOf[v], p, l.LayerOf[p])
			}
		}
	}
}

// Claim 4.8: a non-tree ancestor-descendant edge meets at most one path per
// layer.
func TestClaim48OnePathPerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(80)
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 9, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		rt := mustTree(t, g, 0)
		vg, err := vgraph.BuildFromGraph(rt)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Build(rt)
		if err != nil {
			t.Fatal(err)
		}
		for ve := range vg.VEdges {
			perLayer := map[int]map[int]bool{}
			for _, c := range vg.CoveredTreeEdges(ve) {
				ly := l.LayerOf[c]
				if perLayer[ly] == nil {
					perLayer[ly] = map[int]bool{}
				}
				perLayer[ly][l.PathOf[c]] = true
			}
			for ly, paths := range perLayer {
				if len(paths) > 1 {
					t.Fatalf("vedge %d meets %d paths in layer %d", ve, len(paths), ly)
				}
			}
		}
	}
}

func petalsFixture(t *testing.T, seed int64, n, extra int) (*segments.Aggregator, *vgraph.VGraph, *tree.Rooted, *Layering) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 30, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	rt := mustTree(t, g, 0)
	vg, err := vgraph.BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := segments.Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	return segments.NewAggregator(net, bfs, d, vg), vg, rt, l
}

// petalsBrute recomputes petals per definition for one tree edge.
func petalsBrute(vg *vgraph.VGraph, rt *tree.Rooted, l *Layering, c int, inX func(int) bool) Petals {
	p := Petals{Higher: -1, Lower: -1}
	bestHi := 1 << 30
	bestLo := -1
	for ve := range vg.VEdges {
		if !inX(ve) || !vg.Covers(ve, c) {
			continue
		}
		e := vg.VEdges[ve]
		d := rt.Depth[e.Anc]
		if d < bestHi || (d == bestHi && ve < p.Higher) {
			bestHi = d
			p.Higher = ve
		}
		u := rt.LCA(l.LeafOf[c], e.Dec)
		du := rt.Depth[u]
		if du > bestLo || (du == bestLo && ve < p.Lower) {
			bestLo = du
			p.Lower = ve
		}
	}
	return p
}

func TestComputePetalsMatchesBrute(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		agg, vg, rt, l := petalsFixture(t, seed, 60, 90)
		rng := rand.New(rand.NewSource(seed * 7))
		inX := make([]bool, len(vg.VEdges))
		for ve := range inX {
			inX[ve] = rng.Intn(3) > 0
		}
		pred := func(ve int) bool { return inX[ve] }
		for layer := 1; layer <= l.NumLayers; layer++ {
			got, err := ComputePetals(agg, l, layer, pred)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range l.EdgesInLayer(layer) {
				want := petalsBrute(vg, rt, l, c, pred)
				g := got[c]
				if g.Higher != want.Higher || g.Lower != want.Lower {
					t.Fatalf("seed %d layer %d edge %d: got %+v want %+v",
						seed, layer, c, g, want)
				}
			}
		}
	}
}

// Claim 4.9: the petals of t (w.r.t. X) cover every X-neighbour of t in the
// same or higher layers.
func TestClaim49PetalsCoverNeighbours(t *testing.T) {
	agg, vg, rt, l := petalsFixture(t, 77, 50, 80)
	rng := rand.New(rand.NewSource(3))
	inX := make([]bool, len(vg.VEdges))
	for ve := range inX {
		inX[ve] = rng.Intn(2) == 0
	}
	pred := func(ve int) bool { return inX[ve] }
	for layer := 1; layer <= l.NumLayers; layer++ {
		pet, err := ComputePetals(agg, l, layer, pred)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range l.EdgesInLayer(layer) {
			p := pet[c]
			if p.Higher < 0 {
				continue // uncovered by X
			}
			for c2 := 0; c2 < rt.G.N; c2++ {
				if c2 == rt.Root || l.LayerOf[c2] < layer {
					continue
				}
				if !Neighbours(vg, pred, c, c2) {
					continue
				}
				if !vg.Covers(p.Higher, c2) && !vg.Covers(p.Lower, c2) {
					t.Fatalf("petals of %d (hi=%d lo=%d) miss neighbour %d", c, p.Higher, p.Lower, c2)
				}
			}
		}
	}
}

func TestLayeringQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, 0, cfg)
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			return false
		}
		l, err := Build(rt)
		if err != nil {
			return false
		}
		// Paths within a layer must be vertex-disjoint (edges' children
		// unique) and contiguous bottom-up chains.
		for _, p := range l.Paths {
			for i, v := range p.Edges {
				if l.PathOf[v] != p.ID {
					return false
				}
				if i > 0 && rt.Parent[p.Edges[i-1]] != v {
					return false
				}
			}
			last := p.Edges[len(p.Edges)-1]
			if rt.Parent[last] != p.Top {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
