// Package layering implements the tree layering of Section 4.3: layer 1
// consists of the tree paths from each leaf to its lowest junction ancestor
// (a junction has more than one child); contracting those paths and
// repeating defines layers 2, 3, ...; the number of layers is O(log n)
// (Claim 4.7). Each layer is a collection of vertex-disjoint paths; every
// ancestor-descendant non-tree edge meets at most one path per layer
// (Claim 4.8).
//
// The package also computes the petals of a tree edge with respect to a set
// X of virtual edges (Claims 4.9/4.11): two edges of X that cover the edge
// and all its X-neighbours in the same or higher layers. Petal computations
// are routed through the segment aggregate machinery so their round bill is
// accounted.
package layering

import (
	"fmt"

	"twoecss/internal/congest"
	"twoecss/internal/lca"
	"twoecss/internal/segments"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

// Path is one path of one layer, listed bottom-up.
type Path struct {
	ID    int
	Layer int
	// Leaf is the lowest vertex of the path (leaf(P) in the paper).
	Leaf int
	// Top is the highest vertex (a junction of the contracted tree, or the
	// root).
	Top int
	// Edges lists the child endpoints of the path's tree edges bottom-up:
	// Edges[0] = Leaf's parent edge ... last edge's parent is Top.
	Edges []int
}

// Layering is the complete layer decomposition of a rooted tree.
type Layering struct {
	T *tree.Rooted
	// LayerOf[v] is the layer of tree edge {v,parent(v)} (root entry 0).
	LayerOf []int
	// LeafOf[v] is leaf(t) for tree edge v: the leaf of its layer path.
	LeafOf []int
	// PathOf[v] is the id of the layer path containing tree edge v.
	PathOf []int
	// Paths lists all layer paths.
	Paths []Path
	// NumLayers is the number of layers (max LayerOf).
	NumLayers int
}

// Build computes the layering by literal iterated contraction. The
// distributed construction costs O((D + sqrt n) log n) rounds (Claim 4.10);
// callers accounting rounds charge congest.LayeringRounds.
func Build(t *tree.Rooted) (*Layering, error) {
	n := t.G.N
	l := &Layering{
		T:       t,
		LayerOf: make([]int, n),
		LeafOf:  make([]int, n),
		PathOf:  make([]int, n),
	}
	for v := range l.PathOf {
		l.PathOf[v] = -1
		l.LeafOf[v] = -1
	}
	if n <= 1 {
		return l, nil
	}
	childCount := make([]int, n)
	for v := 0; v < n; v++ {
		childCount[v] = len(t.Children[v])
	}
	remaining := n - 1
	leaves := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if childCount[v] == 0 && v != t.Root {
			leaves = append(leaves, v)
		}
	}
	for layer := 1; remaining > 0; layer++ {
		if layer > n {
			return nil, fmt.Errorf("layering: failed to converge")
		}
		// Junction status is taken against the tree at the START of the
		// iteration; live counts only track full absorption.
		startCount := append([]int(nil), childCount...)
		junction := func(v int) bool { return startCount[v] > 1 }
		var candidates []int
		for _, leaf := range leaves {
			p := Path{ID: len(l.Paths), Layer: layer, Leaf: leaf}
			v := leaf
			for {
				l.LayerOf[v] = layer
				l.LeafOf[v] = leaf
				l.PathOf[v] = p.ID
				p.Edges = append(p.Edges, v)
				remaining--
				parent := t.Parent[v]
				if parent == t.Root || junction(parent) {
					p.Top = parent
					childCount[parent]--
					candidates = append(candidates, parent)
					break
				}
				v = parent
			}
			l.Paths = append(l.Paths, p)
		}
		// Junctions fully absorbed this round become next-iteration leaves.
		var next []int
		seen := map[int]bool{}
		for _, v := range candidates {
			if childCount[v] == 0 && v != t.Root && !seen[v] {
				seen[v] = true
				next = append(next, v)
			}
		}
		leaves = next
		if layer > l.NumLayers {
			l.NumLayers = layer
		}
		if len(leaves) == 0 && remaining > 0 {
			return nil, fmt.Errorf("layering: stuck with %d edges left", remaining)
		}
	}
	return l, nil
}

// EdgesInLayer returns the tree-edge children in the given layer.
func (l *Layering) EdgesInLayer(layer int) []int {
	var out []int
	for v := 0; v < len(l.LayerOf); v++ {
		if v != l.T.Root && l.LayerOf[v] == layer {
			out = append(out, v)
		}
	}
	return out
}

// Petals are the two distinguished covering edges of a tree edge with
// respect to an edge set X (Section 4.3). Higher is the X-edge covering the
// tree edge whose ancestor endpoint is highest; Lower is the X-edge
// reaching deepest down the tree edge's layer path. Either may be -1 if no
// X-edge covers the tree edge.
type Petals struct {
	Higher, Lower int
}

const (
	petalShift = 22
	petalMask  = (1 << petalShift) - 1
	petalNone  = int64(1) << 62
)

// ComputePetals computes, for every tree edge in the given layer, its petals
// with respect to the virtual edge set X (given as a membership predicate).
// Aggregation is routed through the segment machinery (two PerVEdge /
// PerTreeEdge rounds, O(D + sqrt n) each, Claim 4.11).
func ComputePetals(agg *segments.Aggregator, l *Layering, layer int, inX func(ve int) bool) (map[int]Petals, error) {
	vg := agg.VG
	if len(vg.VEdges) >= 1<<petalShift {
		return nil, fmt.Errorf("layering: too many virtual edges for petal encoding")
	}
	min := func(a, b congest.Word) congest.Word {
		if a < b {
			return a
		}
		return b
	}
	max := func(a, b congest.Word) congest.Word {
		if a > b {
			return a
		}
		return b
	}

	// Higher petal: per tree edge, the covering X-edge minimizing
	// (depth(anc), ve).
	hi, err := agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
		if !inX(ve) {
			return 0, false
		}
		e := vg.VEdges[ve]
		return congest.Word(e.AncL.Depth)<<petalShift | congest.Word(ve), true
	}, min, petalNone)
	if err != nil {
		return nil, err
	}

	// Lower petal, step 1 (Claim 4.8): every X-edge learns leaf(t) of the
	// single layer-`layer` path it meets: min LeafOf over covered edges of
	// this layer.
	leafWord, err := agg.PerVEdge(func(c int) congest.Word {
		if l.LayerOf[c] != layer {
			return petalNone
		}
		return congest.Word(l.LeafOf[c])
	}, min, petalNone)
	if err != nil {
		return nil, err
	}
	// Step 2: the simulating vertex computes u_e = LCA(leaf, dec) locally
	// from labels; deeper u_e reaches further down the path.
	ue := make([]int, len(vg.VEdges))
	for ve := range vg.VEdges {
		ue[ve] = -1
		if !inX(ve) || leafWord[ve] == petalNone {
			continue
		}
		leaf := int(leafWord[ve])
		w, err := lca.LCA(vg.Lab.Of(leaf), vg.Lab.Of(vg.VEdges[ve].Dec))
		if err != nil {
			return nil, err
		}
		ue[ve] = w.ID
	}
	// Step 3: per tree edge, the covering X-edge maximizing
	// (depth(u_e), -ve).
	lo, err := agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
		if !inX(ve) || ue[ve] < 0 {
			return 0, false
		}
		d := vg.Lab.Of(ue[ve]).Core.Depth
		return congest.Word(d)<<petalShift | congest.Word(petalMask-ve), true
	}, max, -1)
	if err != nil {
		return nil, err
	}

	out := make(map[int]Petals)
	for _, c := range l.EdgesInLayer(layer) {
		p := Petals{Higher: -1, Lower: -1}
		if hi[c] != petalNone {
			p.Higher = int(hi[c] & petalMask)
		}
		if lo[c] >= 0 {
			p.Lower = petalMask - int(lo[c]&petalMask)
		}
		if (p.Higher < 0) != (p.Lower < 0) {
			return nil, fmt.Errorf("layering: inconsistent petals for edge %d", c)
		}
		out[c] = p
	}
	return out, nil
}

// Neighbours reports whether tree edges t1 and t2 are neighbours with
// respect to X: some X-edge covers both (used by tests and the MIS logic).
func Neighbours(vg *vgraph.VGraph, inX func(ve int) bool, t1, t2 int) bool {
	for ve := range vg.VEdges {
		if inX(ve) && vg.Covers(ve, t1) && vg.Covers(ve, t2) {
			return true
		}
	}
	return false
}

// ChargeBuild bills the Claim 4.10 construction cost on net.
func ChargeBuild(net *congest.Network, n, diam int) error {
	return net.Charge(congest.LayeringRounds(n, diam), "layer decomposition (Claim 4.10)")
}
