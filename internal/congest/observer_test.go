package congest

import (
	"testing"

	"twoecss/internal/graph"
)

// ringNet builds a directed-token ring of n nodes whose handler relays one
// token for laps full circuits: the minimal steady-state workload (one
// scheduled node per round) used by the observer tests.
func ringNet(n, laps int) (*Network, Handler, *int) {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 1)
	}
	net := NewNetwork(g)
	net.Workers = 1
	hops := new(int)
	out := make([]Msg, 0, 1)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if *hops >= laps*n {
			return nil, false
		}
		*hops++
		out = out[:0]
		out = append(out, Msg{EdgeID: v, From: v, Data: floodPayload})
		return out, false
	}
	return net, handler, hops
}

func TestRoundRecorderMatchesStats(t *testing.T) {
	net, handler, _ := ringNet(32, 4)
	defer net.Close()
	rec := NewRoundRecorder(4096, 1)
	net.Observer = rec
	if err := net.Run(handler, []int{0}, 10000); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	samples := rec.Samples()
	if int64(len(samples)) != st.SimulatedRounds {
		t.Fatalf("recorded %d samples, engine ran %d rounds", len(samples), st.SimulatedRounds)
	}
	var msgs, words int64
	maxEdge := 0
	for i, s := range samples {
		if s.Round != int64(i+1) {
			t.Fatalf("sample %d has round %d, want %d", i, s.Round, i+1)
		}
		if s.Active < 1 {
			t.Fatalf("sample %d reports %d active nodes", i, s.Active)
		}
		if s.MaxNodeWords > s.Words {
			t.Fatalf("sample %d: per-node max %d exceeds round words %d", i, s.MaxNodeWords, s.Words)
		}
		msgs += s.Messages
		words += s.Words
		if s.MaxEdgeWords > maxEdge {
			maxEdge = s.MaxEdgeWords
		}
	}
	if msgs != st.Messages || words != st.Words {
		t.Fatalf("sample totals %d msgs / %d words, stats %d / %d", msgs, words, st.Messages, st.Words)
	}
	if maxEdge != st.MaxEdgeWords {
		t.Fatalf("sample max edge words %d, stats %d", maxEdge, st.MaxEdgeWords)
	}
}

func TestRoundRecorderStrideThinning(t *testing.T) {
	net, handler, hops := ringNet(64, 32) // 2048 rounds
	defer net.Close()
	rec := NewRoundRecorder(64, 1)
	net.Observer = rec
	if err := net.Run(handler, []int{0}, 100000); err != nil {
		t.Fatal(err)
	}
	rounds := net.Stats().SimulatedRounds
	if rec.Observed() != rounds {
		t.Fatalf("observed %d rounds, engine ran %d", rec.Observed(), rounds)
	}
	samples := rec.Samples()
	if len(samples) == 0 || len(samples) > 64 {
		t.Fatalf("ring holds %d samples, want 1..64", len(samples))
	}
	if stride := rec.Stride(); stride < int64(rounds)/64 {
		t.Fatalf("stride %d cannot have thinned %d rounds into %d slots", stride, rounds, len(samples))
	}
	// Thinning must keep the timeline evenly spaced from round 1 onward.
	stride := rec.Stride()
	for i, s := range samples {
		if want := int64(i)*stride + 1; s.Round != want {
			t.Fatalf("sample %d at round %d, want %d (stride %d)", i, s.Round, want, stride)
		}
	}

	// Reset restores full resolution and clears the timeline.
	rec.Reset()
	if rec.Stride() != 1 || len(rec.Samples()) != 0 || rec.Observed() != 0 {
		t.Fatalf("Reset left stride=%d len=%d observed=%d", rec.Stride(), len(rec.Samples()), rec.Observed())
	}
	*hops = 0
	net.ResetAccounting()
	if err := net.Run(handler, []int{0}, 100000); err != nil {
		t.Fatal(err)
	}
	if rec.Observed() != net.Stats().SimulatedRounds {
		t.Fatalf("after reset observed %d, engine ran %d", rec.Observed(), net.Stats().SimulatedRounds)
	}
}

// TestDisarmedObserverZeroAllocs is the satellite regression gate: with
// Observer nil the engine steady state must not allocate at all — the
// telemetry hook may cost one branch per round, nothing more.
func TestDisarmedObserverZeroAllocs(t *testing.T) {
	net, handler, hops := ringNet(256, 4)
	defer net.Close()
	run := func() {
		*hops = 0
		if err := net.Run(handler, []int{0}, 2000); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm scratch buffers
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("disarmed engine run allocated %.1f times (1024 rounds each), want 0", allocs)
	}
}

// The armed path must also be allocation-free in steady state: samples land
// in the recorder's preallocated ring, thinning compacts in place.
func TestArmedObserverZeroSteadyStateAllocs(t *testing.T) {
	net, handler, hops := ringNet(256, 4)
	defer net.Close()
	rec := NewRoundRecorder(128, 1)
	net.Observer = rec
	run := func() {
		*hops = 0
		rec.Reset()
		net.ResetAccounting()
		if err := net.Run(handler, []int{0}, 2000); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("armed engine run allocated %.1f times, want 0", allocs)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("armed recorder retained no samples")
	}
}

func TestRoundRecorderTinyCapacityTerminates(t *testing.T) {
	rec := NewRoundRecorder(0, 0) // clamps to capacity 2, stride 1
	for i := 0; i < 10000; i++ {
		rec.ObserveRound(RoundSample{Round: int64(i + 1)})
	}
	if n := len(rec.Samples()); n < 1 || n > 2 {
		t.Fatalf("tiny ring holds %d samples, want 1..2", n)
	}
	if rec.Samples()[0].Round != 1 {
		t.Fatalf("first sample is round %d, want 1", rec.Samples()[0].Round)
	}
}

// BenchmarkRelayRingObserved is BenchmarkRelayRing with a RoundRecorder
// armed: comparing ns/round against the disarmed benchmark measures the
// observer overhead (expected: two clock reads plus a ring write per round).
func BenchmarkRelayRingObserved(b *testing.B) {
	const n = 256
	const laps = 16
	net, handler, hops := ringNet(n, laps)
	defer net.Close()
	rec := NewRoundRecorder(1024, 1)
	net.Observer = rec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*hops = 0
		rec.Reset()
		if err := net.Run(handler, []int{0}, laps*n+10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rounds := net.Stats().SimulatedRounds
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
}
