package congest

import (
	"runtime"
	"testing"
	"time"

	"twoecss/internal/graph"
)

// floodHandler is a minimal handler that keeps every node active for a few
// rounds, so a Run schedules enough nodes to cross the parallel threshold.
func floodHandler(g *graph.Graph, rounds int) Handler {
	left := make([]int, g.N)
	for v := range left {
		left[v] = rounds
	}
	return func(v int, inbox []Msg) ([]Msg, bool) {
		if left[v] == 0 {
			return nil, false
		}
		left[v]--
		return nil, left[v] > 0
	}
}

// settledGoroutines waits for the goroutine count to hold still (pool
// goroutines released by other tests exit asynchronously) and returns it.
func settledGoroutines(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	stable := 0
	for stable < 20 {
		time.Sleep(time.Millisecond)
		if got := runtime.NumGoroutine(); got == n {
			stable++
		} else {
			n, stable = got, 0
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count did not settle (last %d)", n)
		}
	}
	return n
}

// TestCloseReleasesPoolGoroutines is the pool-lifecycle regression test: a
// parallel Run spawns the Network's persistent pool, a second Run reuses it
// (no new goroutines), and Close releases every pool goroutine (checked
// against the pre-spawn baseline with a settle loop, since goroutine exit
// is asynchronous).
func TestCloseReleasesPoolGoroutines(t *testing.T) {
	g := graph.Grid(16, 16, graph.DefaultGenConfig(1))
	base := settledGoroutines(t)
	net := NewNetwork(g)
	net.Workers = 4
	if err := net.Run(floodHandler(g, 4), nil, 64); err != nil {
		t.Fatal(err)
	}
	during := runtime.NumGoroutine()
	if during != base+net.Workers-1 {
		t.Fatalf("after parallel Run: %d goroutines, want %d (base %d + %d pool workers)",
			during, base+net.Workers-1, base, net.Workers-1)
	}
	// A second Run must reuse the parked pool, not respawn it.
	if err := net.Run(floodHandler(g, 4), nil, 64); err != nil {
		t.Fatal(err)
	}
	if got := runtime.NumGoroutine(); got != during {
		t.Fatalf("second Run changed goroutine count: %d -> %d (pool not reused)", during, got)
	}
	net.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("pool goroutines did not exit after Close: %d > baseline %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
	// Close is idempotent.
	net.Close()
}

// TestWorkerCountChangeRetiresPool checks that editing Workers between Runs
// swaps the pool for one of the right size without leaking the old one.
func TestWorkerCountChangeRetiresPool(t *testing.T) {
	g := graph.Grid(16, 16, graph.DefaultGenConfig(1))
	base := settledGoroutines(t)
	net := NewNetwork(g)
	net.Workers = 4
	if err := net.Run(floodHandler(g, 4), nil, 64); err != nil {
		t.Fatal(err)
	}
	net.Workers = 2
	if err := net.Run(floodHandler(g, 4), nil, 64); err != nil {
		t.Fatal(err)
	}
	want := base + 1 // one parked worker besides the main goroutine
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("old pool not retired: %d goroutines, want %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(time.Millisecond)
	}
	net.Close()
}

func TestIsqrt(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 2},
		{5, 3},
		{8, 3},
		{9, 3},
		{10, 4},
		{15, 4},
		{16, 4},
		{17, 5},
		{24, 5},
		{25, 5},
		{26, 6},
		{1 << 20, 1 << 10},
		{(1 << 20) + 1, (1 << 10) + 1},
		{(1 << 31) - 1, 46341},
		{1 << 62, 1 << 31},
		{(1 << 62) - 1, 1 << 31},
		{(1 << 62) + 1, (1 << 31) + 1},
	}
	for _, c := range cases {
		if got := isqrt(c.n); got != c.want {
			t.Errorf("isqrt(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Exhaustive cross-check against the seed's counting loop on a dense
	// small range plus the perfect squares around every power of two.
	slow := func(n int) int64 {
		if n <= 0 {
			return 0
		}
		x := int64(1)
		for x*x < int64(n) {
			x++
		}
		return x
	}
	for n := 0; n <= 1<<12; n++ {
		if got, want := isqrt(n), slow(n); got != want {
			t.Fatalf("isqrt(%d) = %d, want %d", n, got, want)
		}
	}
	for k := 1; k <= 30; k++ {
		r := int64(1) << k
		for _, n := range []int64{r*r - 1, r * r, r*r + 1} {
			want := r
			if n > r*r {
				want = r + 1
			}
			if n == r*r-1 {
				want = r
			}
			if got := isqrt(int(n)); got != want {
				t.Fatalf("isqrt(%d) = %d, want %d", n, got, want)
			}
		}
	}
}
