package congest

import (
	"errors"
	"runtime"
	"strings"
	"testing"

	"twoecss/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	return g
}

func TestRunSimpleRelay(t *testing.T) {
	// Token travels along a path; rounds must equal path length.
	n := 10
	g := pathGraph(n)
	net := NewNetwork(g)
	arrived := -1
	sent := make([]bool, n)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 && !sent[0] {
			sent[0] = true
			return []Msg{{EdgeID: 0, From: 0, Data: []Word{42}}}, false
		}
		for _, m := range inbox {
			if v == n-1 {
				arrived = int(m.Data[0])
				return nil, false
			}
			if !sent[v] {
				sent[v] = true
				return []Msg{{EdgeID: v, From: v, Data: m.Data}}, false
			}
		}
		return nil, false
	}
	if err := net.Run(handler, []int{0}, 100); err != nil {
		t.Fatal(err)
	}
	if arrived != 42 {
		t.Fatalf("token = %d", arrived)
	}
	// n-1 relay rounds plus the final round in which the endpoint
	// processes its inbox.
	if r := net.Stats().SimulatedRounds; r != int64(n) {
		t.Fatalf("rounds = %d, want %d", r, n)
	}
}

func TestRunBandwidthViolation(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g)
	net.WordsPerEdge = 2
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 0, From: 0, Data: []Word{1, 2, 3}}}, false
		}
		return nil, false
	}
	err := net.Run(handler, []int{0}, 10)
	var bw *ErrBandwidth
	if !errors.As(err, &bw) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
}

func TestRunRejectsForgery(t *testing.T) {
	g := pathGraph(3)
	net := NewNetwork(g)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 0, From: 1, Data: []Word{1}}}, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{0}, 10); err == nil {
		t.Fatal("forged sender accepted")
	}
	handler2 := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 1, From: 0, Data: []Word{1}}}, false
		}
		return nil, false
	}
	if err := net.Run(handler2, []int{0}, 10); err == nil {
		t.Fatal("non-incident edge accepted")
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g)
	handler := func(v int, inbox []Msg) ([]Msg, bool) { return nil, true } // spin forever
	if err := net.Run(handler, nil, 5); err == nil {
		t.Fatal("non-terminating program accepted")
	}
}

func TestChargeAndPhases(t *testing.T) {
	net := NewNetwork(pathGraph(2))
	net.BeginPhase("setup")
	if err := net.Charge(17, "test"); err != nil {
		t.Fatal(err)
	}
	net.EndPhase()
	if err := net.Charge(-1, "bad"); err == nil {
		t.Fatal("negative charge accepted")
	}
	ph := net.Phases()
	if len(ph) != 1 || ph[0].Name != "setup" || ph[0].Charged != 17 {
		t.Fatalf("phases = %+v", ph)
	}
	if net.Stats().TotalRounds() != 17 {
		t.Fatalf("total = %d", net.Stats().TotalRounds())
	}
}

func TestAnalyticBills(t *testing.T) {
	if KuttenPelegMSTRounds(100, 5) <= 0 || LCALabelRounds(100, 5) <= 0 ||
		SegmentDecompositionRounds(100, 5) <= 0 || LayeringRounds(100, 5) <= 0 {
		t.Fatal("bills must be positive")
	}
	// sqrt scaling: quadrupling n roughly doubles the sqrt term.
	a := KuttenPelegMSTRounds(100, 0)
	b := KuttenPelegMSTRounds(400, 0)
	if b < 3*a/2 || b > 3*a {
		t.Fatalf("sqrt scaling off: %d -> %d", a, b)
	}
}

func TestParallelDeterminism(t *testing.T) {
	// The worker pool must not change results: run a flood twice with
	// different worker counts and compare stats.
	run := func(workers int) Stats {
		g := graph.Grid(12, 12, graph.DefaultGenConfig(3))
		net := NewNetwork(g)
		defer net.Close()
		net.Workers = workers
		seen := make([]bool, g.N)
		seen[0] = true
		fresh := make([]bool, g.N)
		fresh[0] = true
		handler := func(v int, inbox []Msg) ([]Msg, bool) {
			if len(inbox) > 0 && !seen[v] {
				seen[v] = true
				fresh[v] = true
			}
			if fresh[v] {
				fresh[v] = false
				var out []Msg
				for _, id := range g.Incident(v) {
					out = append(out, Msg{EdgeID: id, From: v, Data: []Word{7}})
				}
				return out, false
			}
			return nil, false
		}
		if err := net.Run(handler, []int{0}, 1000); err != nil {
			t.Fatal(err)
		}
		return net.Stats()
	}
	a, b := run(1), run(8)
	if a.SimulatedRounds != b.SimulatedRounds || a.Messages != b.Messages {
		t.Fatalf("parallel execution changed behaviour: %+v vs %+v", a, b)
	}
}

// TestShardedDeliveryDeterminism guards the parallel routing path: a
// sequential run and a fully parallel run of the same seeded gossip
// workload must produce identical Stats and identical final node state.
// Every node folds its inbox into an order-sensitive hash, so any change in
// inbox order or content across worker counts fails the test.
func TestShardedDeliveryDeterminism(t *testing.T) {
	const rounds = 40
	run := func(workers int) (Stats, []int64) {
		g := graph.RandomSpanningTreePlus(300, 600, graph.DefaultGenConfig(7))
		net := NewNetwork(g)
		defer net.Close()
		net.Workers = workers
		state := make([]int64, g.N)
		left := make([]int, g.N)
		for v := range left {
			left[v] = rounds
			state[v] = int64(v)*2654435761 + 1
		}
		handler := func(v int, inbox []Msg) ([]Msg, bool) {
			for _, m := range inbox {
				// Order-sensitive mix: swapping two inbox entries
				// changes the result.
				state[v] = state[v]*1000003 + m.Data[0]*31 + int64(m.From)
			}
			if left[v] == 0 {
				return nil, false
			}
			left[v]--
			out := net.OutBuf(v)
			for _, id := range g.Incident(v) {
				out = append(out, Msg{EdgeID: id, From: v, Data: []Word{state[v] & 0xffff}})
			}
			return out, left[v] > 0
		}
		if err := net.Run(handler, nil, rounds+10); err != nil {
			t.Fatal(err)
		}
		return net.Stats(), state
	}
	// A fixed pool size keeps the parallel engine paths exercised even on a
	// single-CPU machine, where GOMAXPROCS would degenerate to 1 worker.
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 4 {
		parWorkers = 4
	}
	seqStats, seqState := run(1)
	parStats, parState := run(parWorkers)
	if seqStats != parStats {
		t.Fatalf("stats diverge:\n seq %+v\n par %+v", seqStats, parStats)
	}
	for v := range seqState {
		if seqState[v] != parState[v] {
			t.Fatalf("node %d state diverges: %d vs %d", v, seqState[v], parState[v])
		}
	}
	if seqStats.Messages == 0 {
		t.Fatal("workload sent no messages")
	}
}

// TestParallelErrorDeterminism guards the cross-worker error merge: when
// several scheduled nodes misbehave in the same round, the reported error
// must be the one with the smallest (sender, outbox index) for any worker
// count. The graph is large enough (>= parallelSchedMin scheduled nodes)
// that the parallel handler phase actually runs.
func TestParallelErrorDeterminism(t *testing.T) {
	const n = 100
	for _, tc := range []struct {
		name    string
		bad     func(v int) []Msg // outbox for the two misbehaving nodes
		badat   [2]int
		wantSub string
	}{
		{
			name:  "forged-sender",
			badat: [2]int{10, 90},
			bad: func(v int) []Msg {
				return []Msg{{EdgeID: v, From: v + 1, Data: []Word{1}}}
			},
			wantSub: "node 10 forged sender",
		},
		{
			name:  "bandwidth",
			badat: [2]int{20, 70},
			bad: func(v int) []Msg {
				return []Msg{{EdgeID: v, From: v, Data: make([]Word, 99)}}
			},
			wantSub: "99 words from vertex 20",
		},
	} {
		var errs [2]error
		for i, workers := range []int{1, 8} {
			g := pathGraph(n)
			net := NewNetwork(g)
			defer net.Close()
			net.Workers = workers
			handler := func(v int, inbox []Msg) ([]Msg, bool) {
				if v == tc.badat[0] || v == tc.badat[1] {
					return tc.bad(v), false
				}
				return nil, false
			}
			errs[i] = net.Run(handler, nil, 10)
			if errs[i] == nil {
				t.Fatalf("%s workers=%d: no error", tc.name, workers)
			}
		}
		if errs[0].Error() != errs[1].Error() {
			t.Fatalf("%s: error depends on worker count:\n seq: %v\n par: %v",
				tc.name, errs[0], errs[1])
		}
		if !strings.Contains(errs[0].Error(), tc.wantSub) {
			t.Fatalf("%s: got %v, want error mentioning %q", tc.name, errs[0], tc.wantSub)
		}
	}
}

// TestRunRecyclesAcrossCalls checks that repeated Runs on one Network reuse
// engine buffers — a warmed-up Run must be nearly allocation-free — and
// keep accumulating stats correctly.
func TestRunRecyclesAcrossCalls(t *testing.T) {
	g := pathGraph(8)
	net := NewNetwork(g)
	payload := []Word{9}
	sent := false
	runs := 0
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 && !sent {
			sent = true
			return append(net.OutBuf(v), Msg{EdgeID: 0, From: 0, Data: payload}), false
		}
		return nil, false
	}
	run := func() {
		sent = false
		runs++
		if err := net.Run(handler, []int{0}, 100); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up the scratch buffers
	// Steady state: the only per-Run allocation left is the engine struct.
	if allocs := testing.AllocsPerRun(5, run); allocs > 2 {
		t.Fatalf("steady-state Run allocated %.1f objects, want <= 2", allocs)
	}
	if got := net.Stats().Messages; got != int64(runs) {
		t.Fatalf("messages = %d, want %d", got, runs)
	}
	if got := net.Stats().SimulatedRounds; got != int64(2*runs) {
		t.Fatalf("rounds = %d, want %d", got, 2*runs)
	}
}
