package congest

import (
	"errors"
	"testing"

	"twoecss/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	return g
}

func TestRunSimpleRelay(t *testing.T) {
	// Token travels along a path; rounds must equal path length.
	n := 10
	g := pathGraph(n)
	net := NewNetwork(g)
	arrived := -1
	sent := make([]bool, n)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 && !sent[0] {
			sent[0] = true
			return []Msg{{EdgeID: 0, From: 0, Data: []Word{42}}}, false
		}
		for _, m := range inbox {
			if v == n-1 {
				arrived = int(m.Data[0])
				return nil, false
			}
			if !sent[v] {
				sent[v] = true
				return []Msg{{EdgeID: v, From: v, Data: m.Data}}, false
			}
		}
		return nil, false
	}
	if err := net.Run(handler, []int{0}, 100); err != nil {
		t.Fatal(err)
	}
	if arrived != 42 {
		t.Fatalf("token = %d", arrived)
	}
	// n-1 relay rounds plus the final round in which the endpoint
	// processes its inbox.
	if r := net.Stats().SimulatedRounds; r != int64(n) {
		t.Fatalf("rounds = %d, want %d", r, n)
	}
}

func TestRunBandwidthViolation(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g)
	net.WordsPerEdge = 2
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 0, From: 0, Data: []Word{1, 2, 3}}}, false
		}
		return nil, false
	}
	err := net.Run(handler, []int{0}, 10)
	var bw *ErrBandwidth
	if !errors.As(err, &bw) {
		t.Fatalf("err = %v, want ErrBandwidth", err)
	}
}

func TestRunRejectsForgery(t *testing.T) {
	g := pathGraph(3)
	net := NewNetwork(g)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 0, From: 1, Data: []Word{1}}}, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{0}, 10); err == nil {
		t.Fatal("forged sender accepted")
	}
	handler2 := func(v int, inbox []Msg) ([]Msg, bool) {
		if v == 0 {
			return []Msg{{EdgeID: 1, From: 0, Data: []Word{1}}}, false
		}
		return nil, false
	}
	if err := net.Run(handler2, []int{0}, 10); err == nil {
		t.Fatal("non-incident edge accepted")
	}
}

func TestRunMaxRounds(t *testing.T) {
	g := pathGraph(2)
	net := NewNetwork(g)
	handler := func(v int, inbox []Msg) ([]Msg, bool) { return nil, true } // spin forever
	if err := net.Run(handler, nil, 5); err == nil {
		t.Fatal("non-terminating program accepted")
	}
}

func TestChargeAndPhases(t *testing.T) {
	net := NewNetwork(pathGraph(2))
	net.BeginPhase("setup")
	if err := net.Charge(17, "test"); err != nil {
		t.Fatal(err)
	}
	net.EndPhase()
	if err := net.Charge(-1, "bad"); err == nil {
		t.Fatal("negative charge accepted")
	}
	ph := net.Phases()
	if len(ph) != 1 || ph[0].Name != "setup" || ph[0].Charged != 17 {
		t.Fatalf("phases = %+v", ph)
	}
	if net.Stats().TotalRounds() != 17 {
		t.Fatalf("total = %d", net.Stats().TotalRounds())
	}
}

func TestAnalyticBills(t *testing.T) {
	if KuttenPelegMSTRounds(100, 5) <= 0 || LCALabelRounds(100, 5) <= 0 ||
		SegmentDecompositionRounds(100, 5) <= 0 || LayeringRounds(100, 5) <= 0 {
		t.Fatal("bills must be positive")
	}
	// sqrt scaling: quadrupling n roughly doubles the sqrt term.
	a := KuttenPelegMSTRounds(100, 0)
	b := KuttenPelegMSTRounds(400, 0)
	if b < 3*a/2 || b > 3*a {
		t.Fatalf("sqrt scaling off: %d -> %d", a, b)
	}
}

func TestParallelDeterminism(t *testing.T) {
	// The worker pool must not change results: run a flood twice with
	// different worker counts and compare stats.
	run := func(workers int) Stats {
		g := graph.Grid(12, 12, graph.DefaultGenConfig(3))
		net := NewNetwork(g)
		net.Workers = workers
		seen := make([]bool, g.N)
		seen[0] = true
		fresh := make([]bool, g.N)
		fresh[0] = true
		handler := func(v int, inbox []Msg) ([]Msg, bool) {
			if len(inbox) > 0 && !seen[v] {
				seen[v] = true
				fresh[v] = true
			}
			if fresh[v] {
				fresh[v] = false
				var out []Msg
				for _, id := range g.Incident(v) {
					out = append(out, Msg{EdgeID: id, From: v, Data: []Word{7}})
				}
				return out, false
			}
			return nil, false
		}
		if err := net.Run(handler, []int{0}, 1000); err != nil {
			t.Fatal(err)
		}
		return net.Stats()
	}
	a, b := run(1), run(8)
	if a.SimulatedRounds != b.SimulatedRounds || a.Messages != b.Messages {
		t.Fatalf("parallel execution changed behaviour: %+v vs %+v", a, b)
	}
}
