package congest

import (
	"runtime"
	"testing"

	"twoecss/internal/graph"
)

// The benchmark handlers below keep their own reusable outbox buffers and
// static payloads, so every allocation the benchmarks report belongs to the
// engine itself. BenchmarkRelayRing isolates per-round overhead with a tiny
// active set (one live node per round); BenchmarkFloodGrid and
// BenchmarkDenseGrid exercise the full routing/bandwidth-accounting path.

var floodPayload = []Word{7}

func benchFlood(b *testing.B, workers int) {
	g := graph.Grid(64, 64, graph.DefaultGenConfig(1))
	net := NewNetwork(g)
	defer net.Close()
	net.Workers = workers
	seen := make([]bool, g.N)
	fresh := make([]bool, g.N)
	out := make([][]Msg, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = make([]Msg, 0, g.Degree(v))
	}
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if len(inbox) > 0 && !seen[v] {
			seen[v] = true
			fresh[v] = true
		}
		if fresh[v] {
			fresh[v] = false
			buf := out[v][:0]
			for _, id := range g.Incident(v) {
				buf = append(buf, Msg{EdgeID: id, From: v, Data: floodPayload})
			}
			return buf, false
		}
		return nil, false
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range seen {
			seen[v] = false
			fresh[v] = false
		}
		seen[0], fresh[0] = true, true
		if err := net.Run(handler, []int{0}, 10000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rounds := net.Stats().SimulatedRounds
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
}

func BenchmarkFloodGrid(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchFlood(b, 1) })
	b.Run("workers=max", func(b *testing.B) { benchFlood(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkRelayRing passes one token around a 256-ring for 16 laps per op:
// 4096 rounds with a single scheduled node per round. The old engine paid an
// O(N) schedule scan plus a map allocation every round here.
func BenchmarkRelayRing(b *testing.B) {
	const n = 256
	const laps = 16
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 1)
	}
	net := NewNetwork(g)
	defer net.Close()
	net.Workers = 1
	hops := 0
	out := make([]Msg, 0, 1)
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if hops >= laps*n {
			return nil, false
		}
		hops++
		out = out[:0]
		out = append(out, Msg{EdgeID: v, From: v, Data: floodPayload})
		return out, false
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hops = 0
		if err := net.Run(handler, []int{0}, laps*n+10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rounds := net.Stats().SimulatedRounds
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
}

// BenchmarkDenseGrid keeps every node of a 32x32 grid active for 64 rounds,
// sending one word on every incident edge per round: the worst case for the
// bandwidth-accounting and delivery path.
func benchDense(b *testing.B, workers int) {
	const rounds = 64
	g := graph.Grid(32, 32, graph.DefaultGenConfig(1))
	net := NewNetwork(g)
	net.Workers = workers
	left := make([]int, g.N)
	out := make([][]Msg, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = make([]Msg, 0, g.Degree(v))
	}
	handler := func(v int, inbox []Msg) ([]Msg, bool) {
		if left[v] == 0 {
			return nil, false
		}
		left[v]--
		buf := out[v][:0]
		for _, id := range g.Incident(v) {
			buf = append(buf, Msg{EdgeID: id, From: v, Data: floodPayload})
		}
		return buf, left[v] > 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range left {
			left[v] = rounds
		}
		if err := net.Run(handler, nil, rounds+10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sim := net.Stats().SimulatedRounds
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sim), "ns/round")
}

func BenchmarkDenseGrid(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchDense(b, 1) })
	b.Run("workers=max", func(b *testing.B) { benchDense(b, runtime.GOMAXPROCS(0)) })
}
