package congest

// This file is the engine hot path of Network.Run. The design goals (see
// DESIGN.md for the full write-up) are:
//
//   - Worklist scheduling: a round schedules exactly the nodes that are
//     active or hold undelivered messages; building the next worklist costs
//     O(active), not O(N).
//   - Flat bandwidth accounting: the per-(edge,direction) word counters live
//     in one []int32 indexed by 2*edgeID+dir and are lazily reset by an
//     epoch stamp, so a round allocates no map and pays no reset loop.
//   - Buffer recycling: inboxes, outboxes, and worklists persist across
//     rounds and across Run calls on the same Network; handlers can opt into
//     recycled outbox envelopes via Network.OutBuf. In steady state a round
//     performs zero engine-side allocations.
//   - Sharded delivery: both handler execution and message routing run on a
//     small worker pool owned by the Network, spawned lazily on the first
//     parallel round and reused across Run calls (see Network.Close for the
//     lifecycle). Delivery is sharded by receiver, so every inbox is filled
//     by exactly one worker scanning senders in ascending order — results
//     are bit-identical for any worker count.
//   - Flat adjacency: incidence validation and routing read the graph's CSR
//     endpoint arrays (graph.Endpoints), 8 bytes per message instead of a
//     24-byte Edge struct load.

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"
)

// parallelSchedMin and parallelMsgsPerWorker gate the parallel paths: below
// these sizes the dispatch barrier costs more than the work. The routing
// threshold scales with the pool size because every routing worker scans all
// outbox messages and delivers only its own receiver shard, so the per-round
// message count must grow with W for sharding to win.
const (
	parallelSchedMin      = 64
	parallelMsgsPerWorker = 64
)

// wstate is the per-worker accumulator for one round. Hot counters are kept
// in locals inside the phase functions and written back once per phase, so
// false sharing between adjacent wstates is not a concern.
type wstate struct {
	messages int64
	words    int64
	maxEdge  int32
	maxNode  int64 // peak per-node payload words sent this round
	recv     []int // receivers this worker delivered to this round
	// First validation/bandwidth error observed by this worker, with its
	// (sender, outbox index) position for deterministic cross-worker merge.
	valErr     error
	valV, valI int
	bwErr      *ErrBandwidth
	bwV, bwI   int
}

// scratch holds all engine state that survives rounds and Run calls. It is
// lazily sized to the network's graph on first use.
type scratch struct {
	inboxes  [][]Msg
	outboxes [][]Msg
	outBufs  [][]Msg // recycled envelopes handed out by OutBuf
	handed   []bool  // v's handler took its OutBuf envelope this round
	active   []bool
	pending  []bool // v is already on the next worklist
	hasMsg   []bool // v already received a message this round
	sched    []int  // current round worklist, ascending
	next     []int  // next round worklist, unsorted until round end
	// edgeWords[2*id+dir] counts words sent this round on edge id in
	// direction dir (0 = from Edges[id].U, 1 = from Edges[id].V). A slot is
	// valid only when edgeEpoch matches the current epoch; epochs increment
	// every round and are never reset, so no per-round clearing is needed.
	edgeWords []int32
	edgeEpoch []int64
	epoch     int64
	workers   []wstate
	// eng is the per-Run execution state, kept here so a steady-state Run
	// performs zero allocations (the pool stores a *engine while
	// dispatching, which would otherwise force a heap engine per call).
	eng engine
}

func (s *scratch) ensure(n, m, workers int) {
	if len(s.inboxes) < n {
		s.inboxes = make([][]Msg, n)
		s.outboxes = make([][]Msg, n)
		s.outBufs = make([][]Msg, n)
		s.handed = make([]bool, n)
		s.active = make([]bool, n)
		s.pending = make([]bool, n)
		s.hasMsg = make([]bool, n)
		s.sched = make([]int, 0, n)
		s.next = make([]int, 0, n)
	}
	if len(s.edgeWords) < 2*m {
		s.edgeWords = make([]int32, 2*m)
		s.edgeEpoch = make([]int64, 2*m)
	}
	if len(s.workers) < workers {
		s.workers = make([]wstate, workers)
	}
}

// OutBuf returns node v's recycled outbox envelope, truncated to length
// zero. A handler running for v may append its outgoing messages to it and
// return it, avoiding a per-round slice allocation; the engine consumes the
// returned slice before v's handler runs again. It must only be called from
// within v's own handler invocation, and a handler that calls OutBuf(v)
// must return either that buffer (possibly grown by append) or nil — never
// a buffer shared with other nodes: the returned slice is adopted as v's
// envelope for later rounds, and concurrently running handlers would then
// race on the shared backing array.
func (n *Network) OutBuf(v int) []Msg {
	if n.sc == nil || v >= len(n.sc.outBufs) {
		return nil
	}
	n.sc.handed[v] = true
	return n.sc.outBufs[v][:0]
}

// msgCmp orders messages by (From, EdgeID): the deterministic inbox order
// contract. It is a top-level function so slices.SortFunc never allocates.
func msgCmp(a, b Msg) int {
	if a.From != b.From {
		return a.From - b.From
	}
	return a.EdgeID - b.EdgeID
}

// engine is the per-Run execution state: the handler, flat edge-endpoint
// views, and pointers to the Network's persistent scratch.
type engine struct {
	net     *Network
	sc      *scratch
	handler Handler
	W       int // pool size (including the main goroutine as worker 0)
	// us/vs are the graph's flat endpoint arrays (graph.Endpoints): the
	// validation and routing loops touch 8 bytes per message instead of a
	// 24-byte Edge struct.
	us, vs []int32
}

// pool is the persistent worker pool of one Network. It is spawned lazily
// on the first parallel round and survives across Run calls (reusing the
// parked goroutines instead of respawning W-1 goroutines per Run); it is
// torn down by Network.Close, or by a GC cleanup if the owning Network is
// dropped without Close. Worker w parks on start[w]; the main goroutine
// works as worker 0. Channel operations carry no payload, so a round's
// dispatch performs no allocation.
type pool struct {
	W     int
	start []chan int8 // per-worker phase trigger (1=handlers, 2=route)
	done  chan struct{}
	// cur is the engine of the Run being dispatched. It is set before the
	// trigger sends and cleared at the barrier, so a parked pool holds no
	// reference to any Network (letting the GC cleanup fire).
	cur  *engine
	stop sync.Once
}

func newPool(W int) *pool {
	p := &pool{W: W, start: make([]chan int8, W), done: make(chan struct{}, W)}
	for w := 1; w < W; w++ {
		p.start[w] = make(chan int8)
		go func(w int) {
			for ph := range p.start[w] {
				e := p.cur
				if ph == 1 {
					e.runHandlers(w, W)
				} else {
					e.route(w, W)
				}
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// dispatch fans one phase out over the pool and blocks until every worker
// has finished it.
func (p *pool) dispatch(e *engine, phase int8) {
	p.cur = e
	for w := 1; w < p.W; w++ {
		p.start[w] <- phase
	}
	if phase == 1 {
		e.runHandlers(0, p.W)
	} else {
		e.route(0, p.W)
	}
	for w := 1; w < p.W; w++ {
		<-p.done
	}
	p.cur = nil
}

// close releases the pool goroutines. Idempotent; must not race with a Run
// on the owning Network.
func (p *pool) close() {
	p.stop.Do(func() {
		for w := 1; w < p.W; w++ {
			close(p.start[w])
		}
	})
}

// Run executes the given handler to quiescence: it stops when no messages
// are in flight and no node is active. maxRounds guards against
// non-terminating programs. The initial set of active nodes is start (nil
// means all nodes). Buffers are recycled across calls, so repeated Runs on
// one Network allocate only on the first call; the graph must not change
// between calls on the same Network.
func (n *Network) Run(handler Handler, start []int, maxRounds int64) error {
	g := n.G
	// The scratch buffers are shared across Run calls, so a re-entrant or
	// concurrent Run on the same Network would corrupt this run's state;
	// fail loudly instead (CAS also catches two goroutines racing in).
	if !n.running.CompareAndSwap(false, true) {
		return fmt.Errorf("congest: concurrent or re-entrant Run on the same Network")
	}
	defer n.running.Store(false)
	workers := n.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n.sc == nil {
		n.sc = &scratch{}
	}
	sc := n.sc
	sc.ensure(g.N, g.M(), workers)
	// A worker-count change (n.Workers edited between Runs) retires the old
	// pool; the next parallel round spawns one of the right size.
	if n.pool != nil && n.pool.W != workers {
		n.pool.close()
		n.pool = nil
	}
	us, vs := g.Endpoints() // also forces the CSR build pre-fan-out

	// Reset per-Run state. A previous errored Run may have left stale
	// inboxes or worklist flags behind.
	for v := 0; v < g.N; v++ {
		sc.inboxes[v] = sc.inboxes[v][:0]
		sc.outboxes[v] = nil
		sc.handed[v] = false
		sc.active[v] = false
		sc.pending[v] = false
		sc.hasMsg[v] = false
	}
	sc.sched = sc.sched[:0]
	sc.next = sc.next[:0]
	if start == nil {
		for v := 0; v < g.N; v++ {
			sc.pending[v] = true
			sc.next = append(sc.next, v)
		}
	} else {
		for _, v := range start {
			if v < 0 || v >= g.N {
				return fmt.Errorf("congest: start node %d out of range [0,%d)", v, g.N)
			}
			if !sc.pending[v] {
				sc.pending[v] = true
				sc.next = append(sc.next, v)
			}
		}
		slices.Sort(sc.next)
	}

	e := &sc.eng
	*e = engine{net: n, sc: sc, handler: handler, W: workers, us: us, vs: vs}

	// The observer is latched once per Run: arming costs phase timestamps
	// and one sample per round; disarmed, the hot loop pays a single nil
	// check and never touches the clock.
	observer := n.Observer
	var tRound, tRoute time.Time

	for round := int64(0); ; round++ {
		sc.sched, sc.next = sc.next, sc.sched[:0]
		if len(sc.sched) == 0 {
			return nil
		}
		if round >= maxRounds {
			return fmt.Errorf("congest: exceeded %d rounds without quiescence", maxRounds)
		}
		n.stats.SimulatedRounds++
		sc.epoch++
		for _, v := range sc.sched {
			sc.pending[v] = false
		}
		if observer != nil {
			tRound = time.Now()
		}

		// Phase 1: run handlers, validate outboxes, account bandwidth.
		// Each scheduled node is processed by exactly one worker, and every
		// (edge,direction) counter slot is owned by its unique sender, so
		// the phase needs no locks.
		var roundMsgs, roundWords, roundMaxNode int64
		var roundMaxEdge int32
		used := e.runPhase(1, len(sc.sched) >= parallelSchedMin)
		for w := 0; w < used; w++ {
			ws := &sc.workers[w]
			n.stats.Messages += ws.messages
			n.stats.Words += ws.words
			if int(ws.maxEdge) > n.stats.MaxEdgeWords {
				n.stats.MaxEdgeWords = int(ws.maxEdge)
			}
			roundMsgs += ws.messages
			roundWords += ws.words
			if ws.maxEdge > roundMaxEdge {
				roundMaxEdge = ws.maxEdge
			}
			if ws.maxNode > roundMaxNode {
				roundMaxNode = ws.maxNode
			}
			ws.messages, ws.words, ws.maxEdge, ws.maxNode = 0, 0, 0, 0
		}
		if err := e.mergeErrors(used); err != nil {
			return err
		}
		var handlerNs int64
		if observer != nil {
			tRoute = time.Now()
			handlerNs = tRoute.Sub(tRound).Nanoseconds()
		}

		// Nodes that stay active are scheduled again.
		for _, v := range sc.sched {
			if sc.active[v] && !sc.pending[v] {
				sc.pending[v] = true
				sc.next = append(sc.next, v)
			}
		}

		// Phase 2: route messages to receiver inboxes, sharded by receiver.
		used = 0
		if roundMsgs > 0 {
			used = e.runPhase(2, roundMsgs >= int64(parallelMsgsPerWorker*e.W))
		}
		for w := 0; w < used; w++ {
			ws := &sc.workers[w]
			for _, to := range ws.recv {
				if !sc.pending[to] {
					sc.pending[to] = true
					sc.next = append(sc.next, to)
				}
			}
			ws.recv = ws.recv[:0]
		}
		slices.Sort(sc.next)
		if observer != nil {
			observer.ObserveRound(RoundSample{
				Round:        n.stats.SimulatedRounds,
				Active:       len(sc.sched),
				Messages:     roundMsgs,
				Words:        roundWords,
				MaxEdgeWords: int(roundMaxEdge),
				MaxNodeWords: roundMaxNode,
				HandlerNs:    handlerNs,
				RouteNs:      time.Since(tRoute).Nanoseconds(),
			})
		}
	}
}

// runPhase executes one phase, parallel if the pool is big enough and the
// caller's size gate says the work amortizes the barrier. It returns the
// number of worker slots the phase wrote to, so the merge loop and the
// execution path can never disagree. The Network's persistent pool is
// spawned lazily on the first parallel round and reused by later Runs; see
// Network.Close for the teardown contract.
func (e *engine) runPhase(phase int8, parallel bool) int {
	if e.W > 1 && parallel {
		n := e.net
		if n.pool == nil {
			n.pool = newPool(e.W)
			// Backstop for Networks dropped without Close: once the Network
			// is unreachable no Run can be active, so closing the parked
			// pool is safe. The pool never points back at the Network while
			// parked (dispatch clears cur), so the cleanup can fire.
			runtime.AddCleanup(n, func(p *pool) { p.close() }, n.pool)
		}
		n.pool.dispatch(e, phase)
		return e.W
	}
	if phase == 1 {
		e.runHandlers(0, 1)
	} else {
		e.route(0, 1)
	}
	return 1
}

// runHandlers executes worker w's contiguous share of the schedule: the
// handler call, outbox validation, and bandwidth accounting.
func (e *engine) runHandlers(w, W int) {
	sc, g := e.sc, e.net.G
	sched := sc.sched
	chunk := (len(sched) + W - 1) / W
	lo := w * chunk
	if lo > len(sched) {
		lo = len(sched)
	}
	hi := lo + chunk
	if hi > len(sched) {
		hi = len(sched)
	}
	ws := &sc.workers[w]
	budget := int32(e.net.WordsPerEdge)
	epoch := sc.epoch
	var messages, words int64
	maxEdge := ws.maxEdge
	maxNode := ws.maxNode
	for _, v := range sched[lo:hi] {
		nodeStart := words
		out, act := e.handler(v, sc.inboxes[v])
		sc.inboxes[v] = sc.inboxes[v][:0]
		sc.active[v] = act
		sc.outboxes[v] = out
		// Re-adopt the OutBuf envelope (possibly grown by append) only when
		// this handler invocation took it: adopting arbitrary returned
		// slices would let a buffer shared across nodes alias multiple
		// outBufs entries and race on a later parallel Run.
		if sc.handed[v] {
			sc.handed[v] = false
			if cap(out) > cap(sc.outBufs[v]) {
				sc.outBufs[v] = out
			}
		}
		v32 := int32(v)
		for i := range out {
			m := &out[i]
			if m.From != v {
				ws.recordVal(fmt.Errorf("congest: node %d forged sender %d", v, m.From), v, i)
				break
			}
			if m.EdgeID < 0 || m.EdgeID >= g.M() {
				ws.recordVal(fmt.Errorf("congest: node %d sent on bad edge %d", v, m.EdgeID), v, i)
				break
			}
			dir := 0
			if e.vs[m.EdgeID] == v32 {
				dir = 1
			} else if e.us[m.EdgeID] != v32 {
				ws.recordVal(fmt.Errorf("congest: node %d sent on non-incident edge %d", v, m.EdgeID), v, i)
				break
			}
			slot := 2*m.EdgeID + dir
			if sc.edgeEpoch[slot] != epoch {
				sc.edgeEpoch[slot] = epoch
				sc.edgeWords[slot] = 0
			}
			cost := int32(len(m.Data))
			if cost == 0 {
				cost = 1 // an empty message still occupies the slot
			}
			sc.edgeWords[slot] += cost
			if sc.edgeWords[slot] > budget && ws.bwErr == nil {
				ws.bwErr = &ErrBandwidth{EdgeID: m.EdgeID, From: v,
					Words: int(sc.edgeWords[slot]), Budget: e.net.WordsPerEdge}
				ws.bwV, ws.bwI = v, i
			}
			if sc.edgeWords[slot] > maxEdge {
				maxEdge = sc.edgeWords[slot]
			}
			messages++
			words += int64(len(m.Data))
		}
		if nw := words - nodeStart; nw > maxNode {
			maxNode = nw
		}
	}
	ws.messages += messages
	ws.words += words
	ws.maxEdge = maxEdge
	ws.maxNode = maxNode
}

func (ws *wstate) recordVal(err error, v, i int) {
	if ws.valErr == nil {
		ws.valErr, ws.valV, ws.valI = err, v, i
	}
}

// mergeErrors picks the deterministic first error across workers: the one
// with the smallest (sender, outbox index), validation errors first. The
// result is therefore independent of the worker count.
func (e *engine) mergeErrors(used int) error {
	var val error
	var bw *ErrBandwidth
	valV, valI, bwV, bwI := -1, -1, -1, -1
	for w := 0; w < used; w++ {
		ws := &e.sc.workers[w]
		if ws.valErr != nil && (valV < 0 || ws.valV < valV || (ws.valV == valV && ws.valI < valI)) {
			val, valV, valI = ws.valErr, ws.valV, ws.valI
		}
		if ws.bwErr != nil && (bwV < 0 || ws.bwV < bwV || (ws.bwV == bwV && ws.bwI < bwI)) {
			bw, bwV, bwI = ws.bwErr, ws.bwV, ws.bwI
		}
		ws.valErr, ws.bwErr = nil, nil
	}
	if val != nil {
		return val
	}
	if bw != nil {
		return bw
	}
	return nil
}

// route delivers every outbox message whose receiver falls in worker w's
// contiguous receiver range, scanning senders in ascending schedule order —
// so each inbox is appended to by exactly one worker, in deterministic
// order, and is sorted by that worker once its scan completes.
func (e *engine) route(w, W int) {
	sc, g := e.sc, e.net.G
	n := g.N
	lo, hi := w*n/W, (w+1)*n/W
	if w == W-1 {
		hi = n
	}
	ws := &sc.workers[w]
	recv := ws.recv
	us, vs := e.us, e.vs
	for _, v := range sc.sched {
		v32 := int32(v)
		for _, m := range sc.outboxes[v] {
			// The far endpoint of an incident edge, branch-free: v is one
			// of {us[id], vs[id]}, so XOR cancels it out.
			to := int(us[m.EdgeID] ^ vs[m.EdgeID] ^ v32)
			if to < lo || to >= hi {
				continue
			}
			if !sc.hasMsg[to] {
				sc.hasMsg[to] = true
				recv = append(recv, to)
			}
			sc.inboxes[to] = append(sc.inboxes[to], m)
		}
	}
	// Deterministic inbox order regardless of outbox order: (From, EdgeID).
	for _, to := range recv {
		if len(sc.inboxes[to]) > 1 {
			slices.SortFunc(sc.inboxes[to], msgCmp)
		}
		sc.hasMsg[to] = false
	}
	ws.recv = recv
}
