package congest

// This file adds engine-depth round observability: an optional per-round
// sample hook on Network and a bounded recorder for it. Rounds and messages
// are the paper's own cost measures, so they are promoted here to
// first-class observable quantities rather than being inferred from
// aggregate Stats deltas.
//
// The hook is designed to be provably free when disarmed: Run pays exactly
// one nil-interface check per round (no time.Now calls, no sample
// construction), and the armed path allocates nothing per round — the
// recorder writes into a preallocated ring and compacts it in place. The
// disarmed cost is gated by TestDisarmedObserverZeroAllocs and the
// BenchmarkRelayRing family.

// RoundSample is one observed engine round. Fields are cumulative-free:
// each sample describes exactly one round.
type RoundSample struct {
	// Round is the Network's SimulatedRounds counter value for this round
	// (1-based within the accounting epoch; ResetAccounting restarts it).
	Round int64
	// Active is the number of nodes scheduled this round (the worklist
	// size: active nodes plus nodes holding undelivered messages).
	Active int
	// Messages and Words are the deliveries of this round.
	Messages int64
	Words    int64
	// MaxEdgeWords is the round's peak per-(edge,direction) bandwidth use
	// in words (CONGEST compliance: stays <= Network.WordsPerEdge).
	MaxEdgeWords int
	// MaxNodeWords is the round's peak per-node send volume in payload
	// words — the busiest sender's congestion.
	MaxNodeWords int64
	// HandlerNs and RouteNs split the round's wall time into the handler
	// phase (node logic + bandwidth accounting) and the delivery phase
	// (routing + next-worklist construction).
	HandlerNs int64
	RouteNs   int64
}

// RoundObserver receives one RoundSample per simulated round from
// Network.Run. Implementations must be cheap and must not call back into
// the Network: they run synchronously on the round barrier.
type RoundObserver interface {
	ObserveRound(s RoundSample)
}

// RoundRecorder is a bounded RoundObserver: it retains at most its
// configured capacity of samples, thinning by stride when a run outgrows
// the ring. When the ring fills, every other retained sample is dropped in
// place and the stride doubles, so an arbitrarily long run yields an
// evenly spaced timeline at full coverage with bounded memory and zero
// steady-state allocations.
type RoundRecorder struct {
	samples []RoundSample
	stride  int64 // keep every stride-th observed round
	base    int64 // configured initial stride
	seen    int64 // rounds observed since Reset
}

// NewRoundRecorder returns a recorder retaining at most capacity samples
// (minimum 2), keeping every stride-th round (stride <= 1 means every
// round). The stride doubles automatically whenever the ring fills.
func NewRoundRecorder(capacity int, stride int) *RoundRecorder {
	if capacity < 2 {
		capacity = 2
	}
	s := int64(stride)
	if s < 1 {
		s = 1
	}
	return &RoundRecorder{samples: make([]RoundSample, 0, capacity), stride: s, base: s}
}

// ObserveRound implements RoundObserver.
func (r *RoundRecorder) ObserveRound(s RoundSample) {
	idx := r.seen
	r.seen++
	if idx%r.stride != 0 {
		return
	}
	if len(r.samples) == cap(r.samples) {
		// Thin in place: keep even positions, double the stride. The kept
		// samples remain evenly spaced at the new stride because they were
		// evenly spaced at the old one.
		half := (len(r.samples) + 1) / 2
		for i := 1; i < half; i++ {
			r.samples[i] = r.samples[2*i]
		}
		r.samples = r.samples[:half]
		r.stride *= 2
		if idx%r.stride != 0 {
			return // this round fell off the coarser grid
		}
	}
	r.samples = append(r.samples, s)
}

// Samples returns the retained timeline in round order. The slice aliases
// the recorder's ring: copy it before the next Run or Reset if it must
// survive.
func (r *RoundRecorder) Samples() []RoundSample { return r.samples }

// Observed reports how many rounds the recorder has seen since Reset
// (retained or not).
func (r *RoundRecorder) Observed() int64 { return r.seen }

// Stride reports the current sampling stride: one retained sample per
// Stride observed rounds.
func (r *RoundRecorder) Stride() int64 { return r.stride }

// Reset clears the timeline and restores the configured stride, keeping
// the ring's backing array.
func (r *RoundRecorder) Reset() {
	r.samples = r.samples[:0]
	r.stride = r.base
	r.seen = 0
}
