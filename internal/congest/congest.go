// Package congest implements the synchronous CONGEST model of distributed
// computing (Peleg 2000) used by the paper: computation proceeds in
// synchronous rounds and per round every vertex may send O(log n) bits to
// each of its neighbors.
//
// The engine simulates algorithms at message level: a primitive supplies a
// per-node Handler; the engine delivers messages round by round, enforces
// the per-edge-per-round bandwidth budget (counted in O(log n)-bit words),
// and accumulates round and message statistics. Node handlers run
// concurrently on a goroutine worker pool with a barrier per round, which
// both exploits the per-node structure of CONGEST algorithms and enforces
// the discipline that a handler may only touch its own node state.
//
// Some sub-routines the paper cites from prior work (MST construction, LCA
// labels, segment decomposition construction) are not re-proved there; for
// those the engine provides Charge, an analytic round bill recorded
// separately from simulated rounds. DESIGN.md lists which component uses
// which channel.
//
// Lifecycle: a Network that executed parallel rounds owns a persistent
// worker pool reused across Run calls. Call Network.Close when done with a
// Network to release the pool goroutines deterministically; a GC cleanup
// reclaims the pool of a Network dropped without Close. Networks with
// Workers == 1 never spawn a pool and need no Close.
package congest

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"twoecss/internal/graph"
)

// Word is one message word; the model allows O(log n) bits per edge per
// round per direction, i.e. a constant number of Words.
type Word = int64

// Msg is a message traveling over one edge in one round.
type Msg struct {
	// EdgeID identifies the graph edge the message traverses.
	EdgeID int
	// From is the sending vertex; the receiver is the other endpoint.
	From int
	// Data is the payload, counted against the bandwidth budget.
	Data []Word
}

// To returns the receiving vertex of m in g.
func (m Msg) To(g *graph.Graph) int { return g.Edges[m.EdgeID].Other(m.From) }

// Handler is the per-round logic of one node: it receives the messages
// delivered to node v this round and returns the messages v sends next
// round plus whether v still wants to be scheduled while silent.
// A handler must only access state belonging to node v.
type Handler func(v int, inbox []Msg) (outbox []Msg, active bool)

// Stats aggregates the cost accounting of a network.
type Stats struct {
	// SimulatedRounds counts rounds executed by the message engine.
	SimulatedRounds int64
	// ChargedRounds counts analytically billed rounds (cited subroutines).
	ChargedRounds int64
	// Messages is the total number of messages delivered.
	Messages int64
	// Words is the total number of payload words delivered.
	Words int64
	// MaxEdgeWords is the maximum number of words observed on a single
	// edge in a single direction in a single round (CONGEST compliance:
	// must stay <= WordsPerEdge of the network).
	MaxEdgeWords int
}

// TotalRounds is the complete round bill.
func (s Stats) TotalRounds() int64 { return s.SimulatedRounds + s.ChargedRounds }

// PhaseSpan records the cost of one named phase for experiment reporting.
type PhaseSpan struct {
	Name      string
	Simulated int64
	Charged   int64
	Messages  int64
}

// Network wraps a graph with CONGEST cost accounting.
type Network struct {
	G *graph.Graph
	// WordsPerEdge is the per-edge per-direction per-round budget in
	// words (the model's O(log n) bits). A CONGEST message carries a
	// constant number of O(log n)-bit fields (ids, weights, counters);
	// the default budget is 8 words.
	WordsPerEdge int
	// Workers is the size of the goroutine pool used to run node handlers
	// (defaults to GOMAXPROCS). Set to 1 for fully sequential execution.
	Workers int
	// Observer, when non-nil, receives one RoundSample per simulated round
	// (see RoundRecorder for the bounded default). It must not be changed
	// while a Run is in flight, and ResetAccounting does not touch it. A
	// nil Observer costs one branch per round and nothing else.
	Observer RoundObserver

	stats   Stats
	phases  []PhaseSpan
	mark    Stats // stats snapshot at the start of the current phase
	cur     string
	sc      *scratch    // engine buffers, recycled across Run calls
	pool    *pool       // persistent worker pool; see Close
	running atomic.Bool // guards re-entrant/concurrent Run on shared scratch
}

// NewNetwork returns a network over g with the default eight-word budget.
// A Network whose Runs executed parallel rounds owns a worker pool that
// persists across Run calls; call Close when done with the Network to
// release it (a GC cleanup eventually reclaims the pool of a Network
// dropped without Close, but explicit Close is deterministic).
func NewNetwork(g *graph.Graph) *Network {
	return &Network{G: g, WordsPerEdge: 8, Workers: runtime.GOMAXPROCS(0)}
}

// Close releases the Network's persistent worker-pool goroutines. It is
// idempotent and a no-op for networks that never ran a parallel round; it
// must not be called concurrently with Run. The Network must not be used
// after Close (a later Run would spawn a fresh pool, which works but
// defeats the point).
func (n *Network) Close() {
	if n.pool != nil {
		n.pool.close()
		n.pool = nil
	}
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// ResetAccounting zeroes the Network's cost accounting — stats, recorded
// phase spans, and any open phase — while keeping the engine scratch and
// the persistent worker pool warm. It exists for callers that reuse one
// Network across independent solves (the service layer's NetworkPool): each
// solve then reports its own round and message bill as if the Network were
// fresh. It must not be called concurrently with Run.
func (n *Network) ResetAccounting() {
	n.stats = Stats{}
	n.mark = Stats{}
	n.phases = n.phases[:0]
	n.cur = ""
}

// Phases returns the per-phase accounting recorded via BeginPhase/EndPhase.
func (n *Network) Phases() []PhaseSpan { return n.phases }

// BeginPhase starts attributing costs to a named phase.
func (n *Network) BeginPhase(name string) {
	n.cur = name
	n.mark = n.stats
}

// EndPhase closes the current phase and records its span.
func (n *Network) EndPhase() {
	if n.cur == "" {
		return
	}
	n.phases = append(n.phases, PhaseSpan{
		Name:      n.cur,
		Simulated: n.stats.SimulatedRounds - n.mark.SimulatedRounds,
		Charged:   n.stats.ChargedRounds - n.mark.ChargedRounds,
		Messages:  n.stats.Messages - n.mark.Messages,
	})
	n.cur = ""
}

// Charge bills k analytic rounds (k<0 is an error). Used only for
// subroutines the paper cites from prior work; see DESIGN.md.
func (n *Network) Charge(k int64, why string) error {
	if k < 0 {
		return fmt.Errorf("congest: negative charge %d (%s)", k, why)
	}
	n.stats.ChargedRounds += k
	return nil
}

// ErrBandwidth reports a CONGEST bandwidth violation: a primitive attempted
// to push more than WordsPerEdge words over one edge direction in one round.
type ErrBandwidth struct {
	EdgeID, From, Words, Budget int
}

func (e *ErrBandwidth) Error() string {
	return fmt.Sprintf("congest: %d words from vertex %d on edge %d exceeds budget %d",
		e.Words, e.From, e.EdgeID, e.Budget)
}

// KuttenPelegMSTRounds is the analytic round bill for the cited
// O(D + sqrt(n) log* n) MST algorithm (Kutten–Peleg), with log* folded into
// a small constant as is standard.
func KuttenPelegMSTRounds(n, diam int) int64 {
	return int64(diam) + 5*isqrt(n)
}

// LCALabelRounds is the analytic round bill for the cited Alstrup et al.
// labeling construction used in Section 4.1, O(D + sqrt(n) log* n).
func LCALabelRounds(n, diam int) int64 {
	return int64(diam) + 5*isqrt(n)
}

// SegmentDecompositionRounds is the analytic bill for the cited
// O(D + sqrt(n) log* n) construction of the segment decomposition [8,16].
func SegmentDecompositionRounds(n, diam int) int64 {
	return int64(diam) + 5*isqrt(n)
}

// LayeringRounds is the analytic bill for Claim 4.10: O((D + sqrt(n)) log n)
// rounds to compute the layer decomposition.
func LayeringRounds(n, diam int) int64 {
	return (int64(diam) + isqrt(n)) * ilog2(n)
}

// isqrt returns the smallest x with x*x >= n (the ceiling square root the
// analytic round bills use), via an integer Newton iteration seeded from
// the bit length — O(log log n) steps instead of the O(sqrt n) counting
// loop it replaces. Exact for the full int range (no float rounding).
func isqrt(n int) int64 {
	if n <= 0 {
		return 0
	}
	x := int64(n)
	// Seed with a power of two >= floor(sqrt(x)): 2^ceil(bits/2).
	r := int64(1) << ((bits.Len64(uint64(x)) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			break
		}
		r = nr
	}
	// r = floor(sqrt(x)); round up to the ceiling square root.
	if r*r < x {
		r++
	}
	return r
}

func ilog2(n int) int64 {
	l := int64(0)
	for 1<<l < n {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}
