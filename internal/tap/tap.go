// Package tap implements the paper's primary contribution: the deterministic
// primal-dual approximation algorithm for weighted tree augmentation (TAP)
// in the CONGEST model (Sections 3 and 4).
//
// Given a 2-edge-connected graph G, a spanning tree T and the virtual graph
// G' (all non-tree edges ancestor-to-descendant), the solver runs
//
//   - a forward phase (Section 4.4) that raises dual variables y(t) layer by
//     layer until every tree edge is covered by the tentative set A, keeping
//     every dual constraint within a (1+eps) factor; and
//   - a reverse-delete phase that prunes A to B so that every tree edge with
//     y(t) > 0 is covered at most c times: c=4 for the basic variant
//     (Section 3.5/4.5) and c=2 for the improved variant with the cleaning
//     pass (Section 4.6).
//
// By Lemma 3.1 the result is a (c(1+eps)^2)-approximation of TAP on G',
// hence (Lemma 4.1) a 2c(1+eps)^2-approximation on G, i.e. (4+eps) for the
// improved variant; with Claim 2.1 this yields the (5+eps)-approximation for
// 2-ECSS of Theorem 1.1. The solver also returns the dual solution, whose
// scaled value is a certified lower bound used by the experiments.
//
// All cross-node data flows go through the segment aggregate machinery and
// the BFS-tree primitives, so the round bill on the congest.Network reflects
// the algorithm's O((D + sqrt n) log^2 n / eps) complexity.
package tap

import (
	"errors"
	"fmt"
	"math"

	"twoecss/internal/congest"
	"twoecss/internal/layering"
	"twoecss/internal/segments"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

// Variant selects the reverse-delete flavour.
type Variant int

const (
	// Cover4 is the basic reverse-delete (Section 3.5): every R_k edge is
	// covered at most 4 times, giving (4+eps)-approx TAP on G'.
	Cover4 Variant = iota + 1
	// Cover2 is the improved reverse-delete with the cleaning pass
	// (Section 4.6): every R_k edge is covered at most 2 times, giving
	// (2+eps)-approx TAP on G'.
	Cover2
)

func (v Variant) String() string {
	switch v {
	case Cover4:
		return "cover4"
	case Cover2:
		return "cover2"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ErrInfeasible reports that some tree edge is covered by no non-tree edge,
// i.e. the input graph is not 2-edge-connected.
var ErrInfeasible = errors.New("tap: tree edge not coverable (input not 2-edge-connected)")

// Solver bundles the substrate a TAP run needs.
type Solver struct {
	Net *congest.Network
	// BFS is the communication tree over the network graph.
	BFS *tree.Rooted
	// T is the spanning tree being augmented.
	T *tree.Rooted
	// VG is the virtual graph G'.
	VG *vgraph.VGraph
	// Dec is the segment decomposition of T.
	Dec *segments.Decomposition
	// Lay is the layer decomposition of T.
	Lay *layering.Layering
	// Agg is the aggregate machinery.
	Agg *segments.Aggregator
}

// NewSolver builds the solver substrate from a network and a spanning tree,
// charging the construction bills of the cited components (LCA labels,
// segment decomposition, layering).
func NewSolver(net *congest.Network, bfs, t *tree.Rooted) (*Solver, error) {
	vg, err := vgraph.BuildFromGraph(t)
	if err != nil {
		return nil, err
	}
	diam := bfs.Height() // eccentricity of the BFS root bounds D up to 2x
	if err := net.Charge(congest.LCALabelRounds(t.G.N, diam), "LCA labels (Section 4.1)"); err != nil {
		return nil, err
	}
	dec, err := segments.Build(t)
	if err != nil {
		return nil, err
	}
	if err := net.Charge(congest.SegmentDecompositionRounds(t.G.N, diam), "segment decomposition (Section 4.2.1)"); err != nil {
		return nil, err
	}
	lay, err := layering.Build(t)
	if err != nil {
		return nil, err
	}
	if err := layering.ChargeBuild(net, t.G.N, diam); err != nil {
		return nil, err
	}
	return &Solver{
		Net: net, BFS: bfs, T: t, VG: vg, Dec: dec, Lay: lay,
		Agg: segments.NewAggregator(net, bfs, dec, vg),
	}, nil
}

// Result is the outcome of a weighted TAP run.
type Result struct {
	// VEdges is the final augmentation B as virtual edge ids.
	VEdges []int
	// OrigEdges is the projection of B to original graph edge ids.
	OrigEdges []int
	// Weight is the total weight of OrigEdges (in G).
	Weight int64
	// VirtWeight is the total weight of B in G'.
	VirtWeight int64
	// Duals holds y(t) per tree-edge child.
	Duals []float64
	// DualLB is sum(y)/(1+eps): a certified lower bound on the optimum TAP
	// value in G' (and half of it lower-bounds TAP in G).
	DualLB float64
	// MaxCoverRk is the maximum number of B-edges covering any R_k edge
	// (paper: <= 2 for Cover2, <= 4 for Cover4).
	MaxCoverRk int
	// Epochs and Iterations count forward-phase work; ReverseIterations
	// counts reverse-delete (epoch, layer) iterations.
	Epochs, Iterations, ReverseIterations int
}

// float <-> word helpers: aggregate payloads carry IEEE-754 bits.

func fbits(x float64) congest.Word { return congest.Word(math.Float64bits(x)) }
func ffrom(w congest.Word) float64 { return math.Float64frombits(uint64(w)) }
func fsum(a, b congest.Word) congest.Word {
	return fbits(ffrom(a) + ffrom(b))
}
func fmin(a, b congest.Word) congest.Word {
	return fbits(math.Min(ffrom(a), ffrom(b)))
}
func isum(a, b congest.Word) congest.Word { return a + b }

const weightTol = 1e-9
