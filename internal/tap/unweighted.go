package tap

import (
	"fmt"
	"slices"

	"twoecss/internal/layering"
)

// UnweightedResult is the outcome of the Section 3.6.1 algorithm.
type UnweightedResult struct {
	// VEdges is the augmentation (virtual edge ids): both petals of every
	// MIS edge.
	VEdges []int
	// OrigEdges is the projection to the input graph.
	OrigEdges []int
	// MISSize is the number of independent tree edges found; it certifies
	// OPT >= MISSize on G', hence |VEdges| <= 2*OPT (2-approximation).
	MISSize int
}

// SolveUnweighted runs the simple unweighted TAP algorithm of Section 3.6.1:
// an MIS of the tree edges with respect to all non-tree edges is computed
// layer by layer, and both petals of every MIS edge enter the augmentation.
// Since no virtual edge covers two MIS edges, any cover needs at least one
// edge per MIS element, so the result is a 2-approximation for unweighted
// TAP on G' and a 4-approximation on G.
func (s *Solver) SolveUnweighted() (*UnweightedResult, error) {
	nv := len(s.VG.VEdges)
	inX := func(ve int) bool { return true }
	inY := make([]bool, nv)
	coveredByY := make([]bool, s.T.G.N)
	inF := make([]bool, s.T.G.N)
	for c := range inF {
		inF[c] = c != s.T.Root
	}
	var mis []int

	for i := 1; i <= s.Lay.NumLayers; i++ {
		s.Net.BeginPhase(fmt.Sprintf("unweighted layer %d", i))
		htilde := make([]bool, s.T.G.N)
		any := false
		for _, c := range s.Lay.EdgesInLayer(i) {
			if !coveredByY[c] {
				htilde[c] = true
				any = true
			}
		}
		if empty, err := s.globalEmpty(htilde); err != nil {
			return nil, err
		} else if empty || !any {
			s.Net.EndPhase()
			continue
		}
		pet, err := layering.ComputePetals(s.Agg, s.Lay, i, inX)
		if err != nil {
			return nil, err
		}
		tprime, err := s.globalCandidates(i, htilde, pet)
		if err != nil {
			return nil, err
		}
		for _, c := range s.greedyMIS(tprime, pet) {
			mis = append(mis, c)
			p := pet[c]
			if p.Higher < 0 || p.Lower < 0 {
				return nil, fmt.Errorf("%w: tree edge %d", ErrInfeasible, c)
			}
			inY[p.Higher] = true
			inY[p.Lower] = true
		}
		if err := s.refreshCoverage(inY, coveredByY); err != nil {
			return nil, err
		}
		if err := s.Net.Charge(int64(3*s.Dec.MaxDiameter+3), "local MIS scan (Section 3.6.1)"); err != nil {
			return nil, err
		}
		for _, a := range s.localScan(i, inF, coveredByY, pet, Cover4, inY) {
			if a.hi < 0 || a.lo < 0 {
				return nil, fmt.Errorf("%w: tree edge %d", ErrInfeasible, a.c)
			}
			mis = append(mis, a.c)
		}
		if err := s.refreshCoverage(inY, coveredByY); err != nil {
			return nil, err
		}
		s.Net.EndPhase()
	}
	if !s.VG.FullyCovers(func(ve int) bool { return inY[ve] }) {
		return nil, fmt.Errorf("tap: unweighted augmentation does not cover the tree")
	}
	res := &UnweightedResult{MISSize: len(mis)}
	for ve, in := range inY {
		if in {
			res.VEdges = append(res.VEdges, ve)
		}
	}
	slices.Sort(res.VEdges)
	res.OrigEdges = s.VG.Project(res.VEdges)
	return res, nil
}

// VerifyMISIndependence checks that no virtual edge covers two MIS elements
// (the independence invariant of Claim 4.13); used by tests and experiments.
func (s *Solver) VerifyMISIndependence(mis []int) error {
	for ve := range s.VG.VEdges {
		cnt := 0
		for _, c := range mis {
			if s.VG.Covers(ve, c) {
				cnt++
				if cnt > 1 {
					return fmt.Errorf("tap: virtual edge %d covers two MIS edges", ve)
				}
			}
		}
	}
	return nil
}
