package tap

import (
	"math"
	"math/rand"
	"testing"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
)

// fixture builds a solver over a random 2EC weighted graph with its MST.
func fixture(t *testing.T, seed int64, n, extra int, mode graph.WeightMode) (*Solver, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: mode, MaxW: 1000, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	if _, err := graph.Ensure2EC(g, cfg); err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mst.KruskalTree(g, 0, net)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, bfs, rt)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func checkResult(t *testing.T, s *Solver, res *Result, eps float64, c float64) {
	t.Helper()
	// 1. Cover validity.
	in := map[int]bool{}
	for _, ve := range res.VEdges {
		in[ve] = true
	}
	if !s.VG.FullyCovers(func(ve int) bool { return in[ve] }) {
		t.Fatal("augmentation does not cover the tree")
	}
	// 2. Dual feasibility (Section 3.4 correctness).
	if bad := s.DualFeasibilityViolations(res, eps); bad != 0 {
		t.Fatalf("%d dual constraints violated", bad)
	}
	// 3. Coverage multiplicity (Lemma 3.2 / 4.18).
	if res.MaxCoverRk > int(c) {
		t.Fatalf("an R_k edge is covered %d times (bound %v)", res.MaxCoverRk, c)
	}
	// 4. Certified approximation on G' (Lemma 3.1): w(B) <= c(1+eps)^2 LB.
	if res.DualLB > 0 {
		bound := c * (1 + eps) * (1 + eps) * res.DualLB
		if float64(res.VirtWeight) > bound*(1+1e-6) {
			t.Fatalf("virtual weight %d exceeds certified bound %.2f (LB %.2f)",
				res.VirtWeight, bound, res.DualLB)
		}
	}
}

func TestSolveWeightedCover2Random(t *testing.T) {
	for _, tc := range []struct {
		seed     int64
		n, extra int
	}{
		{1, 12, 8}, {2, 25, 20}, {3, 40, 30}, {4, 60, 80}, {5, 90, 40},
	} {
		s, _ := fixture(t, tc.seed, tc.n, tc.extra, graph.WeightUniform)
		res, err := s.SolveWeighted(0.25, Cover2)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		checkResult(t, s, res, 0.25, 2)
	}
}

func TestSolveWeightedCover4Random(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		s, _ := fixture(t, seed, 45, 50, graph.WeightSkewed)
		res, err := s.SolveWeighted(0.25, Cover4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkResult(t, s, res, 0.25, 4)
	}
}

func TestSolveWeightedRing(t *testing.T) {
	// On a pure cycle the tree is a path and the optimum augmentation is
	// the single closing edge.
	g := graph.RingWithChords(20, 0, graph.DefaultGenConfig(7))
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mst.KruskalTree(g, 0, net)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, bfs, rt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveWeighted(0.2, Cover2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OrigEdges) != 1 {
		t.Fatalf("ring augmentation has %d edges, want 1", len(res.OrigEdges))
	}
	checkResult(t, s, res, 0.2, 2)
}

// bruteTAP finds the optimal virtual augmentation by exhaustive search over
// subsets of original non-tree edges (each original edge contributes its
// virtual edges together, matching what a real solution buys).
func bruteTAPOrig(s *Solver) int64 {
	nonTree := s.T.NonTreeEdgeIDs()
	m := len(nonTree)
	best := int64(math.MaxInt64)
	for mask := 0; mask < 1<<m; mask++ {
		var w int64
		in := make(map[int]bool)
		for j := 0; j < m; j++ {
			if mask>>j&1 == 1 {
				id := nonTree[j]
				w += int64(s.T.G.Edges[id].W)
				for _, ve := range s.VG.VirtualOf(id) {
					in[ve] = true
				}
			}
		}
		if w >= best {
			continue
		}
		if s.VG.FullyCovers(func(ve int) bool { return in[ve] }) {
			best = w
		}
	}
	return best
}

func TestApproximationAgainstExactSmall(t *testing.T) {
	// Theorem 4.19: weight of the projected augmentation is at most
	// (4+eps) * OPT_TAP(G).
	eps := 0.25
	for _, seed := range []int64{21, 22, 23, 24, 25, 26} {
		s, _ := fixture(t, seed, 10, 5, graph.WeightUniform)
		if len(s.T.NonTreeEdgeIDs()) > 16 {
			t.Skip("instance too large for brute force")
		}
		res, err := s.SolveWeighted(eps, Cover2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := bruteTAPOrig(s)
		bound := (4.0 + 2*eps) * float64(opt)
		if float64(res.Weight) > bound+1e-6 {
			t.Fatalf("seed %d: weight %d > (4+eps) * OPT %d", seed, res.Weight, opt)
		}
		// And the dual certificate must lower-bound 2*OPT (G' optimum).
		if res.DualLB > 2*float64(opt)*(1+1e-9)+1e-9 {
			t.Fatalf("seed %d: dual LB %.3f exceeds 2*OPT=%d", seed, res.DualLB, 2*opt)
		}
	}
}

func TestSolveUnweighted(t *testing.T) {
	for _, seed := range []int64{31, 32, 33, 34} {
		s, _ := fixture(t, seed, 40, 40, graph.WeightUnit)
		res, err := s.SolveUnweighted()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := map[int]bool{}
		for _, ve := range res.VEdges {
			in[ve] = true
		}
		if !s.VG.FullyCovers(func(ve int) bool { return in[ve] }) {
			t.Fatal("unweighted augmentation does not cover")
		}
		// 2-approximation certificate: the MIS is independent and the
		// augmentation size is at most twice the MIS size.
		if len(res.VEdges) > 2*res.MISSize {
			t.Fatalf("|aug| = %d > 2 * MIS %d", len(res.VEdges), res.MISSize)
		}
	}
}

func TestUnweightedMISIndependence(t *testing.T) {
	s, _ := fixture(t, 41, 35, 35, graph.WeightUnit)
	res, err := s.SolveUnweighted()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Re-run to collect the MIS itself via the exposed verifier: collect
	// anchors indirectly by checking independence of the petals' sources
	// is covered in the e2e invariants; here we assert the certificate.
	if res.MISSize == 0 {
		t.Fatal("empty MIS on a 2EC graph")
	}
}

func TestSolverRejectsBridgedGraph(t *testing.T) {
	// Two triangles joined by one bridge: TAP is infeasible.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mst.KruskalTree(g, 0, net)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, bfs, rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveWeighted(0.3, Cover2); err == nil {
		t.Fatal("bridged graph accepted")
	}
}

func TestEpsValidation(t *testing.T) {
	s, _ := fixture(t, 51, 10, 8, graph.WeightUniform)
	if _, err := s.SolveWeighted(0, Cover2); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := s.SolveWeighted(1.5, Cover2); err == nil {
		t.Fatal("eps=1.5 accepted")
	}
	if _, err := s.SolveWeighted(0.2, Variant(9)); err == nil {
		t.Fatal("bad variant accepted")
	}
}

func TestRoundsAccounted(t *testing.T) {
	s, _ := fixture(t, 61, 50, 60, graph.WeightUniform)
	if _, err := s.SolveWeighted(0.3, Cover2); err != nil {
		t.Fatal(err)
	}
	st := s.Net.Stats()
	if st.SimulatedRounds == 0 || st.ChargedRounds == 0 {
		t.Fatalf("rounds not accounted: %+v", st)
	}
	if len(s.Net.Phases()) == 0 {
		t.Fatal("no phases recorded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*Result, error) {
		s, _ := fixture(t, 71, 30, 25, graph.WeightUniform)
		return s.SolveWeighted(0.25, Cover2)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || len(a.VEdges) != len(b.VEdges) {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Weight, len(a.VEdges), b.Weight, len(b.VEdges))
	}
	for i := range a.VEdges {
		if a.VEdges[i] != b.VEdges[i] {
			t.Fatal("edge sets differ between runs")
		}
	}
}
