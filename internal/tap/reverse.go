package tap

import (
	"fmt"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/layering"
	"twoecss/internal/primitives"
)

// anchor records one MIS element of the reverse-delete phase and its petals.
type anchor struct {
	c      int // tree-edge child
	hi, lo int // petal virtual-edge ids (lo is unused by Cover2 additions)
	global bool
	layer  int
}

// runReverse executes the reverse-delete phase (Sections 3.5 / 4.5 for
// Cover4, Section 4.6 for Cover2 with the cleaning pass) and returns the
// membership vector of the final augmentation B.
func (s *Solver) runReverse(fs *forwardState, variant Variant) ([]bool, int, error) {
	n := s.T.G.N
	nv := len(s.VG.VEdges)
	L := s.Lay.NumLayers
	inB := make([]bool, nv)
	iterations := 0

	for k := L; k >= 1; k-- {
		s.Net.BeginPhase(fmt.Sprintf("reverse epoch %d", k))
		// X = B ∪ A_k; F = edges first covered in epochs >= k.
		inX := make([]bool, nv)
		for ve := 0; ve < nv; ve++ {
			inX[ve] = inB[ve] || fs.addedEpoch[ve] == k
		}
		inF := make([]bool, n)
		for c := 0; c < n; c++ {
			inF[c] = c != s.T.Root && fs.coveredEpoch[c] >= k
		}
		inY := make([]bool, nv)
		coveredByY := make([]bool, n)
		var anchors []anchor

		for i := k; i <= L; i++ {
			iterations++
			htilde := make([]bool, n)
			any := false
			for _, c := range s.Lay.EdgesInLayer(i) {
				if inF[c] && !coveredByY[c] {
					htilde[c] = true
					any = true
				}
			}
			// Global emptiness test over the BFS tree.
			if empty, err := s.globalEmpty(htilde); err != nil {
				return nil, 0, err
			} else if empty || !any {
				continue
			}
			pet, err := layering.ComputePetals(s.Agg, s.Lay, i, func(ve int) bool { return inX[ve] })
			if err != nil {
				return nil, 0, err
			}

			// --- Global part: per segment, the highest and lowest
			// uncovered highway edges of the layer-i path, broadcast with
			// their petals; everyone computes the same greedy MIS.
			tprime, err := s.globalCandidates(i, htilde, pet)
			if err != nil {
				return nil, 0, err
			}
			mis := s.greedyMIS(tprime, pet)
			for _, c := range mis {
				p := pet[c]
				anchors = append(anchors, anchor{c: c, hi: p.Higher, lo: p.Lower, global: true, layer: i})
				inY[p.Higher] = true
				if variant == Cover4 {
					inY[p.Lower] = true
				}
			}
			if err := s.refreshCoverage(inY, coveredByY); err != nil {
				return nil, 0, err
			}

			// --- Local part: scan each layer-i path piece inside each
			// segment bottom-up, adding uncovered edges as local anchors.
			if err := s.Net.Charge(int64(3*s.Dec.MaxDiameter+3), "local MIS scan (Section 4.5.1)"); err != nil {
				return nil, 0, err
			}
			locals := s.localScan(i, inF, coveredByY, pet, variant, inY)
			anchors = append(anchors, locals...)
			if err := s.refreshCoverage(inY, coveredByY); err != nil {
				return nil, 0, err
			}
		}

		if variant == Cover2 {
			if err := s.cleaning(k, fs, anchors, inY); err != nil {
				return nil, 0, err
			}
		}
		// Defensive post-condition: Y must cover F (Lemma 3.2 / Claim 4.17).
		if err := s.refreshCoverage(inY, coveredByY); err != nil {
			return nil, 0, err
		}
		for c := 0; c < n; c++ {
			if inF[c] && !coveredByY[c] {
				return nil, 0, fmt.Errorf("tap: reverse epoch %d left edge %d of F uncovered", k, c)
			}
		}
		inB = inY
		s.Net.EndPhase()
	}
	return inB, iterations, nil
}

// globalEmpty runs the distributed emptiness test of one iteration.
func (s *Solver) globalEmpty(set []bool) (bool, error) {
	x := make([]congest.Word, s.BFS.G.N)
	for c, in := range set {
		if in {
			x[c] = 1
		}
	}
	or := func(a, b congest.Word) congest.Word {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}
	got, err := primitives.GlobalAggregate(s.Net, s.BFS, x, or)
	if err != nil {
		return false, err
	}
	return got == 0, nil
}

// globalCandidates collects, for every segment, the highest and lowest
// still-uncovered layer-i highway edges (the set T' of Section 4.5.1) and
// broadcasts them with their petals over the BFS tree.
func (s *Solver) globalCandidates(layer int, htilde []bool, pet map[int]layering.Petals) ([]int, error) {
	t := s.T
	best := make(map[int][2]int, len(s.Dec.Segs)) // seg -> (highest, lowest) child
	for c := 0; c < t.G.N; c++ {
		if c == t.Root || !htilde[c] || !s.Dec.IsHighwayEdge[c] || s.Lay.LayerOf[c] != layer {
			continue
		}
		sid := s.Dec.SegOfEdge[c]
		cur, ok := best[sid]
		if !ok {
			best[sid] = [2]int{c, c}
			continue
		}
		if t.Depth[c] < t.Depth[cur[0]] {
			cur[0] = c
		}
		if t.Depth[c] > t.Depth[cur[1]] {
			cur[1] = c
		}
		best[sid] = cur
	}
	seen := map[int]bool{}
	var tprime []int
	perNode := make([][]primitives.Item, s.BFS.G.N)
	for _, pair := range best {
		for _, c := range []int{pair[0], pair[1]} {
			if seen[c] {
				continue
			}
			seen[c] = true
			tprime = append(tprime, c)
			p := pet[c]
			perNode[c] = append(perNode[c], primitives.Item{
				congest.Word(c), congest.Word(p.Higher), congest.Word(p.Lower),
			})
		}
	}
	if err := primitives.GatherBroadcastAll(s.Net, s.BFS, perNode); err != nil {
		return nil, err
	}
	slices.Sort(tprime)
	return tprime, nil
}

// greedyMIS computes the deterministic greedy MIS over the candidate tree
// edges; adjacency is witnessed by petals (two layer-i edges are neighbours
// iff a petal of one covers the other, by Claim 4.9).
func (s *Solver) greedyMIS(cands []int, pet map[int]layering.Petals) []int {
	var mis []int
	adjacent := func(a, b int) bool {
		pa, pb := pet[a], pet[b]
		return (pa.Higher >= 0 && s.VG.Covers(pa.Higher, b)) ||
			(pa.Lower >= 0 && s.VG.Covers(pa.Lower, b)) ||
			(pb.Higher >= 0 && s.VG.Covers(pb.Higher, a)) ||
			(pb.Lower >= 0 && s.VG.Covers(pb.Lower, a))
	}
	for _, c := range cands {
		if pet[c].Higher < 0 {
			continue // not coverable by X here; defensive
		}
		ok := true
		for _, m := range mis {
			if adjacent(c, m) {
				ok = false
				break
			}
		}
		if ok {
			mis = append(mis, c)
		}
	}
	return mis
}

// localScan performs the per-segment bottom-up scans of Section 4.5.1: for
// every layer-i path, each of its per-segment pieces is scanned from its
// lowest vertex; an uncovered H̃_i edge becomes a local anchor and its
// higher petal's ancestor endpoint propagates as local coverage.
func (s *Solver) localScan(layer int, inF, coveredByY []bool, pet map[int]layering.Petals, variant Variant, inY []bool) []anchor {
	t := s.T
	var out []anchor
	for _, p := range s.Lay.Paths {
		if p.Layer != layer {
			continue
		}
		// Split the path (bottom-up edge list) into per-segment pieces.
		start := 0
		for start < len(p.Edges) {
			sid := s.Dec.SegOfEdge[p.Edges[start]]
			end := start
			for end+1 < len(p.Edges) && s.Dec.SegOfEdge[p.Edges[end+1]] == sid {
				end++
			}
			// Scan the piece bottom-up with fresh local state.
			ancStar := -1 // highest ancestor covered by local additions
			for idx := start; idx <= end; idx++ {
				c := p.Edges[idx]
				if !inF[c] || coveredByY[c] {
					continue
				}
				if ancStar >= 0 && t.Depth[ancStar] < t.Depth[c] {
					continue // covered by a petal added below in this piece
				}
				pp, ok := pet[c]
				if !ok || pp.Higher < 0 {
					continue // defensive: X does not cover c
				}
				out = append(out, anchor{c: c, hi: pp.Higher, lo: pp.Lower, global: false, layer: layer})
				inY[pp.Higher] = true
				if variant == Cover4 {
					inY[pp.Lower] = true
				}
				a := s.VG.VEdges[pp.Higher].Anc
				if ancStar < 0 || t.Depth[a] < t.Depth[ancStar] {
					ancStar = a
				}
			}
			start = end + 1
		}
	}
	return out
}

// refreshCoverage updates coveredByY via the Claim 4.6 OR-aggregate.
func (s *Solver) refreshCoverage(inY []bool, coveredByY []bool) error {
	cov, err := s.Agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
		if inY[ve] {
			return 1, true
		}
		return 0, false
	}, isum, 0)
	if err != nil {
		return err
	}
	for c := range coveredByY {
		coveredByY[c] = cov[c] > 0
	}
	return nil
}

// cleaning implements the Section 4.6 cleaning pass of epoch k: every R_k
// edge covered exactly 3 times removes the higher petal of the (unique)
// global anchor strictly below it that covers it.
func (s *Solver) cleaning(k int, fs *forwardState, anchors []anchor, inY []bool) error {
	counts, err := s.Agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
		if inY[ve] {
			return 1, true
		}
		return 0, false
	}, isum, 0)
	if err != nil {
		return err
	}
	// The pass is simultaneous: all edges detect their count against the
	// same snapshot and removals apply together.
	snap := append([]bool(nil), inY...)
	var removed []int
	for c := 0; c < s.T.G.N; c++ {
		if c == s.T.Root || fs.rkOf[c] != k || counts[c] != 3 {
			continue
		}
		// Find the global anchor strictly below c whose higher petal is in
		// Y and covers c.
		bestDepth, bestVe := -1, -1
		for _, a := range anchors {
			if !a.global || a.c == c {
				continue
			}
			if !s.T.IsAncestor(c, a.c) { // a.c strictly below c
				continue
			}
			if snap[a.hi] && s.VG.Covers(a.hi, c) {
				if s.T.Depth[a.c] > bestDepth {
					bestDepth = s.T.Depth[a.c]
					bestVe = a.hi
				}
			}
		}
		if bestVe >= 0 {
			inY[bestVe] = false
			removed = append(removed, bestVe)
		}
	}
	// All vertices learn the removed petals (O(sqrt n) global anchors).
	perNode := make([][]primitives.Item, s.BFS.G.N)
	for _, ve := range removed {
		dec := s.VG.VEdges[ve].Dec
		perNode[dec] = append(perNode[dec], primitives.Item{congest.Word(ve)})
	}
	if err := primitives.GatherBroadcastAll(s.Net, s.BFS, perNode); err != nil {
		return err
	}
	return nil
}
