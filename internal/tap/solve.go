package tap

import (
	"fmt"
	"slices"
)

// SolveWeighted runs the full weighted TAP algorithm (forward + reverse-
// delete) with dual-growth parameter eps and the given reverse-delete
// variant, returning the augmentation and its certificate.
func (s *Solver) SolveWeighted(eps float64, variant Variant) (*Result, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("tap: eps %v out of (0,1)", eps)
	}
	if variant != Cover2 && variant != Cover4 {
		return nil, fmt.Errorf("tap: unknown variant %v", variant)
	}
	fs, err := s.runForward(eps)
	if err != nil {
		return nil, err
	}
	inB, revIters, err := s.runReverse(fs, variant)
	if err != nil {
		return nil, err
	}
	return s.assemble(fs, inB, eps, revIters)
}

// assemble validates the cover, projects to the input graph and packages
// the certificate.
func (s *Solver) assemble(fs *forwardState, inB []bool, eps float64, revIters int) (*Result, error) {
	if !s.VG.FullyCovers(func(ve int) bool { return inB[ve] }) {
		return nil, fmt.Errorf("tap: final augmentation does not cover the tree")
	}
	res := &Result{
		Duals:             append([]float64(nil), fs.y...),
		Epochs:            s.Lay.NumLayers,
		Iterations:        fs.iterations,
		ReverseIterations: revIters,
	}
	for ve, in := range inB {
		if in {
			res.VEdges = append(res.VEdges, ve)
			res.VirtWeight += int64(s.VG.VEdges[ve].W)
		}
	}
	slices.Sort(res.VEdges)
	res.OrigEdges = s.VG.Project(res.VEdges)
	for _, id := range res.OrigEdges {
		res.Weight += int64(s.T.G.Edges[id].W)
	}
	var sum float64
	for _, yv := range fs.y {
		sum += yv
	}
	res.DualLB = sum / (1 + eps)
	// Coverage multiplicity over R_k edges (Lemma 3.2 / Lemma 4.18).
	for c := 0; c < s.T.G.N; c++ {
		if c == s.T.Root || fs.rkOf[c] == 0 {
			continue
		}
		cnt := 0
		for _, ve := range s.Agg.Covering(c) {
			if inB[ve] {
				cnt++
			}
		}
		if cnt > res.MaxCoverRk {
			res.MaxCoverRk = cnt
		}
	}
	return res, nil
}

// DualFeasibilityViolations counts virtual edges whose dual constraint
// exceeds (1+eps) * w(e) beyond floating-point tolerance; the forward phase
// guarantees zero (Section 3.4, Correctness).
func (s *Solver) DualFeasibilityViolations(res *Result, eps float64) int {
	bad := 0
	for ve := range s.VG.VEdges {
		var sum float64
		for _, c := range s.Agg.CoveredBy(ve) {
			sum += res.Duals[c]
		}
		limit := (1 + eps) * float64(s.VG.VEdges[ve].W)
		if sum > limit*(1+1e-6)+1e-9 {
			bad++
		}
	}
	return bad
}
