package tap

import (
	"fmt"
	"math"

	"twoecss/internal/congest"
	"twoecss/internal/primitives"
)

// forwardState is the outcome of the forward phase, consumed by
// reverse-delete.
type forwardState struct {
	y            []float64 // dual per tree-edge child
	inA          []bool    // per virtual edge
	addedEpoch   []int     // per virtual edge, epoch it joined A (-1 if not)
	coveredEpoch []int     // per tree-edge child, epoch first covered (0 = never)
	rkOf         []int     // per tree-edge child, k if the edge is in R_k (0 if none)
	iterations   int
}

// runForward executes the forward phase of Section 4.4: epochs k = 1..L;
// in epoch k the uncovered layer-k edges (R_k) raise their duals
// multiplicatively until every one of them is covered by the growing set A.
func (s *Solver) runForward(eps float64) (*forwardState, error) {
	n := s.T.G.N
	nv := len(s.VG.VEdges)
	st := &forwardState{
		y:            make([]float64, n),
		inA:          make([]bool, nv),
		addedEpoch:   make([]int, nv),
		coveredEpoch: make([]int, n),
		rkOf:         make([]int, n),
	}
	for i := range st.addedEpoch {
		st.addedEpoch[i] = -1
	}
	covered := make([]bool, n)
	// Iteration bound per epoch: y grows from y0 by (1+eps) per iteration
	// and tightens its witness constraint after it gained a factor
	// |S_e^k| <= n (see Lemma 4.12).
	maxIter := int(math.Ceil(math.Log(float64(2*n+4))/math.Log1p(eps))) + 4

	for k := 1; k <= s.Lay.NumLayers; k++ {
		s.Net.BeginPhase(fmt.Sprintf("forward epoch %d", k))
		// R_k: layer-k edges still uncovered.
		rk := make([]int, 0)
		for _, c := range s.Lay.EdgesInLayer(k) {
			if !covered[c] {
				rk = append(rk, c)
				st.rkOf[c] = k
			}
		}
		if len(rk) == 0 {
			s.Net.EndPhase()
			continue
		}
		for iter := 0; ; iter++ {
			if iter > maxIter {
				s.Net.EndPhase()
				return nil, fmt.Errorf("tap: epoch %d exceeded %d forward iterations", k, maxIter)
			}
			st.iterations++
			// s(e) = sum of duals over covered tree edges (Claim 4.5).
			sVals, err := s.Agg.PerVEdge(func(c int) congest.Word {
				return fbits(st.y[c])
			}, fsum, fbits(0))
			if err != nil {
				return nil, err
			}
			if iter == 0 {
				// |S_e^k|: covered tree edges in R_k still uncovered.
				cnt, err := s.Agg.PerVEdge(func(c int) congest.Word {
					if st.rkOf[c] == k && !covered[c] {
						return 1
					}
					return 0
				}, isum, 0)
				if err != nil {
					return nil, err
				}
				// y(t) = min over covering e of (w(e)-s(e))/|S_e^k|
				// (Claim 4.6, min-aggregate).
				init, err := s.Agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
					if cnt[ve] == 0 {
						return 0, false
					}
					slack := float64(s.VG.VEdges[ve].W) - ffrom(sVals[ve])
					return fbits(slack / float64(cnt[ve])), true
				}, fmin, fbits(math.Inf(1)))
				if err != nil {
					return nil, err
				}
				for _, c := range rk {
					if covered[c] {
						continue
					}
					v := ffrom(init[c])
					if math.IsInf(v, 1) {
						return nil, fmt.Errorf("%w: tree edge %d", ErrInfeasible, c)
					}
					if v < 0 {
						v = 0
					}
					st.y[c] = v
				}
				// Re-aggregate s(e) after the dual jump.
				sVals, err = s.Agg.PerVEdge(func(c int) congest.Word {
					return fbits(st.y[c])
				}, fsum, fbits(0))
				if err != nil {
					return nil, err
				}
			} else {
				// Multiplicative growth for still-uncovered R_k edges
				// (purely node-local).
				for _, c := range rk {
					if !covered[c] {
						st.y[c] *= 1 + eps
					}
				}
				sVals, err = s.Agg.PerVEdge(func(c int) congest.Word {
					return fbits(st.y[c])
				}, fsum, fbits(0))
				if err != nil {
					return nil, err
				}
			}
			// Tight constraints join A (node-local per virtual edge).
			for ve := range s.VG.VEdges {
				if st.inA[ve] {
					continue
				}
				w := float64(s.VG.VEdges[ve].W)
				if ffrom(sVals[ve]) >= w*(1-weightTol) {
					st.inA[ve] = true
					st.addedEpoch[ve] = k
				}
			}
			// Tree edges learn whether A covers them (Claim 4.6, OR).
			cov, err := s.Agg.PerTreeEdge(func(ve int) (congest.Word, bool) {
				if st.inA[ve] {
					return 1, true
				}
				return 0, false
			}, isum, 0)
			if err != nil {
				return nil, err
			}
			for c := 0; c < n; c++ {
				if c == s.T.Root || covered[c] {
					continue
				}
				if cov[c] > 0 {
					covered[c] = true
					st.coveredEpoch[c] = k
				}
			}
			// Global termination test for epoch k over the BFS tree.
			pending := make([]congest.Word, s.BFS.G.N)
			for _, c := range rk {
				if !covered[c] {
					pending[c] = 1
				}
			}
			or := func(a, b congest.Word) congest.Word {
				if a != 0 || b != 0 {
					return 1
				}
				return 0
			}
			left, err := primitives.GlobalAggregate(s.Net, s.BFS, pending, or)
			if err != nil {
				return nil, err
			}
			if left == 0 {
				break
			}
		}
		s.Net.EndPhase()
	}
	return st, nil
}
