package shortcuts

import (
	"math"
	"math/rand"
	"testing"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/primitives"
	"twoecss/internal/tree"
)

func fixtureNet(t *testing.T, g *graph.Graph) (*congest.Network, *tree.Rooted) {
	t.Helper()
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, bfs
}

// randomConnectedPartition grows parts from random seeds.
func randomConnectedPartition(g *graph.Graph, rng *rand.Rand, parts int) []int {
	of := make([]int, g.N)
	for v := range of {
		of[v] = -1
	}
	var frontier []int
	for p := 0; p < parts && p < g.N; p++ {
		for {
			v := rng.Intn(g.N)
			if of[v] < 0 {
				of[v] = p
				frontier = append(frontier, v)
				break
			}
		}
	}
	for len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		grew := false
		for _, id := range g.Incident(v) {
			u := g.Edges[id].Other(v)
			if of[u] < 0 {
				of[u] = of[v]
				frontier = append(frontier, u)
				grew = true
				break
			}
		}
		if !grew {
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
	}
	return of
}

func TestPartitionValidation(t *testing.T) {
	g := graph.Grid(4, 4, graph.DefaultGenConfig(1))
	of := make([]int, g.N)
	of[0], of[15] = 1, 1 // corners: disconnected part
	for v := 1; v < 15; v++ {
		of[v] = 0
	}
	if _, err := NewPartition(g, of); err == nil {
		t.Fatal("disconnected part accepted")
	}
	if _, err := NewPartition(g, []int{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestBuildersQualityAndAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(6, 6, graph.DefaultGenConfig(2))},
		{"treeleafcycle", graph.TreeLeafCycle(5, graph.DefaultGenConfig(3))},
		{"er", graph.ErdosRenyi(48, 0.12, graph.DefaultGenConfig(4))},
	}
	for _, tg := range graphs {
		for trial := 0; trial < 3; trial++ {
			of := randomConnectedPartition(tg.g, rng, 2+rng.Intn(6))
			part, err := NewPartition(tg.g, of)
			if err != nil {
				t.Fatal(err)
			}
			net, bfs := fixtureNet(t, tg.g)
			builders := []Builder{
				&TrivialBuilder{G: tg.g},
				&GlobalBFSBuilder{G: tg.g, BFS: bfs},
				&SteinerBuilder{G: tg.g, BFS: bfs},
			}
			for _, b := range builders {
				sc, err := b.Build(part)
				if err != nil {
					t.Fatalf("%s/%s: %v", tg.name, b.Name(), err)
				}
				if sc.Alpha < 1 || sc.Beta < 1 {
					t.Fatalf("%s/%s: degenerate quality %d/%d", tg.name, b.Name(), sc.Alpha, sc.Beta)
				}
				// Aggregate: per-part max of vertex ids must equal the
				// true per-part max for every member.
				x := make([]Word, tg.g.N)
				for v := range x {
					x[v] = Word(v)
				}
				max := func(a, b Word) Word {
					if a > b {
						return a
					}
					return b
				}
				got, err := PartwiseAggregate(net, part, sc, x, max)
				if err != nil {
					t.Fatalf("%s/%s: %v", tg.name, b.Name(), err)
				}
				want := map[int]Word{}
				for v, p := range of {
					if Word(v) > want[p] {
						want[p] = Word(v)
					}
				}
				for v, p := range of {
					if got[v] != want[p] {
						t.Fatalf("%s/%s: vertex %d got %d want %d", tg.name, b.Name(), v, got[v], want[p])
					}
				}
			}
		}
	}
}

func TestGlobalBFSWorstCaseBound(t *testing.T) {
	// alpha+beta must be O(D + sqrt n) on any partition.
	g := graph.ErdosRenyi(100, 0.08, graph.DefaultGenConfig(7))
	rng := rand.New(rand.NewSource(8))
	_, bfs := fixtureNet(t, g)
	b := &GlobalBFSBuilder{G: g, BFS: bfs}
	diam, err := g.DiameterApprox()
	if err != nil {
		t.Fatal(err)
	}
	bound := 8 * (diam + int(math.Sqrt(100)) + 2)
	for trial := 0; trial < 5; trial++ {
		of := randomConnectedPartition(g, rng, 1+rng.Intn(20))
		part, err := NewPartition(g, of)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := b.Build(part)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Quality() > bound {
			t.Fatalf("global-bfs quality %d exceeds O(D+sqrt n) bound %d", sc.Quality(), bound)
		}
	}
}

func TestHierarchyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(300)
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, 0, cfg)
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := BuildHierarchy(rt)
		if err != nil {
			t.Fatal(err)
		}
		lg := 1
		for 1<<lg < n {
			lg++
		}
		if h.Depth() > 2*lg+3 {
			t.Fatalf("n=%d: hierarchy depth %d not O(log n)", n, h.Depth())
		}
		// Levels must coarsen: same level-i fragment implies same
		// level-(i+1) fragment.
		for li := 0; li+1 < h.Depth(); li++ {
			fmap := map[int]int{}
			for v := 0; v < n; v++ {
				f := h.Levels[li][v]
				nf := h.Levels[li+1][v]
				if prev, ok := fmap[f]; ok && prev != nf {
					t.Fatalf("level %d fragment %d splits at level %d", li, f, li+1)
				}
				fmap[f] = nf
			}
		}
		// Top level is a single fragment.
		top := h.Levels[h.Depth()-1]
		for v := 1; v < n; v++ {
			if top[v] != top[0] {
				t.Fatal("top level not a single fragment")
			}
		}
		// Every level's fragments are connected in the tree.
		for _, lv := range h.Levels {
			if _, err := NewPartition(g, lv); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func toolsFixture(t *testing.T, seed int64, n, extra int) (*Tools, *tree.Rooted) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 40, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	net, bfs := fixtureNet(t, g)
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTools(net, rt, &SteinerBuilder{G: g, BFS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	return tl, rt
}

func TestDescendantsAndAncestorsSum(t *testing.T) {
	tl, rt := toolsFixture(t, 10, 60, 40)
	n := rt.G.N
	x := make([]Word, n)
	for v := range x {
		x[v] = Word(v + 3)
	}
	sum := func(a, b Word) Word { return a + b }
	ds, err := tl.DescendantsSum(x, sum)
	if err != nil {
		t.Fatal(err)
	}
	as, err := tl.AncestorsSum(x, sum)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		var wantD, wantA Word
		for u := 0; u < n; u++ {
			if rt.IsAncestor(v, u) {
				wantD += x[u]
			}
			if rt.IsAncestor(u, v) {
				wantA += x[u]
			}
		}
		if ds[v] != wantD {
			t.Fatalf("descendants sum at %d: %d want %d", v, ds[v], wantD)
		}
		if as[v] != wantA {
			t.Fatalf("ancestors sum at %d: %d want %d", v, as[v], wantA)
		}
	}
	if tl.Net.Stats().SimulatedRounds == 0 {
		t.Fatal("tools billed no simulated rounds")
	}
}

func TestCoveredDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tl, rt := toolsFixture(t, 11, 50, 60)
	nonTree := rt.NonTreeEdgeIDs()
	s := map[int]bool{}
	for _, id := range nonTree {
		if rng.Intn(2) == 0 {
			s[id] = true
		}
	}
	got, err := tl.CoveredDetection(s, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < rt.G.N; c++ {
		if c == rt.Root {
			continue
		}
		want := false
		for id := range s {
			e := rt.G.Edges[id]
			if rt.Covers(e.U, e.V, c) {
				want = true
				break
			}
		}
		if got[c] != want {
			t.Fatalf("covered detection at %d: got %v want %v", c, got[c], want)
		}
	}
}

func TestCoverCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tl, rt := toolsFixture(t, 12, 45, 50)
	marked := make([]bool, rt.G.N)
	for v := 0; v < rt.G.N; v++ {
		marked[v] = v != rt.Root && rng.Intn(2) == 0
	}
	got, err := tl.CoverCount(marked)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rt.NonTreeEdgeIDs() {
		e := rt.G.Edges[id]
		want := 0
		for c := 0; c < rt.G.N; c++ {
			if c != rt.Root && marked[c] && rt.Covers(e.U, e.V, c) {
				want++
			}
		}
		if got[id] != want {
			t.Fatalf("cover count of edge %d: got %d want %d", id, got[id], want)
		}
	}
}

func TestHeavyLightLabels(t *testing.T) {
	tl, rt := toolsFixture(t, 13, 40, 30)
	lb, err := tl.HeavyLightLabels()
	if err != nil {
		t.Fatal(err)
	}
	if lb == nil || len(lb.Labels) != rt.G.N {
		t.Fatal("bad labeling")
	}
}
