// Package shortcuts implements the low-congestion shortcut framework of
// Ghaffari–Haeupler used by the paper's second algorithm (Section 5): given
// a partition of the vertices into connected parts, a shortcut assigns each
// part an auxiliary subgraph H_i such that G[V_i] + H_i has small diameter
// (dilation β) while every edge serves few parts (congestion α).
//
// The package provides three constructors (trivial, the worst-case
// O(D + sqrt n) global-BFS rule, and a Steiner-tree heuristic that is good
// on tree-like/planar-like families), measures the realized α and β of every
// construction, and simulates part-wise aggregation with real per-edge
// contention so that the round bill reflects the shortcut quality actually
// achieved. On top sit the paper's tools: Descendants' Sum (Theorem 5.1),
// Ancestors' Sum (Theorem 5.2), heavy-light/LCA labels (Theorem 5.3),
// coverage detection by XOR fingerprints (Lemma 5.4) and marked-cover
// counting (Lemma 5.5).
package shortcuts

import (
	"fmt"
	"math"
	"sort"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

// Partition assigns each vertex a part id (-1 = unassigned). Each part must
// induce a connected subgraph of G.
type Partition struct {
	Of    []int // vertex -> part id
	Parts int
}

// NewPartition validates and wraps a part assignment.
func NewPartition(g *graph.Graph, of []int) (*Partition, error) {
	if len(of) != g.N {
		return nil, fmt.Errorf("shortcuts: partition length %d != n", len(of))
	}
	parts := 0
	for _, p := range of {
		if p >= parts {
			parts = p + 1
		}
	}
	// Connectivity check per part.
	members := make([][]int, parts)
	for v, p := range of {
		if p >= 0 {
			members[p] = append(members[p], v)
		}
	}
	for p, ms := range members {
		if len(ms) == 0 {
			continue
		}
		seen := map[int]bool{ms[0]: true}
		stack := []int{ms[0]}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range g.Incident(v) {
				u := g.Edges[id].Other(v)
				if of[u] == p && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		if len(seen) != len(ms) {
			return nil, fmt.Errorf("shortcuts: part %d is disconnected", p)
		}
	}
	return &Partition{Of: of, Parts: parts}, nil
}

// Shortcut is the per-part auxiliary edge sets plus realized quality.
type Shortcut struct {
	// EdgesOf[p] lists the graph edge ids of H_p (may include edges far
	// from V_p whose endpoints merely relay).
	EdgesOf [][]int
	// Alpha is the realized congestion: max over edges of the number of
	// parts whose G[V_i]+H_i contains the edge.
	Alpha int
	// Beta is the realized dilation: max over parts of the hop diameter
	// of G[V_i]+H_i (measured from the part leader, times two).
	Beta int
	// BuildRounds is the construction bill gamma.
	BuildRounds int64
}

// Quality returns alpha + beta.
func (s *Shortcut) Quality() int { return s.Alpha + s.Beta }

// Builder constructs shortcuts for partitions of a fixed graph.
type Builder interface {
	// Build returns the shortcut for the partition.
	Build(part *Partition) (*Shortcut, error)
	// Name identifies the strategy in experiment tables.
	Name() string
}

// partSubgraph returns, for part p, the adjacency over G[V_p] + H_p as
// edge-id lists per vertex, plus the member set.
func partSubgraph(g *graph.Graph, part *Partition, hp []int, p int) (map[int][]int, []int) {
	adj := map[int][]int{}
	addEdge := func(id int) {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], id)
		adj[e.V] = append(adj[e.V], id)
	}
	seenEdge := map[int]bool{}
	for v, q := range part.Of {
		if q != p {
			continue
		}
		for _, id := range g.Incident(v) {
			e := g.Edges[id]
			if part.Of[e.U] == p && part.Of[e.V] == p && !seenEdge[id] {
				seenEdge[id] = true
				addEdge(id)
			}
		}
	}
	for _, id := range hp {
		if !seenEdge[id] {
			seenEdge[id] = true
			addEdge(id)
		}
	}
	var members []int
	for v, q := range part.Of {
		if q == p {
			members = append(members, v)
		}
	}
	return adj, members
}

// measure computes realized alpha and beta and verifies every part is
// connected within G[V_p]+H_p.
func measure(g *graph.Graph, part *Partition, edgesOf [][]int) (int, int, error) {
	use := map[int]int{}
	beta := 0
	for p := 0; p < part.Parts; p++ {
		adj, members := partSubgraph(g, part, edgesOf[p], p)
		if len(members) == 0 {
			continue
		}
		seenEdge := map[int]bool{}
		for _, ids := range adj {
			for _, id := range ids {
				if !seenEdge[id] {
					seenEdge[id] = true
					use[id]++
				}
			}
		}
		// BFS from the leader over the part subgraph.
		leader := members[0]
		dist := map[int]int{leader: 0}
		queue := []int{leader}
		far := 0
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, id := range adj[v] {
				u := g.Edges[id].Other(v)
				if _, ok := dist[u]; !ok {
					dist[u] = dist[v] + 1
					if dist[u] > far {
						far = dist[u]
					}
					queue = append(queue, u)
				}
			}
		}
		for _, v := range members {
			if _, ok := dist[v]; !ok {
				return 0, 0, fmt.Errorf("shortcuts: part %d not connected with its shortcut", p)
			}
		}
		if 2*far > beta {
			beta = 2 * far
		}
	}
	alpha := 0
	for _, c := range use {
		if c > alpha {
			alpha = c
		}
	}
	if beta == 0 {
		beta = 1
	}
	if alpha == 0 {
		alpha = 1
	}
	return alpha, beta, nil
}

// TrivialBuilder assigns no shortcut edges: beta equals the largest part
// diameter (can be Theta(n)).
type TrivialBuilder struct{ G *graph.Graph }

// Name implements Builder.
func (b *TrivialBuilder) Name() string { return "trivial" }

// Build implements Builder.
func (b *TrivialBuilder) Build(part *Partition) (*Shortcut, error) {
	edgesOf := make([][]int, part.Parts)
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta, BuildRounds: 0}, nil
}

// GlobalBFSBuilder implements the classic worst-case bound: every part with
// at least sqrt(n) vertices receives the whole BFS tree as its shortcut
// (at most sqrt(n) such parts exist, so alpha <= sqrt(n)+1 and their beta
// is O(D)); smaller parts get nothing (their diameter is < sqrt(n)).
// This realizes alpha+beta = O(D + sqrt n) for every partition.
type GlobalBFSBuilder struct {
	G   *graph.Graph
	BFS *tree.Rooted
}

// Name implements Builder.
func (b *GlobalBFSBuilder) Name() string { return "global-bfs" }

// Build implements Builder.
func (b *GlobalBFSBuilder) Build(part *Partition) (*Shortcut, error) {
	n := b.G.N
	threshold := int(math.Ceil(math.Sqrt(float64(n))))
	sizes := make([]int, part.Parts)
	for _, p := range part.Of {
		if p >= 0 {
			sizes[p]++
		}
	}
	bfsEdges := b.BFS.TreeEdgeIDs()
	edgesOf := make([][]int, part.Parts)
	for p := 0; p < part.Parts; p++ {
		if sizes[p] >= threshold {
			edgesOf[p] = bfsEdges
		}
	}
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta,
		BuildRounds: int64(b.BFS.Height()) + 1}, nil
}

// SteinerBuilder gives each part the Steiner subtree of the BFS tree
// spanning its members (union of root paths up to their common meet).
// On tree-like and low-diameter planar-like families this realizes
// alpha+beta near O(D); its quality is measured, never assumed.
type SteinerBuilder struct {
	G   *graph.Graph
	BFS *tree.Rooted
}

// Name implements Builder.
func (b *SteinerBuilder) Name() string { return "steiner" }

// Build implements Builder.
func (b *SteinerBuilder) Build(part *Partition) (*Shortcut, error) {
	edgesOf := make([][]int, part.Parts)
	for p := 0; p < part.Parts; p++ {
		var members []int
		for v, q := range part.Of {
			if q == p {
				members = append(members, v)
			}
		}
		if len(members) <= 1 {
			continue
		}
		// Meet = common ancestor of all members (iterated LCA).
		meet := members[0]
		for _, v := range members[1:] {
			meet = b.BFS.LCA(meet, v)
		}
		seen := map[int]bool{}
		var ids []int
		for _, v := range members {
			for x := v; x != meet; x = b.BFS.Parent[x] {
				id := b.BFS.ParentEdge[x]
				if seen[id] {
					break // the rest of the path is already present
				}
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		edgesOf[p] = ids
	}
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta,
		BuildRounds: int64(b.BFS.Height()) + 1}, nil
}

// Word re-exported for tool signatures.
type Word = congest.Word

// Combine is a binary aggregate operator.
type Combine func(a, b Word) Word
