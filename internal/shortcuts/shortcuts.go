// Package shortcuts implements the low-congestion shortcut framework of
// Ghaffari–Haeupler used by the paper's second algorithm (Section 5): given
// a partition of the vertices into connected parts, a shortcut assigns each
// part an auxiliary subgraph H_i such that G[V_i] + H_i has small diameter
// (dilation β) while every edge serves few parts (congestion α).
//
// The package provides three constructors (trivial, the worst-case
// O(D + sqrt n) global-BFS rule, and a Steiner-tree heuristic that is good
// on tree-like/planar-like families), measures the realized α and β of every
// construction, and simulates part-wise aggregation with real per-edge
// contention so that the round bill reflects the shortcut quality actually
// achieved. On top sit the paper's tools: Descendants' Sum (Theorem 5.1),
// Ancestors' Sum (Theorem 5.2), heavy-light/LCA labels (Theorem 5.3),
// coverage detection by XOR fingerprints (Lemma 5.4) and marked-cover
// counting (Lemma 5.5).
package shortcuts

import (
	"fmt"
	"math"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

// Partition assigns each vertex a part id (-1 = unassigned). Each part must
// induce a connected subgraph of G.
type Partition struct {
	Of    []int // vertex -> part id
	Parts int
	// Members[p] lists part p's vertices in ascending order. Built once by
	// NewPartition so per-part passes need no O(n * parts) rescans of Of.
	Members [][]int
}

// NewPartition validates and wraps a part assignment.
func NewPartition(g *graph.Graph, of []int) (*Partition, error) {
	if len(of) != g.N {
		return nil, fmt.Errorf("shortcuts: partition length %d != n", len(of))
	}
	parts := 0
	for _, p := range of {
		if p >= parts {
			parts = p + 1
		}
	}
	members := make([][]int, parts)
	for v, p := range of {
		if p >= 0 {
			members[p] = append(members[p], v)
		}
	}
	// Connectivity check per part, over the CSR rows with flat scratch.
	seen := make([]bool, g.N)
	stack := make([]int, 0, g.N)
	for p, ms := range members {
		if len(ms) == 0 {
			continue
		}
		seen[ms[0]] = true
		stack = append(stack[:0], ms[0])
		reached := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Row(v) {
				if u := int(h.To); of[u] == p && !seen[u] {
					seen[u] = true
					reached++
					stack = append(stack, u)
				}
			}
		}
		if reached != len(ms) {
			return nil, fmt.Errorf("shortcuts: part %d is disconnected", p)
		}
		for _, v := range ms {
			seen[v] = false
		}
	}
	return &Partition{Of: of, Parts: parts, Members: members}, nil
}

// Shortcut is the per-part auxiliary edge sets plus realized quality.
type Shortcut struct {
	// EdgesOf[p] lists the graph edge ids of H_p (may include edges far
	// from V_p whose endpoints merely relay).
	EdgesOf [][]int
	// Alpha is the realized congestion: max over edges of the number of
	// parts whose G[V_i]+H_i contains the edge.
	Alpha int
	// Beta is the realized dilation: max over parts of the hop diameter
	// of G[V_i]+H_i (measured from the part leader, times two).
	Beta int
	// BuildRounds is the construction bill gamma.
	BuildRounds int64
}

// Quality returns alpha + beta.
func (s *Shortcut) Quality() int { return s.Alpha + s.Beta }

// Builder constructs shortcuts for partitions of a fixed graph.
type Builder interface {
	// Build returns the shortcut for the partition.
	Build(part *Partition) (*Shortcut, error)
	// Name identifies the strategy in experiment tables.
	Name() string
}

// partAdj is the reusable flat adjacency of one part subgraph G[V_p]+H_p.
// Per-vertex edge-id lists and the dedup'd edge set are rebuilt in place
// per part via epoch stamps (no maps, no per-part allocation in steady
// state); the embedded BFS scratch serves the dilation measurements and
// the per-part tree builds. One partAdj serves one loop over parts at a
// time; it is not safe for concurrent use.
type partAdj struct {
	ids     [][]int32 // per vertex: incident edge ids (valid iff stamped)
	vertEp  []int32   // vertex epoch stamps
	edgeEp  []int32   // edge epoch stamps
	epoch   int32
	touched []int32 // vertices with stamped ids, in first-touch order
	edges   []int32 // dedup'd edge ids of this part, in scan order

	// BFS scratch over the part subgraph, epoch-stamped like ids.
	dist   []int32
	distEp []int32
	queue  []int32
}

// build assembles the adjacency of G[V_p]+H_p, matching the legacy
// map-based construction order exactly: intra-part edges in ascending
// member order then incident order (first encounter wins), then the
// shortcut edges hp in the given order; every edge is appended to both
// endpoint lists at first encounter.
func (pa *partAdj) build(g *graph.Graph, part *Partition, hp []int, p int) {
	n, m := g.N, g.M()
	if len(pa.ids) < n {
		pa.ids = make([][]int32, n)
		pa.vertEp = make([]int32, n)
		pa.dist = make([]int32, n)
		pa.distEp = make([]int32, n)
	}
	if len(pa.edgeEp) < m {
		pa.edgeEp = make([]int32, m)
	}
	pa.epoch++
	if pa.epoch <= 0 { // wrapped: invalidate all stamps once
		for i := range pa.vertEp {
			pa.vertEp[i] = 0
			pa.distEp[i] = 0
		}
		for i := range pa.edgeEp {
			pa.edgeEp[i] = 0
		}
		pa.epoch = 1
	}
	pa.touched = pa.touched[:0]
	pa.edges = pa.edges[:0]
	us, vs := g.Endpoints()
	add := func(id int32) {
		pa.edges = append(pa.edges, id)
		for _, x := range [2]int32{us[id], vs[id]} {
			if pa.vertEp[x] != pa.epoch {
				pa.vertEp[x] = pa.epoch
				pa.ids[x] = pa.ids[x][:0]
				pa.touched = append(pa.touched, x)
			}
			pa.ids[x] = append(pa.ids[x], id)
		}
	}
	for _, v := range part.Members[p] {
		for _, h := range g.Row(v) {
			if part.Of[h.To] == p && pa.edgeEp[h.ID] != pa.epoch {
				pa.edgeEp[h.ID] = pa.epoch
				add(h.ID)
			}
		}
	}
	for _, id := range hp {
		if pa.edgeEp[id] != pa.epoch {
			pa.edgeEp[id] = int32(pa.epoch)
			add(int32(id))
		}
	}
}

// row returns the part-subgraph edge ids of v (empty if untouched).
func (pa *partAdj) row(v int32) []int32 {
	if pa.vertEp[v] != pa.epoch {
		return nil
	}
	return pa.ids[v]
}

// bfsFromLeader runs a BFS over the part subgraph from the part leader,
// stamping pa.dist, and returns the eccentricity of the leader and the
// number of reached vertices.
func (pa *partAdj) bfsFromLeader(g *graph.Graph, leader int) (far, reached int) {
	us, vs := g.Endpoints()
	pa.distEp[leader] = pa.epoch
	pa.dist[leader] = 0
	pa.queue = append(pa.queue[:0], int32(leader))
	for head := 0; head < len(pa.queue); head++ {
		v := pa.queue[head]
		d := pa.dist[v] + 1
		for _, id := range pa.row(v) {
			u := us[id] ^ vs[id] ^ v
			if pa.distEp[u] != pa.epoch {
				pa.distEp[u] = pa.epoch
				pa.dist[u] = d
				if int(d) > far {
					far = int(d)
				}
				pa.queue = append(pa.queue, u)
			}
		}
	}
	return far, len(pa.queue)
}

// measure computes realized alpha and beta and verifies every part is
// connected within G[V_p]+H_p.
func measure(g *graph.Graph, part *Partition, edgesOf [][]int) (int, int, error) {
	use := make([]int32, g.M())
	beta := 0
	var pa partAdj
	for p := 0; p < part.Parts; p++ {
		members := part.Members[p]
		if len(members) == 0 {
			continue
		}
		pa.build(g, part, edgesOf[p], p)
		for _, id := range pa.edges {
			use[id]++
		}
		// BFS from the leader over the part subgraph.
		far, _ := pa.bfsFromLeader(g, members[0])
		for _, v := range members {
			if pa.distEp[v] != pa.epoch {
				return 0, 0, fmt.Errorf("shortcuts: part %d not connected with its shortcut", p)
			}
		}
		if 2*far > beta {
			beta = 2 * far
		}
	}
	alpha := int32(0)
	for _, c := range use {
		if c > alpha {
			alpha = c
		}
	}
	if beta == 0 {
		beta = 1
	}
	if alpha == 0 {
		alpha = 1
	}
	return int(alpha), beta, nil
}

// TrivialBuilder assigns no shortcut edges: beta equals the largest part
// diameter (can be Theta(n)).
type TrivialBuilder struct{ G *graph.Graph }

// Name implements Builder.
func (b *TrivialBuilder) Name() string { return "trivial" }

// Build implements Builder.
func (b *TrivialBuilder) Build(part *Partition) (*Shortcut, error) {
	edgesOf := make([][]int, part.Parts)
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta, BuildRounds: 0}, nil
}

// GlobalBFSBuilder implements the classic worst-case bound: every part with
// at least sqrt(n) vertices receives the whole BFS tree as its shortcut
// (at most sqrt(n) such parts exist, so alpha <= sqrt(n)+1 and their beta
// is O(D)); smaller parts get nothing (their diameter is < sqrt(n)).
// This realizes alpha+beta = O(D + sqrt n) for every partition.
type GlobalBFSBuilder struct {
	G   *graph.Graph
	BFS *tree.Rooted
}

// Name implements Builder.
func (b *GlobalBFSBuilder) Name() string { return "global-bfs" }

// Build implements Builder.
func (b *GlobalBFSBuilder) Build(part *Partition) (*Shortcut, error) {
	n := b.G.N
	threshold := int(math.Ceil(math.Sqrt(float64(n))))
	sizes := make([]int, part.Parts)
	for _, p := range part.Of {
		if p >= 0 {
			sizes[p]++
		}
	}
	bfsEdges := b.BFS.TreeEdgeIDs()
	edgesOf := make([][]int, part.Parts)
	for p := 0; p < part.Parts; p++ {
		if sizes[p] >= threshold {
			edgesOf[p] = bfsEdges
		}
	}
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta,
		BuildRounds: int64(b.BFS.Height()) + 1}, nil
}

// SteinerBuilder gives each part the Steiner subtree of the BFS tree
// spanning its members (union of root paths up to their common meet).
// On tree-like and low-diameter planar-like families this realizes
// alpha+beta near O(D); its quality is measured, never assumed.
type SteinerBuilder struct {
	G   *graph.Graph
	BFS *tree.Rooted
}

// Name implements Builder.
func (b *SteinerBuilder) Name() string { return "steiner" }

// Build implements Builder.
func (b *SteinerBuilder) Build(part *Partition) (*Shortcut, error) {
	edgesOf := make([][]int, part.Parts)
	for p := 0; p < part.Parts; p++ {
		members := part.Members[p]
		if len(members) <= 1 {
			continue
		}
		// Meet = common ancestor of all members (iterated LCA).
		meet := members[0]
		for _, v := range members[1:] {
			meet = b.BFS.LCA(meet, v)
		}
		seen := map[int]bool{}
		var ids []int
		for _, v := range members {
			for x := v; x != meet; x = b.BFS.Parent[x] {
				id := b.BFS.ParentEdge[x]
				if seen[id] {
					break // the rest of the path is already present
				}
				seen[id] = true
				ids = append(ids, id)
			}
		}
		slices.Sort(ids)
		edgesOf[p] = ids
	}
	alpha, beta, err := measure(b.G, part, edgesOf)
	if err != nil {
		return nil, err
	}
	return &Shortcut{EdgesOf: edgesOf, Alpha: alpha, Beta: beta,
		BuildRounds: int64(b.BFS.Height()) + 1}, nil
}

// Word re-exported for tool signatures.
type Word = congest.Word

// Combine is a binary aggregate operator.
type Combine func(a, b Word) Word
