package shortcuts

import (
	"fmt"

	"twoecss/internal/congest"
)

// PartwiseAggregate combines one value per member vertex within every part
// (over G[V_p]+H_p) and delivers the result to all members, simultaneously
// for all parts. The simulation is contention-faithful: every graph edge
// carries at most one message per direction per round regardless of how
// many parts route through it, so the measured rounds reflect the realized
// alpha-congestion beta-dilation of the shortcut.
func PartwiseAggregate(net *congest.Network, part *Partition, sc *Shortcut, x []Word, op Combine) ([]Word, error) {
	g := net.G
	if len(x) != g.N {
		return nil, fmt.Errorf("shortcuts: input length %d != n", len(x))
	}
	// Per-part BFS trees over the part subgraphs, rooted at the leader.
	type role struct {
		part       int
		parentEdge int // -1 at the leader
		children   int
	}
	rolesAt := make([][]int, g.N) // vertex -> indices into roles
	var roles []role
	roleIdx := map[[2]int]int{} // (part, vertex) -> role index

	for p := 0; p < part.Parts; p++ {
		adj, members := partSubgraph(g, part, sc.EdgesOf[p], p)
		if len(members) == 0 {
			continue
		}
		leader := members[0]
		parentEdge := map[int]int{leader: -1}
		order := []int{leader}
		for qi := 0; qi < len(order); qi++ {
			v := order[qi]
			for _, id := range adj[v] {
				u := g.Edges[id].Other(v)
				if _, ok := parentEdge[u]; !ok {
					parentEdge[u] = id
					order = append(order, u)
				}
			}
		}
		childCount := map[int]int{}
		for v, pe := range parentEdge {
			if pe >= 0 {
				childCount[g.Edges[pe].Other(v)]++
			}
		}
		for _, v := range order {
			ri := len(roles)
			roles = append(roles, role{part: p, parentEdge: parentEdge[v], children: childCount[v]})
			rolesAt[v] = append(rolesAt[v], ri)
			roleIdx[[2]int{p, v}] = ri
		}
	}

	// Node state: accumulated value and remaining children per role; a
	// FIFO queue per (vertex, incident edge) holding (tag, part, value)
	// messages; one message per edge direction per round.
	acc := make([]Word, len(roles))
	pend := make([]int, len(roles))
	result := make([]Word, len(roles))
	haveResult := make([]bool, len(roles))
	for ri, r := range roles {
		pend[ri] = r.children
	}
	for v := 0; v < g.N; v++ {
		for _, ri := range rolesAt[v] {
			if part.Of[v] == roles[ri].part {
				acc[ri] = x[v]
			} else {
				acc[ri] = identityHint // steiner relay: contributes nothing
			}
		}
	}
	queues := make([]map[int][]congest.Msg, g.N)
	for v := range queues {
		queues[v] = map[int][]congest.Msg{}
	}
	push := func(v, edge int, data []Word) {
		queues[v][edge] = append(queues[v][edge], congest.Msg{EdgeID: edge, From: v, Data: data})
	}
	const (
		tagUp   = 0
		tagDown = 1
	)
	started := make([]bool, len(roles))

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			tag, p, val := m.Data[0], int(m.Data[1]), m.Data[2]
			ri, ok := roleIdx[[2]int{p, v}]
			if !ok {
				continue
			}
			switch tag {
			case tagUp:
				switch {
				case val == identityHint:
					// A pure relay subtree contributed nothing.
				case acc[ri] == identityHint:
					acc[ri] = val
				default:
					acc[ri] = op(acc[ri], val)
				}
				pend[ri]--
			case tagDown:
				result[ri] = val
				haveResult[ri] = true
				// Forward downward on all child edges (enqueued once).
			}
		}
		// Role transitions.
		for _, ri := range rolesAt[v] {
			r := roles[ri]
			if pend[ri] == 0 && !started[ri] {
				started[ri] = true
				if r.parentEdge >= 0 {
					push(v, r.parentEdge, []Word{tagUp, Word(r.part), acc[ri]})
				} else {
					result[ri] = acc[ri]
					haveResult[ri] = true
				}
			}
		}
		// Downward forwarding: a role with a fresh result sends it to all
		// children exactly once (children tracked via pend==<0 sentinel).
		for _, ri := range rolesAt[v] {
			if haveResult[ri] && pend[ri] != -1 {
				pend[ri] = -1
				p := roles[ri].part
				// Enqueue to every child edge of this role's tree.
				for _, id := range g.Incident(v) {
					u := g.Edges[id].Other(v)
					if cri, ok := roleIdx[[2]int{p, u}]; ok && roles[cri].parentEdge == id {
						push(v, id, []Word{tagDown, Word(p), result[ri]})
					}
				}
			}
		}
		// Emit one queued message per incident edge.
		var out []congest.Msg
		active := false
		for _, id := range g.Incident(v) {
			q := queues[v][id]
			if len(q) == 0 {
				continue
			}
			out = append(out, q[0])
			queues[v][id] = q[1:]
			if len(q) > 1 {
				active = true
			}
		}
		return out, active || len(out) > 0
	}
	maxRounds := int64(8*(g.N+g.M()) + 16*len(roles) + 64)
	if err := net.Run(handler, nil, maxRounds); err != nil {
		return nil, err
	}
	out := make([]Word, g.N)
	missing := 0
	for v := 0; v < g.N; v++ {
		if part.Of[v] < 0 {
			continue
		}
		ri, ok := roleIdx[[2]int{part.Of[v], v}]
		if !ok || !haveResult[ri] {
			missing++
			continue
		}
		out[v] = result[ri]
	}
	if missing > 0 {
		return nil, fmt.Errorf("shortcuts: %d vertices missed their part aggregate", missing)
	}
	return out, nil
}

// identityHint marks a relay role that holds no contribution of its own;
// chosen to be an improbable sentinel rather than a true identity because
// op is opaque. Relays with children replace it on first arrival.
const identityHint = Word(-0x7edcba9876543210)

// LeaderBroadcast delivers one value per part from the part leader to all
// members, with the same contention-faithful scheduling; implemented as an
// aggregate whose operator keeps the leader's value.
func LeaderBroadcast(net *congest.Network, part *Partition, sc *Shortcut, perPart map[int]Word) ([]Word, error) {
	g := net.G
	x := make([]Word, g.N)
	leaderOf := map[int]int{}
	for v := 0; v < g.N; v++ {
		p := part.Of[v]
		if p < 0 {
			continue
		}
		if lv, ok := leaderOf[p]; !ok || v < lv {
			leaderOf[p] = v
		}
	}
	// partSubgraph uses the first member as leader; mirror that choice.
	for p, lv := range leaderOf {
		x[lv] = perPart[p]
	}
	keepLeader := func(a, b Word) Word {
		if a != 0 {
			return a
		}
		return b
	}
	return PartwiseAggregate(net, part, sc, x, keepLeader)
}
