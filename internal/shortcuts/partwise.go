package shortcuts

import (
	"fmt"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
)

// role is one (part, vertex) participation in the part-wise aggregation:
// the per-part BFS-tree position of a vertex (members aggregate, steiner
// relays forward).
type role struct {
	part       int32
	parentEdge int32 // -1 at the leader
	children   int32
}

// AggPlan is the reusable execution plan of PartwiseAggregate for one
// (graph, partition, shortcut) triple: the per-part BFS trees flattened to
// role tables, plus all run-state scratch. Building the plan walks every
// part subgraph once; Aggregate can then run any number of times (the tool
// hierarchy re-aggregates over the same partitions every level call)
// without rebuilding trees or allocating per-part state. A plan is not
// safe for concurrent use.
type AggPlan struct {
	g       *graph.Graph
	part    *Partition
	sc      *Shortcut
	roles   []role
	rolesAt [][]int32 // vertex -> indices into roles

	// Run-state, reused across Aggregate calls.
	acc        []Word
	pend       []int32
	result     []Word
	haveResult []bool
	started    []bool
	// queues[2*edgeID+dir] is the FIFO of messages vertex us/vs[edgeID]
	// (dir 0/1) still has to push over that edge, one per round; heads
	// index into the queue slices to avoid re-slicing writes.
	queues [][]congest.Msg
	heads  []int32
	slots  []int32 // queue slots used this run, for O(used) reset
	// slab backs message payloads (3 words each); payload slices alias it,
	// and append growth relocates only future payloads, so live ones stay
	// valid. Reset per run, amortizing payload allocation to zero.
	slab []Word
}

// NewAggPlan builds the plan: per-part BFS trees over G[V_p]+H_p rooted at
// the part leader, in the exact construction order of the legacy per-call
// builds (ascending member order, incident order within a vertex).
func NewAggPlan(g *graph.Graph, part *Partition, sc *Shortcut) *AggPlan {
	pl := &AggPlan{g: g, part: part, sc: sc}
	pl.rolesAt = make([][]int32, g.N)
	us, vs := g.Endpoints()
	var pa partAdj
	childCount := make(map[int32]int32) // vertex -> children in current part tree
	parentEdge := make(map[int32]int32)
	for p := 0; p < part.Parts; p++ {
		members := part.Members[p]
		if len(members) == 0 {
			continue
		}
		pa.build(g, part, sc.EdgesOf[p], p)
		leader := int32(members[0])
		clear(parentEdge)
		clear(childCount)
		parentEdge[leader] = -1
		order := append(pa.queue[:0], leader)
		for qi := 0; qi < len(order); qi++ {
			v := order[qi]
			for _, id := range pa.row(v) {
				u := us[id] ^ vs[id] ^ v
				if _, ok := parentEdge[u]; !ok {
					parentEdge[u] = id
					order = append(order, u)
				}
			}
		}
		for v, pe := range parentEdge {
			if pe >= 0 {
				childCount[us[pe]^vs[pe]^v]++
			}
		}
		for _, v := range order {
			ri := int32(len(pl.roles))
			pl.roles = append(pl.roles, role{part: int32(p), parentEdge: parentEdge[v], children: childCount[v]})
			pl.rolesAt[v] = append(pl.rolesAt[v], ri)
		}
		pa.queue = order[:0]
	}
	nr := len(pl.roles)
	pl.acc = make([]Word, nr)
	pl.pend = make([]int32, nr)
	pl.result = make([]Word, nr)
	pl.haveResult = make([]bool, nr)
	pl.started = make([]bool, nr)
	pl.queues = make([][]congest.Msg, 2*g.M())
	pl.heads = make([]int32, 2*g.M())
	return pl
}

// roleOf returns v's role index in part p, or -1.
func (pl *AggPlan) roleOf(p int32, v int32) int32 {
	for _, ri := range pl.rolesAt[v] {
		if pl.roles[ri].part == p {
			return ri
		}
	}
	return -1
}

const (
	tagUp   = 0
	tagDown = 1
)

// Aggregate combines one value per member vertex within every part (over
// G[V_p]+H_p) and delivers the result to all members, simultaneously for
// all parts; see PartwiseAggregate for the contract.
func (pl *AggPlan) Aggregate(net *congest.Network, x []Word, op Combine) ([]Word, error) {
	g := pl.g
	if net.G != g {
		return nil, fmt.Errorf("shortcuts: aggregate plan built for a different graph")
	}
	if len(x) != g.N {
		return nil, fmt.Errorf("shortcuts: input length %d != n", len(x))
	}
	part := pl.part
	_, vs := g.Endpoints()

	// Reset run-state.
	for ri, r := range pl.roles {
		pl.pend[ri] = r.children
		pl.haveResult[ri] = false
		pl.started[ri] = false
	}
	for v := 0; v < g.N; v++ {
		for _, ri := range pl.rolesAt[v] {
			if int32(part.Of[v]) == pl.roles[ri].part {
				pl.acc[ri] = x[v]
			} else {
				pl.acc[ri] = identityHint // steiner relay: contributes nothing
			}
		}
	}
	for _, s := range pl.slots {
		pl.queues[s] = pl.queues[s][:0]
		pl.heads[s] = 0
	}
	pl.slots = pl.slots[:0]
	pl.slab = pl.slab[:0]

	push := func(v int32, edge int32, tag, p, val Word) {
		dir := int32(0)
		if vs[edge] == v {
			dir = 1
		}
		slot := 2*edge + dir
		if len(pl.queues[slot]) == 0 && pl.heads[slot] == 0 {
			pl.slots = append(pl.slots, slot) // first use this run; reset next run
		}
		pl.slab = append(pl.slab, tag, p, val)
		data := pl.slab[len(pl.slab)-3 : len(pl.slab) : len(pl.slab)]
		pl.queues[slot] = append(pl.queues[slot], congest.Msg{EdgeID: int(edge), From: int(v), Data: data})
	}

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		v32 := int32(v)
		for _, m := range inbox {
			tag, p, val := m.Data[0], int32(m.Data[1]), m.Data[2]
			ri := pl.roleOf(p, v32)
			if ri < 0 {
				continue
			}
			switch tag {
			case tagUp:
				switch {
				case val == identityHint:
					// A pure relay subtree contributed nothing.
				case pl.acc[ri] == identityHint:
					pl.acc[ri] = val
				default:
					pl.acc[ri] = op(pl.acc[ri], val)
				}
				pl.pend[ri]--
			case tagDown:
				pl.result[ri] = val
				pl.haveResult[ri] = true
				// Forward downward on all child edges (enqueued once).
			}
		}
		// Role transitions.
		for _, ri := range pl.rolesAt[v] {
			r := pl.roles[ri]
			if pl.pend[ri] == 0 && !pl.started[ri] {
				pl.started[ri] = true
				if r.parentEdge >= 0 {
					push(v32, r.parentEdge, tagUp, Word(r.part), pl.acc[ri])
				} else {
					pl.result[ri] = pl.acc[ri]
					pl.haveResult[ri] = true
				}
			}
		}
		// Downward forwarding: a role with a fresh result sends it to all
		// children exactly once (children tracked via pend==-1 sentinel).
		for _, ri := range pl.rolesAt[v] {
			if pl.haveResult[ri] && pl.pend[ri] != -1 {
				pl.pend[ri] = -1
				p := pl.roles[ri].part
				// Enqueue to every child edge of this role's tree.
				for _, h := range g.Row(v) {
					if cri := pl.roleOf(p, h.To); cri >= 0 && pl.roles[cri].parentEdge == h.ID {
						push(v32, h.ID, tagDown, Word(p), pl.result[ri])
					}
				}
			}
		}
		// Emit one queued message per incident edge.
		out := net.OutBuf(v)
		active := false
		for _, h := range g.Row(v) {
			dir := int32(0)
			if vs[h.ID] == v32 {
				dir = 1
			}
			slot := 2*h.ID + dir
			q, head := pl.queues[slot], pl.heads[slot]
			if int(head) >= len(q) {
				continue
			}
			out = append(out, q[head])
			pl.heads[slot] = head + 1
			if int(head)+1 < len(q) {
				active = true
			}
		}
		return out, active || len(out) > 0
	}
	maxRounds := int64(8*(g.N+g.M()) + 16*len(pl.roles) + 64)
	if err := net.Run(handler, nil, maxRounds); err != nil {
		return nil, err
	}
	out := make([]Word, g.N)
	missing := 0
	for v := 0; v < g.N; v++ {
		if part.Of[v] < 0 {
			continue
		}
		ri := pl.roleOf(int32(part.Of[v]), int32(v))
		if ri < 0 || !pl.haveResult[ri] {
			missing++
			continue
		}
		out[v] = pl.result[ri]
	}
	if missing > 0 {
		return nil, fmt.Errorf("shortcuts: %d vertices missed their part aggregate", missing)
	}
	return out, nil
}

// PartwiseAggregate combines one value per member vertex within every part
// (over G[V_p]+H_p) and delivers the result to all members, simultaneously
// for all parts. The simulation is contention-faithful: every graph edge
// carries at most one message per direction per round regardless of how
// many parts route through it, so the measured rounds reflect the realized
// alpha-congestion beta-dilation of the shortcut. Repeated aggregations
// over one (partition, shortcut) pair should build an AggPlan once and
// call Aggregate on it.
func PartwiseAggregate(net *congest.Network, part *Partition, sc *Shortcut, x []Word, op Combine) ([]Word, error) {
	return NewAggPlan(net.G, part, sc).Aggregate(net, x, op)
}

// identityHint marks a relay role that holds no contribution of its own;
// chosen to be an improbable sentinel rather than a true identity because
// op is opaque. Relays with children replace it on first arrival.
const identityHint = Word(-0x7edcba9876543210)

// LeaderBroadcast delivers one value per part from the part leader to all
// members, with the same contention-faithful scheduling; implemented as an
// aggregate whose operator keeps the leader's value.
func LeaderBroadcast(net *congest.Network, part *Partition, sc *Shortcut, perPart map[int]Word) ([]Word, error) {
	g := net.G
	x := make([]Word, g.N)
	leaderOf := map[int]int{}
	for v := 0; v < g.N; v++ {
		p := part.Of[v]
		if p < 0 {
			continue
		}
		if lv, ok := leaderOf[p]; !ok || v < lv {
			leaderOf[p] = v
		}
	}
	// The part tree uses the first member as leader; mirror that choice.
	for p, lv := range leaderOf {
		x[lv] = perPart[p]
	}
	keepLeader := func(a, b Word) Word {
		if a != 0 {
			return a
		}
		return b
	}
	return PartwiseAggregate(net, part, sc, x, keepLeader)
}
