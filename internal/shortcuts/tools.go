package shortcuts

import (
	"fmt"
	"math/rand"

	"twoecss/internal/congest"
	"twoecss/internal/lca"
	"twoecss/internal/tree"
)

// Hierarchy is the O(log n)-level hierarchical fragment partitioning used by
// Theorems 5.1/5.2: level-0 fragments are single vertices; a level-i
// fragment merges one level-(i-1) fragment with its children fragments; the
// top level is the whole tree.
type Hierarchy struct {
	T *tree.Rooted
	// Levels[i] assigns every vertex its level-i fragment id; Levels[0] is
	// the identity, the last level is all-zeros.
	Levels [][]int
}

// BuildHierarchy constructs the hierarchy by repeated odd-depth-to-parent
// contraction of the fragment quotient tree, which halves the quotient
// depth per level and therefore terminates in O(log n) levels.
func BuildHierarchy(t *tree.Rooted) (*Hierarchy, error) {
	n := t.G.N
	h := &Hierarchy{T: t}
	cur := make([]int, n)
	for v := range cur {
		cur[v] = v
	}
	h.Levels = append(h.Levels, append([]int(nil), cur...))
	for len(h.Levels) < 4*64 { // hard upper bound, reached never
		// Quotient tree: fragment parent = fragment of the tree-parent of
		// the fragment's root-most vertex.
		fragParent := map[int]int{}
		fragDepth := map[int]int{}
		// Root-most vertex per fragment = the one whose tree parent is in
		// a different fragment (or the tree root).
		rootOf := map[int]int{}
		for _, v := range t.Order { // preorder: parents first
			f := cur[v]
			if _, ok := rootOf[f]; !ok {
				rootOf[f] = v
				if t.Parent[v] < 0 {
					fragParent[f] = -1
				} else {
					fragParent[f] = cur[t.Parent[v]]
				}
			}
		}
		if len(rootOf) == 1 {
			break
		}
		// Fragment depths via preorder walk.
		for _, v := range t.Order {
			f := cur[v]
			if _, ok := fragDepth[f]; ok {
				continue
			}
			if fragParent[f] < 0 {
				fragDepth[f] = 0
			} else {
				fragDepth[f] = fragDepth[fragParent[f]] + 1
			}
		}
		// Odd-depth fragments merge into their (even-depth) parents.
		next := make([]int, n)
		for v := 0; v < n; v++ {
			f := cur[v]
			if fragDepth[f]%2 == 1 {
				next[v] = fragParent[f]
			} else {
				next[v] = f
			}
		}
		cur = next
		h.Levels = append(h.Levels, append([]int(nil), cur...))
	}
	if len(h.Levels) >= 4*64 {
		return nil, fmt.Errorf("shortcuts: hierarchy did not converge")
	}
	return h, nil
}

// Depth returns the number of hierarchy levels.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// Tools bundles the tree-tool context: the tree, its hierarchy, and the
// shortcut machinery used to bill every level's communication.
type Tools struct {
	Net     *congest.Network
	T       *tree.Rooted
	H       *Hierarchy
	Builder Builder
	// MaxQuality records the largest realized alpha+beta over all
	// shortcut constructions performed by the tools.
	MaxQuality int

	// levels caches, per hierarchy level, the partition, its shortcut, and
	// the part-wise aggregation plan. The hierarchy and builder are fixed
	// for the lifetime of the Tools, so construction runs once; every
	// billLevels call still simulates the aggregation messages and bills
	// the construction charge gamma, exactly as the uncached version did.
	levels []levelState
}

type levelState struct {
	part *Partition
	sc   *Shortcut
	plan *AggPlan
}

// ensureLevels builds the per-level cache on first use.
func (tl *Tools) ensureLevels() error {
	if tl.levels != nil {
		return nil
	}
	tl.levels = make([]levelState, 0, len(tl.H.Levels)-1)
	for _, lv := range tl.H.Levels[1:] {
		part, err := NewPartition(tl.Net.G, lv)
		if err != nil {
			return err
		}
		sc, err := tl.Builder.Build(part)
		if err != nil {
			return err
		}
		tl.levels = append(tl.levels, levelState{part: part, sc: sc, plan: NewAggPlan(tl.Net.G, part, sc)})
	}
	return nil
}

// NewTools prepares the tool context (building the hierarchy).
func NewTools(net *congest.Network, t *tree.Rooted, b Builder) (*Tools, error) {
	h, err := BuildHierarchy(t)
	if err != nil {
		return nil, err
	}
	return &Tools{Net: net, T: t, H: h, Builder: b}, nil
}

// billLevels runs one contention-faithful partwise aggregation per
// hierarchy level, carrying the given per-vertex payload; this realizes the
// O~(SC(G)) round bill of Theorems 5.1/5.2 with the realized shortcut
// quality, and returns the maximum realized alpha+beta over levels.
func (tl *Tools) billLevels(payload []Word) (int, error) {
	if err := tl.ensureLevels(); err != nil {
		return 0, err
	}
	maxQ := 0
	or := func(a, b Word) Word { return a | b }
	for _, ls := range tl.levels {
		if err := tl.Net.Charge(ls.sc.BuildRounds, "shortcut construction (gamma)"); err != nil {
			return 0, err
		}
		if _, err := ls.plan.Aggregate(tl.Net, payload, or); err != nil {
			return 0, err
		}
		if q := ls.sc.Quality(); q > maxQ {
			maxQ = q
		}
	}
	if maxQ > tl.MaxQuality {
		tl.MaxQuality = maxQ
	}
	return maxQ, nil
}

// DescendantsSum (Theorem 5.1): every vertex learns op over x in its
// subtree. Values are exact (computed over the tree); the communication is
// simulated level by level over the hierarchy with real contention.
func (tl *Tools) DescendantsSum(x []Word, op Combine) ([]Word, error) {
	t := tl.T
	if len(x) != t.G.N {
		return nil, fmt.Errorf("shortcuts: input length %d != n", len(x))
	}
	out := append([]Word(nil), x...)
	for i := len(t.Order) - 1; i >= 1; i-- {
		v := t.Order[i]
		out[t.Parent[v]] = op(out[t.Parent[v]], out[v])
	}
	if _, err := tl.billLevels(x); err != nil {
		return nil, err
	}
	return out, nil
}

// AncestorsSum (Theorem 5.2): every vertex learns op over x on its root
// path (inclusive).
func (tl *Tools) AncestorsSum(x []Word, op Combine) ([]Word, error) {
	t := tl.T
	if len(x) != t.G.N {
		return nil, fmt.Errorf("shortcuts: input length %d != n", len(x))
	}
	out := append([]Word(nil), x...)
	for _, v := range t.Order[1:] {
		out[v] = op(out[t.Parent[v]], out[v])
	}
	if _, err := tl.billLevels(x); err != nil {
		return nil, err
	}
	return out, nil
}

// HeavyLightLabels (Theorem 5.3): computes the heavy-light decomposition and
// LCA labels via one DescendantsSum (subtree sizes) and two AncestorsSums
// (path lengths and light-edge lists), then returns the labeling that lets
// adjacent vertices compute their LCA locally.
func (tl *Tools) HeavyLightLabels() (*lca.Labeling, error) {
	n := tl.T.G.N
	ones := make([]Word, n)
	for i := range ones {
		ones[i] = 1
	}
	sum := func(a, b Word) Word { return a + b }
	if _, err := tl.DescendantsSum(ones, sum); err != nil { // |T_v|
		return nil, err
	}
	if _, err := tl.AncestorsSum(ones, sum); err != nil { // |P_v|
		return nil, err
	}
	// The light-edge list union-cast is one more ancestors aggregation
	// with O(log n)-tuple payloads: bill log n word-sized passes.
	lg := 1
	for 1<<lg < n {
		lg++
	}
	for i := 0; i < lg; i++ {
		if _, err := tl.AncestorsSum(ones, sum); err != nil {
			return nil, err
		}
	}
	return lca.Build(tl.T), nil
}

// CoveredDetection (Lemma 5.4): given a set S of non-tree edges (by graph
// edge id), determines for every tree edge whether S covers it, using XOR
// fingerprints of random edge identifiers aggregated over subtrees. The
// result is exact iff no fingerprint collision occurs (probability
// O(n^-8)); the returned slice is indexed by tree-edge child.
func (tl *Tools) CoveredDetection(s map[int]bool, rng *rand.Rand) ([]bool, error) {
	t := tl.T
	g := t.G
	x := make([]Word, g.N)
	for id := range s {
		rid := Word(rng.Int63())
		e := g.Edges[id]
		x[e.U] ^= rid
		x[e.V] ^= rid
	}
	xor := func(a, b Word) Word { return a ^ b }
	sub, err := tl.DescendantsSum(x, xor)
	if err != nil {
		return nil, err
	}
	out := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		if v != t.Root {
			out[v] = sub[v] != 0
		}
	}
	return out, nil
}

// CoverCount (Lemma 5.5): given marked tree edges (by child vertex), every
// non-tree edge {u,v} learns how many marked tree edges it covers, via
// marked-ancestor counts M_v + M_u - 2*M_w with w = LCA(u,v).
func (tl *Tools) CoverCount(marked []bool) (map[int]int, error) {
	t := tl.T
	g := t.G
	x := make([]Word, g.N)
	for v := 0; v < g.N; v++ {
		if v != t.Root && marked[v] {
			x[v] = 1
		}
	}
	sum := func(a, b Word) Word { return a + b }
	m, err := tl.AncestorsSum(x, sum)
	if err != nil {
		return nil, err
	}
	out := map[int]int{}
	for _, id := range t.NonTreeEdgeIDs() {
		e := g.Edges[id]
		w := t.LCA(e.U, e.V)
		out[id] = int(m[e.U] + m[e.V] - 2*m[w])
	}
	return out, nil
}
