package ecss

import (
	"math/rand"
	"slices"
	"testing"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tap"
)

func gen2EC(seed int64, n, extra int, mode graph.WeightMode) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: mode, MaxW: 500, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	if _, err := graph.Ensure2EC(g, cfg); err != nil {
		panic(err)
	}
	return g
}

func TestSolveEndToEnd(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"random40", gen2EC(1, 40, 40, graph.WeightUniform)},
		{"random80", gen2EC(2, 80, 60, graph.WeightSkewed)},
		{"ring", graph.RingWithChords(30, 8, graph.DefaultGenConfig(3))},
		{"grid", graph.Grid(6, 7, graph.DefaultGenConfig(4))},
		{"treeleafcycle", graph.TreeLeafCycle(5, graph.DefaultGenConfig(5))},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, net, err := Solve(tc.g, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tc.g, res); err != nil {
				t.Fatal(err)
			}
			// Theorem 1.1 certified ratio: with eps=0.25 the bound is
			// 5+eps; the certificate may be looser than OPT so only the
			// proven bound is asserted.
			if res.CertifiedRatio > 5.5+1e-9 {
				t.Fatalf("certified ratio %.3f exceeds 5.5", res.CertifiedRatio)
			}
			if res.Weight < int64(res.LowerBound) {
				t.Fatalf("weight below its own lower bound")
			}
			if net.Stats().TotalRounds() == 0 {
				t.Fatal("no rounds billed")
			}
		})
	}
}

func TestSolveWithBoruvka(t *testing.T) {
	g := gen2EC(7, 35, 30, graph.WeightUniform)
	opt := DefaultOptions()
	opt.MST = MSTSimulateBoruvka
	res, _, err := Solve(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
	// Same tree weight as the charged-Kruskal mode (identical MST).
	res2, _, err := Solve(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeWeight != res2.TreeWeight {
		t.Fatalf("Boruvka and Kruskal disagree on MST weight: %d vs %d", res.TreeWeight, res2.TreeWeight)
	}
}

func TestSolveCover4Variant(t *testing.T) {
	g := gen2EC(9, 45, 45, graph.WeightUniform)
	opt := DefaultOptions()
	opt.Variant = tap.Cover4
	res, _, err := Solve(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
	if res.CertifiedRatio > 9.8 {
		t.Fatalf("cover4 certified ratio %.3f exceeds 9+eps bound", res.CertifiedRatio)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	// Bridge graph.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 2, 1) // parallel: makes edge {2,3} non-bridge
	res, _, err := Solve(g, DefaultOptions())
	if err != nil {
		t.Fatalf("parallel-edge graph should solve: %v", err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}

	bridge := graph.New(4)
	bridge.MustAddEdge(0, 1, 1)
	bridge.MustAddEdge(1, 2, 1)
	bridge.MustAddEdge(2, 0, 1)
	bridge.MustAddEdge(2, 3, 1)
	if _, _, err := Solve(bridge, DefaultOptions()); err == nil {
		t.Fatal("bridged graph accepted")
	}

	tiny := graph.New(2)
	tiny.MustAddEdge(0, 1, 1)
	if _, _, err := Solve(tiny, DefaultOptions()); err == nil {
		t.Fatal("2-vertex graph accepted")
	}

	disc := graph.New(6)
	disc.MustAddEdge(0, 1, 1)
	disc.MustAddEdge(1, 2, 1)
	disc.MustAddEdge(2, 0, 1)
	disc.MustAddEdge(3, 4, 1)
	disc.MustAddEdge(4, 5, 1)
	disc.MustAddEdge(5, 3, 1)
	if _, _, err := Solve(disc, DefaultOptions()); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestRemovalToleranceOfSolution(t *testing.T) {
	// The defining property of 2-ECSS: removing any single solution edge
	// keeps the subgraph connected.
	g := gen2EC(11, 30, 25, graph.WeightUniform)
	res, _, err := Solve(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub := g.Subgraph(res.Edges)
	if !sub.TwoEdgeConnected() {
		t.Fatal("solution not 2-edge-connected")
	}
}

func TestStageStatsDeltas(t *testing.T) {
	g := gen2EC(11, 40, 35, graph.WeightUniform)
	opt := DefaultOptions()
	opt.Workers = 1
	var order []string
	deltas := map[string]congest.Stats{}
	opt.Progress = func(stage string) { order = append(order, "p:"+stage) }
	opt.StageStats = func(stage string, d congest.Stats) {
		order = append(order, "s:"+stage)
		deltas[stage] = d
	}
	res, net, err := Solve(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// Per stage: StageStats closes the previous stage before Progress opens
	// the next, and the final stage flushes at return.
	want := []string{"p:bfs", "s:bfs", "p:mst", "s:mst", "p:tap", "s:tap", "p:assemble", "s:assemble"}
	if !slices.Equal(order, want) {
		t.Fatalf("hook order %v, want %v", order, want)
	}
	var sim, charged, msgs int64
	for _, d := range deltas {
		if d.SimulatedRounds < 0 || d.ChargedRounds < 0 || d.Messages < 0 {
			t.Fatalf("negative stage delta: %+v", d)
		}
		sim += d.SimulatedRounds
		charged += d.ChargedRounds
		msgs += d.Messages
	}
	if sim != res.Stats.SimulatedRounds || charged != res.Stats.ChargedRounds || msgs != res.Stats.Messages {
		t.Fatalf("stage deltas sum to %d/%d rounds %d msgs, result bill %d/%d rounds %d msgs",
			sim, charged, msgs, res.Stats.SimulatedRounds, res.Stats.ChargedRounds, res.Stats.Messages)
	}
	if deltas["bfs"].SimulatedRounds == 0 {
		t.Fatal("bfs stage reported zero simulated rounds")
	}
	if deltas["mst"].ChargedRounds == 0 {
		t.Fatal("charged MST stage reported zero charged rounds")
	}
}
