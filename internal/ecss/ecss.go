// Package ecss assembles the paper's end-to-end algorithms for the
// minimum-weight 2-edge-connected spanning subgraph problem (2-ECSS): an MST
// is computed first, then a tree augmentation is added (Claim 2.1), yielding
// an (α+1)-approximation from any α-approximate TAP. With the improved
// primal-dual TAP (Theorem 4.19) this gives the deterministic
// (5+eps)-approximation of Theorem 1.1.
package ecss

import (
	"errors"
	"fmt"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/tap"
	"twoecss/internal/tree"
)

// MSTMode selects how the spanning tree is obtained.
type MSTMode int

const (
	// MSTChargeKuttenPeleg computes the MST centrally (Kruskal) and bills
	// the cited O(D + sqrt(n) log* n) Kutten–Peleg round cost.
	MSTChargeKuttenPeleg MSTMode = iota + 1
	// MSTSimulateBoruvka runs the real message-level pipelined Borůvka
	// simulation (O(n + D log n) measured rounds).
	MSTSimulateBoruvka
)

// Options configures a 2-ECSS run.
type Options struct {
	// Eps is the approximation slack (the paper's constant ε > 0).
	Eps float64
	// Variant selects the reverse-delete flavour (Cover2 gives Theorem 1.1).
	Variant tap.Variant
	// MST selects the spanning tree construction mode.
	MST MSTMode
	// Root is the vertex the BFS and spanning trees are rooted at.
	Root int
	// Workers sets the engine worker-pool size of the network Solve
	// creates (<=0: GOMAXPROCS). Callers that already parallelize above
	// the engine — like the experiment harness — set 1.
	Workers int
	// Progress, if non-nil, is invoked at the start of each pipeline stage
	// ("bfs", "mst", "tap", "assemble") from the solving goroutine. The
	// service layer uses it to surface per-job progress. Like Workers it is
	// an execution knob, not part of result identity: the engine is
	// deterministic for any worker count, so content-addressed caches key
	// on the remaining fields only.
	Progress func(stage string)
	// StageStats, if non-nil, is invoked when a pipeline stage completes,
	// with the engine cost delta (rounds, messages, words) that stage
	// consumed. It fires after the next stage's Progress call would be
	// due — ordering per stage is StageStats(prev) then Progress(next) —
	// and once more for the final stage when SolveOn returns successfully.
	// A stage aborted by an error reports no delta. Like Progress it is an
	// execution knob, excluded from result identity.
	StageStats func(stage string, delta congest.Stats)
}

// DefaultOptions returns Theorem 1.1's configuration.
func DefaultOptions() Options {
	return Options{Eps: 0.25, Variant: tap.Cover2, MST: MSTChargeKuttenPeleg, Root: 0}
}

// Result is a 2-ECSS solution with its certificate.
type Result struct {
	// Edges are the chosen edge ids (tree plus augmentation), sorted.
	Edges []int
	// Weight is the total solution weight.
	Weight int64
	// TreeWeight and AugWeight decompose it.
	TreeWeight, AugWeight int64
	// LowerBound is a certified lower bound on the optimal 2-ECSS weight:
	// max(w(MST), DualLB/2) — any 2-ECSS contains a spanning tree and is a
	// feasible augmentation of the MST (proof of Claim 2.1).
	LowerBound float64
	// CertifiedRatio is Weight / LowerBound.
	CertifiedRatio float64
	// TAP is the inner tree-augmentation result.
	TAP *tap.Result
	// Stats is the network's final cost accounting.
	Stats congest.Stats
}

// ErrNot2EC reports that the input graph is not 2-edge-connected, so no
// spanning 2-ECSS exists.
var ErrNot2EC = errors.New("ecss: input graph is not 2-edge-connected")

// Solve runs the full pipeline of Theorem 1.1 on g and returns the solution
// together with the network used (for round accounting inspection). The
// caller owns the returned network and should Close it when done (see the
// congest package docs on the worker-pool lifecycle). Long-running callers
// that reuse networks across solves use SolveOn directly.
func Solve(g *graph.Graph, opt Options) (*Result, *congest.Network, error) {
	net := congest.NewNetwork(g)
	res, err := SolveOn(net, opt)
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return res, net, nil
}

// SolveOn runs the full pipeline on a caller-provided network over the
// instance net.G — typically one taken from a service NetworkPool whose
// engine scratch and worker pool are already warm. The caller retains
// ownership of net. Result.Stats is the cost delta of this call, so both
// fresh and reused networks report per-solve bills; Result.Stats.
// MaxEdgeWords is the network-lifetime maximum unless the caller calls
// net.ResetAccounting between solves.
func SolveOn(net *congest.Network, opt Options) (*Result, error) {
	g := net.G
	if opt.Eps <= 0 {
		return nil, fmt.Errorf("ecss: eps must be positive")
	}
	if g.N < 3 {
		return nil, fmt.Errorf("ecss: need at least 3 vertices")
	}
	if opt.Workers > 0 {
		net.Workers = opt.Workers
	}
	// step opens a stage: it first closes the previous one by reporting the
	// engine cost consumed since its start (StageStats), then announces the
	// new stage (Progress). closeLast flushes the final stage on success.
	var curStage string
	var stageMark congest.Stats
	step := func(stage string) {
		if opt.StageStats != nil {
			now := net.Stats()
			if curStage != "" {
				opt.StageStats(curStage, statsDelta(stageMark, now))
			}
			curStage, stageMark = stage, now
		}
		if opt.Progress != nil {
			opt.Progress(stage)
		}
	}
	closeLast := func() {
		if opt.StageStats != nil && curStage != "" {
			opt.StageStats(curStage, statsDelta(stageMark, net.Stats()))
			curStage = ""
		}
	}
	start := net.Stats()
	step("bfs")
	net.BeginPhase("bfs")
	bfs, err := primitives.BuildBFS(net, opt.Root)
	if err != nil {
		if errors.Is(err, tree.ErrNotTree) {
			return nil, graph.ErrDisconnected
		}
		return nil, err
	}
	net.EndPhase()

	step("mst")
	net.BeginPhase("mst")
	var t *tree.Rooted
	switch opt.MST {
	case MSTSimulateBoruvka:
		ids, err := mst.Boruvka(net, opt.Root)
		if err != nil {
			return nil, err
		}
		t, err = tree.NewFromEdgeSet(g, opt.Root, ids)
		if err != nil {
			return nil, err
		}
	default:
		t, err = mst.KruskalTree(g, opt.Root, net)
		if err != nil {
			return nil, err
		}
	}
	net.EndPhase()

	step("tap")
	solver, err := tap.NewSolver(net, bfs, t)
	if err != nil {
		return nil, err
	}
	tr, err := solver.SolveWeighted(opt.Eps, opt.Variant)
	if err != nil {
		if errors.Is(err, tap.ErrInfeasible) {
			return nil, ErrNot2EC
		}
		return nil, err
	}

	step("assemble")
	res := assemble(g, t, tr)
	res.Stats = statsDelta(start, net.Stats())
	closeLast()
	return res, nil
}

// statsDelta subtracts the counter fields of start from end. MaxEdgeWords
// is a running maximum, not a counter, so the end value is kept.
func statsDelta(start, end congest.Stats) congest.Stats {
	return congest.Stats{
		SimulatedRounds: end.SimulatedRounds - start.SimulatedRounds,
		ChargedRounds:   end.ChargedRounds - start.ChargedRounds,
		Messages:        end.Messages - start.Messages,
		Words:           end.Words - start.Words,
		MaxEdgeWords:    end.MaxEdgeWords,
	}
}

func assemble(g *graph.Graph, t *tree.Rooted, tr *tap.Result) *Result {
	res := &Result{TAP: tr, TreeWeight: int64(t.Weight()), AugWeight: tr.Weight}
	seen := map[int]bool{}
	for _, id := range t.TreeEdgeIDs() {
		seen[id] = true
		res.Edges = append(res.Edges, id)
	}
	for _, id := range tr.OrigEdges {
		if !seen[id] {
			seen[id] = true
			res.Edges = append(res.Edges, id)
		}
	}
	slices.Sort(res.Edges)
	res.Weight = int64(g.TotalWeight(res.Edges))
	res.LowerBound = float64(res.TreeWeight)
	if lb := tr.DualLB / 2; lb > res.LowerBound {
		res.LowerBound = lb
	}
	if res.LowerBound > 0 {
		res.CertifiedRatio = float64(res.Weight) / res.LowerBound
	}
	return res
}

// Verify checks that res is a well-formed spanning 2-edge-connected
// subgraph of g: every edge id is in range and bought at most once (a
// duplicated id would make a bridge look doubled and mask infeasibility),
// the claimed weight matches the edge set, the subgraph spans g and is
// connected, and no chosen edge is a bridge of the chosen subgraph.
func Verify(g *graph.Graph, res *Result) error {
	if res == nil {
		return errors.New("ecss: nil result")
	}
	ids := slices.Clone(res.Edges)
	slices.Sort(ids)
	for i, id := range ids {
		if id < 0 || id >= g.M() {
			return fmt.Errorf("ecss: solution edge id %d out of range [0,%d)", id, g.M())
		}
		if i > 0 && ids[i-1] == id {
			return fmt.Errorf("ecss: solution lists edge id %d twice (an edge may be bought once)", id)
		}
	}
	if w := int64(g.TotalWeight(ids)); w != res.Weight {
		return fmt.Errorf("ecss: claimed weight %d does not match edge set weight %d", res.Weight, w)
	}
	sub := g.Subgraph(ids)
	if !sub.Connected() {
		return fmt.Errorf("ecss: solution subgraph is not connected/spanning on %d vertices", g.N)
	}
	if br := sub.Bridges(); len(br) != 0 {
		e := sub.Edges[br[0]]
		return fmt.Errorf("ecss: solution is not 2-edge-connected: %d bridges (first {%d,%d})", len(br), e.U, e.V)
	}
	return nil
}
