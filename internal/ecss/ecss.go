// Package ecss assembles the paper's end-to-end algorithms for the
// minimum-weight 2-edge-connected spanning subgraph problem (2-ECSS): an MST
// is computed first, then a tree augmentation is added (Claim 2.1), yielding
// an (α+1)-approximation from any α-approximate TAP. With the improved
// primal-dual TAP (Theorem 4.19) this gives the deterministic
// (5+eps)-approximation of Theorem 1.1.
package ecss

import (
	"errors"
	"fmt"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/tap"
	"twoecss/internal/tree"
)

// MSTMode selects how the spanning tree is obtained.
type MSTMode int

const (
	// MSTChargeKuttenPeleg computes the MST centrally (Kruskal) and bills
	// the cited O(D + sqrt(n) log* n) Kutten–Peleg round cost.
	MSTChargeKuttenPeleg MSTMode = iota + 1
	// MSTSimulateBoruvka runs the real message-level pipelined Borůvka
	// simulation (O(n + D log n) measured rounds).
	MSTSimulateBoruvka
)

// Options configures a 2-ECSS run.
type Options struct {
	// Eps is the approximation slack (the paper's constant ε > 0).
	Eps float64
	// Variant selects the reverse-delete flavour (Cover2 gives Theorem 1.1).
	Variant tap.Variant
	// MST selects the spanning tree construction mode.
	MST MSTMode
	// Root is the vertex the BFS and spanning trees are rooted at.
	Root int
	// Workers sets the engine worker-pool size of the network Solve
	// creates (<=0: GOMAXPROCS). Callers that already parallelize above
	// the engine — like the experiment harness — set 1.
	Workers int
}

// DefaultOptions returns Theorem 1.1's configuration.
func DefaultOptions() Options {
	return Options{Eps: 0.25, Variant: tap.Cover2, MST: MSTChargeKuttenPeleg, Root: 0}
}

// Result is a 2-ECSS solution with its certificate.
type Result struct {
	// Edges are the chosen edge ids (tree plus augmentation), sorted.
	Edges []int
	// Weight is the total solution weight.
	Weight int64
	// TreeWeight and AugWeight decompose it.
	TreeWeight, AugWeight int64
	// LowerBound is a certified lower bound on the optimal 2-ECSS weight:
	// max(w(MST), DualLB/2) — any 2-ECSS contains a spanning tree and is a
	// feasible augmentation of the MST (proof of Claim 2.1).
	LowerBound float64
	// CertifiedRatio is Weight / LowerBound.
	CertifiedRatio float64
	// TAP is the inner tree-augmentation result.
	TAP *tap.Result
	// Stats is the network's final cost accounting.
	Stats congest.Stats
}

// ErrNot2EC reports that the input graph is not 2-edge-connected, so no
// spanning 2-ECSS exists.
var ErrNot2EC = errors.New("ecss: input graph is not 2-edge-connected")

// Solve runs the full pipeline of Theorem 1.1 on g and returns the solution
// together with the network used (for round accounting inspection). The
// caller owns the returned network and should Close it when done (see the
// congest package docs on the worker-pool lifecycle).
func Solve(g *graph.Graph, opt Options) (*Result, *congest.Network, error) {
	if opt.Eps <= 0 {
		return nil, nil, fmt.Errorf("ecss: eps must be positive")
	}
	if g.N < 3 {
		return nil, nil, fmt.Errorf("ecss: need at least 3 vertices")
	}
	net := congest.NewNetwork(g)
	if opt.Workers > 0 {
		net.Workers = opt.Workers
	}
	net.BeginPhase("bfs")
	bfs, err := primitives.BuildBFS(net, opt.Root)
	if err != nil {
		if errors.Is(err, tree.ErrNotTree) {
			return nil, nil, graph.ErrDisconnected
		}
		return nil, nil, err
	}
	net.EndPhase()

	net.BeginPhase("mst")
	var t *tree.Rooted
	switch opt.MST {
	case MSTSimulateBoruvka:
		ids, err := mst.Boruvka(net, opt.Root)
		if err != nil {
			return nil, nil, err
		}
		t, err = tree.NewFromEdgeSet(g, opt.Root, ids)
		if err != nil {
			return nil, nil, err
		}
	default:
		t, err = mst.KruskalTree(g, opt.Root, net)
		if err != nil {
			return nil, nil, err
		}
	}
	net.EndPhase()

	solver, err := tap.NewSolver(net, bfs, t)
	if err != nil {
		return nil, nil, err
	}
	tr, err := solver.SolveWeighted(opt.Eps, opt.Variant)
	if err != nil {
		if errors.Is(err, tap.ErrInfeasible) {
			return nil, nil, ErrNot2EC
		}
		return nil, nil, err
	}

	res := assemble(g, t, tr)
	res.Stats = net.Stats()
	return res, net, nil
}

func assemble(g *graph.Graph, t *tree.Rooted, tr *tap.Result) *Result {
	res := &Result{TAP: tr, TreeWeight: int64(t.Weight()), AugWeight: tr.Weight}
	seen := map[int]bool{}
	for _, id := range t.TreeEdgeIDs() {
		seen[id] = true
		res.Edges = append(res.Edges, id)
	}
	for _, id := range tr.OrigEdges {
		if !seen[id] {
			seen[id] = true
			res.Edges = append(res.Edges, id)
		}
	}
	slices.Sort(res.Edges)
	res.Weight = int64(g.TotalWeight(res.Edges))
	res.LowerBound = float64(res.TreeWeight)
	if lb := tr.DualLB / 2; lb > res.LowerBound {
		res.LowerBound = lb
	}
	if res.LowerBound > 0 {
		res.CertifiedRatio = float64(res.Weight) / res.LowerBound
	}
	return res
}

// Verify checks that the returned edge set is a spanning 2-edge-connected
// subgraph of g.
func Verify(g *graph.Graph, res *Result) error {
	sub := g.Subgraph(res.Edges)
	if !sub.Connected() {
		return fmt.Errorf("ecss: solution subgraph disconnected")
	}
	if br := sub.Bridges(); len(br) != 0 {
		return fmt.Errorf("ecss: solution has %d bridges", len(br))
	}
	return nil
}
