package ecss

import (
	"strings"
	"testing"

	"twoecss/internal/graph"
)

// resultFor builds a Result claiming the given edge ids with a consistent
// weight, bypassing Solve, so corruption cases can be staged precisely.
func resultFor(g *graph.Graph, ids []int) *Result {
	return &Result{Edges: ids, Weight: int64(g.TotalWeight(ids))}
}

func TestVerifyAcceptsValidSolution(t *testing.T) {
	g := gen2EC(21, 40, 40, graph.WeightUniform)
	res, net, err := Solve(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := Verify(g, res); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
}

func TestVerifyRejectsDroppedTreeEdge(t *testing.T) {
	g := gen2EC(22, 40, 40, graph.WeightUniform)
	res, net, err := Solve(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	// Drop one MST edge from the solution (a solution edge that is not part
	// of the augmentation): the subgraph either disconnects or the
	// remaining incident edges become bridges.
	aug := map[int]bool{}
	for _, id := range res.TAP.OrigEdges {
		aug[id] = true
	}
	treeID := -1
	for _, id := range res.Edges {
		if !aug[id] {
			treeID = id
			break
		}
	}
	if treeID < 0 {
		t.Fatal("no tree edge found in solution")
	}
	var kept []int
	for _, id := range res.Edges {
		if id != treeID {
			kept = append(kept, id)
		}
	}
	err = Verify(g, resultFor(g, kept))
	if err == nil {
		t.Fatal("solution with a dropped tree edge accepted")
	}
	if !strings.Contains(err.Error(), "connected") && !strings.Contains(err.Error(), "bridge") {
		t.Fatalf("error %q does not describe the structural failure", err)
	}
}

func TestVerifyRejectsNon2ECSubgraph(t *testing.T) {
	// A 4-cycle: the full cycle verifies; any tree of it has bridges.
	g := graph.New(4)
	cyc := []int{
		g.MustAddEdge(0, 1, 1),
		g.MustAddEdge(1, 2, 1),
		g.MustAddEdge(2, 3, 1),
		g.MustAddEdge(3, 0, 1),
	}
	if err := Verify(g, resultFor(g, cyc)); err != nil {
		t.Fatalf("full cycle rejected: %v", err)
	}
	err := Verify(g, resultFor(g, cyc[:3]))
	if err == nil {
		t.Fatal("spanning path (all bridges) accepted")
	}
	if !strings.Contains(err.Error(), "bridge") {
		t.Fatalf("error %q does not mention bridges", err)
	}

	// Connected but not spanning: a triangle inside a larger vertex set.
	big := graph.New(6)
	tri := []int{
		big.MustAddEdge(0, 1, 1),
		big.MustAddEdge(1, 2, 1),
		big.MustAddEdge(2, 0, 1),
	}
	err = Verify(big, resultFor(big, tri))
	if err == nil {
		t.Fatal("non-spanning solution accepted")
	}
	if !strings.Contains(err.Error(), "connected") {
		t.Fatalf("error %q does not describe the spanning failure", err)
	}
}

func TestVerifyRejectsDuplicateAndBogusEdgeIDs(t *testing.T) {
	// Triangle plus a pendant bridge edge {2,3}. Listing the bridge twice
	// would fabricate a parallel edge and fool a naive subgraph check.
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1, 1)
	e12 := g.MustAddEdge(1, 2, 1)
	e20 := g.MustAddEdge(2, 0, 1)
	e23 := g.MustAddEdge(2, 3, 1)

	err := Verify(g, resultFor(g, []int{e01, e12, e20, e23, e23}))
	if err == nil {
		t.Fatal("duplicated edge id accepted")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Fatalf("error %q does not describe the duplication", err)
	}

	err = Verify(g, &Result{Edges: []int{e01, e12, e20, 99}})
	if err == nil {
		t.Fatal("out-of-range edge id accepted")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error %q does not describe the range failure", err)
	}

	bad := resultFor(g, []int{e01, e12, e20, e23})
	bad.Weight += 5
	err = Verify(g, bad)
	if err == nil {
		t.Fatal("wrong claimed weight accepted")
	}
	if !strings.Contains(err.Error(), "weight") {
		t.Fatalf("error %q does not describe the weight mismatch", err)
	}

	if err := Verify(g, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}
