package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// arm installs spec for the duration of the test. Tests using it cannot run
// in parallel with each other (process-wide registry), which mirrors how the
// production plan is global too.
func arm(t *testing.T, spec string) {
	t.Helper()
	if err := Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("enabled with no plan")
	}
	if err := Point("solve.pre"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if Snapshot() != nil || Points() != nil {
		t.Fatal("disarmed snapshot not nil")
	}
}

func TestErrorMode(t *testing.T) {
	arm(t, "a:error=boom")
	err := Point("a")
	var f *Fault
	if !errors.As(err, &f) || f.PointName != "a" || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("got %v", err)
	}
	if err := Point("other"); err != nil {
		t.Fatalf("unspecified point fired: %v", err)
	}
	st := Snapshot()
	if st["a"].Hits != 1 || st["a"].Fires != 1 {
		t.Fatalf("stats %+v", st["a"])
	}
}

func TestPanicMode(t *testing.T) {
	arm(t, "b:panic=dead")
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.PointName != "b" {
			t.Fatalf("recovered %v", r)
		}
	}()
	Point("b")
	t.Fatal("no panic")
}

func TestDelayMode(t *testing.T) {
	arm(t, "c:delay=20ms")
	t0 := time.Now()
	if err := Point("c"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("slept only %s", d)
	}
}

func TestCountAndAfter(t *testing.T) {
	arm(t, "d:error,after=2,count=3")
	fires := 0
	for i := 0; i < 10; i++ {
		if Point("d") != nil {
			fires++
			if i < 2 {
				t.Fatalf("fired during after window at hit %d", i)
			}
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times, want 3", fires)
	}
}

func TestProbabilityBounds(t *testing.T) {
	arm(t, "e:error,p=0.5")
	fires := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if Point("e") != nil {
			fires++
		}
	}
	if fires < n/4 || fires > 3*n/4 {
		t.Fatalf("p=0.5 fired %d/%d", fires, n)
	}
	st := Snapshot()
	if st["e"].Hits != n || st["e"].Fires != int64(fires) {
		t.Fatalf("stats %+v, fires %d", st["e"], fires)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"noseparator",
		"x:",
		"x:p=0.5",         // modifier before any mode
		"x:error,p=2",     // p out of range
		"x:error,count=-1",
		"x:delay",         // delay without duration
		"x:delay=zzz",
		"x:error;x:panic", // duplicate point
		"x:error,whatever=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if pl, err := Parse("  "); err != nil || pl != nil {
		t.Fatalf("empty spec: %v %v", pl, err)
	}
}

func TestArmEmptyDisarms(t *testing.T) {
	arm(t, "f:error")
	if !Enabled() {
		t.Fatal("not enabled")
	}
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("still enabled after empty Arm")
	}
}

func TestConcurrentPoints(t *testing.T) {
	arm(t, "g:error,p=0.5;h:delay=1us")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Point("g")
				Point("h")
				Snapshot()
			}
		}()
	}
	wg.Wait()
	st := Snapshot()
	if st["g"].Hits != 4000 || st["h"].Hits != 4000 {
		t.Fatalf("stats %+v", st)
	}
}

// BenchmarkPointDisarmed pins the disarmed cost of an injection site: one
// atomic pointer load, so sites can sit on hot paths (CI runs this via the
// bench smoke).
func BenchmarkPointDisarmed(b *testing.B) {
	Disarm()
	for i := 0; i < b.N; i++ {
		if err := Point("solve.pre"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointArmedMiss measures an armed plan's cost at a site the plan
// does not target — the common case in a chaos run.
func BenchmarkPointArmedMiss(b *testing.B) {
	if err := Arm("other.point:error"); err != nil {
		b.Fatal(err)
	}
	defer Disarm()
	for i := 0; i < b.N; i++ {
		if err := Point("solve.pre"); err != nil {
			b.Fatal(err)
		}
	}
}
