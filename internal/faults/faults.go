// Package faults is a process-wide fault-injection registry. Production
// code marks injection sites with Point(name); a test, the ECSS_FAULTS
// environment variable, or ecssd's -faults flag arms a plan that makes
// chosen sites fail — return an error, panic, or stall — with optional
// probability and count bounds. Disarmed (the default), Point is a single
// atomic pointer load returning nil, so sites can sit on hot paths.
//
// A plan is a semicolon-separated list of point specs:
//
//	name:mode[,k=v]...
//
// Modes:
//
//	error[=msg]   Point returns a *Fault error
//	panic[=msg]   Point panics with a *Fault
//	delay=DUR     Point sleeps DUR (time.ParseDuration syntax), returns nil
//
// Modifiers:
//
//	p=F           fire with probability F in (0,1] (default 1; deterministic
//	              per-point PRNG seeded from the point name, so a plan
//	              replays identically within a process)
//	count=N       fire at most N times, then the point goes quiet
//	after=N       ignore the first N hits before the other rules apply
//
// Example: "solve.stage:panic,p=0.05;store.fsync:error,count=3".
//
// Sites currently wired (see DESIGN.md §9): solve.pre, solve.stage,
// solve.postverify (internal/service worker), store.rename, store.fsync,
// store.index, store.read (internal/store), http.solve (HTTP layer),
// router.forward (internal/router solve path).
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is the error (or panic value) a fired injection point produces.
// Consumers distinguish injected failures from organic ones with errors.As,
// e.g. to classify them as retryable.
type Fault struct {
	// PointName is the site that fired.
	PointName string
	// Msg is the operator-supplied message, if any.
	Msg string
}

func (f *Fault) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("fault injected at %s: %s", f.PointName, f.Msg)
	}
	return fmt.Sprintf("fault injected at %s", f.PointName)
}

type mode int

const (
	modeError mode = iota
	modePanic
	modeDelay
)

type point struct {
	name  string
	mode  mode
	msg   string
	delay time.Duration
	p     float64
	after int64 // hits to ignore before anything fires
	count int64 // max fires; <0 unlimited

	mu    sync.Mutex
	rng   *rand.Rand
	hits  int64
	fires int64
}

// decide applies after/p/count under the point lock and reports whether the
// site fires this hit.
func (pt *point) decide() bool {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	pt.hits++
	if pt.hits <= pt.after {
		return false
	}
	if pt.count >= 0 && pt.fires >= pt.count {
		return false
	}
	if pt.p < 1 && pt.rng.Float64() >= pt.p {
		return false
	}
	pt.fires++
	return true
}

// Plan is a parsed, armed set of injection points.
type Plan struct {
	points map[string]*point
}

var armed atomic.Pointer[Plan]

// Enabled reports whether any plan is armed.
func Enabled() bool { return armed.Load() != nil }

// Arm parses spec and installs it as the process-wide plan, replacing any
// previous one. An empty spec disarms.
func Arm(spec string) error {
	pl, err := Parse(spec)
	if err != nil {
		return err
	}
	if pl == nil || len(pl.points) == 0 {
		Disarm()
		return nil
	}
	armed.Store(pl)
	return nil
}

// Disarm removes the active plan; every Point returns nil again.
func Disarm() { armed.Store(nil) }

// Parse parses a plan spec without arming it. An empty spec yields nil.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	pl := &Plan{points: make(map[string]*point)}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		pt, err := parsePoint(raw)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", raw, err)
		}
		if _, dup := pl.points[pt.name]; dup {
			return nil, fmt.Errorf("faults: point %q specified twice", pt.name)
		}
		pl.points[pt.name] = pt
	}
	return pl, nil
}

func parsePoint(raw string) (*point, error) {
	name, rest, ok := strings.Cut(raw, ":")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return nil, fmt.Errorf("want name:mode[,k=v]")
	}
	// Deterministic per-point PRNG: the seed depends only on the point name,
	// so a probabilistic plan replays identically run to run.
	h := fnv.New64a()
	h.Write([]byte(name))
	pt := &point{
		name:  name,
		p:     1,
		count: -1,
		rng:   rand.New(rand.NewSource(int64(h.Sum64()))),
	}
	seenMode := false
	for i, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, v, hasVal := strings.Cut(f, "=")
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		isMode := k == "error" || k == "panic" || k == "delay"
		if i == 0 && !isMode {
			return nil, fmt.Errorf("first field must be a mode (error|panic|delay), got %q", k)
		}
		switch k {
		case "error":
			pt.mode, pt.msg, seenMode = modeError, v, true
		case "panic":
			pt.mode, pt.msg, seenMode = modePanic, v, true
		case "delay":
			if !hasVal {
				return nil, fmt.Errorf("delay needs a duration")
			}
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("bad delay %q", v)
			}
			pt.mode, pt.delay, seenMode = modeDelay, d, true
		case "p":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("p must be in (0,1], got %q", v)
			}
			pt.p = p
		case "count":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad count %q", v)
			}
			pt.count = n
		case "after":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad after %q", v)
			}
			pt.after = n
		default:
			return nil, fmt.Errorf("unknown field %q", k)
		}
	}
	if !seenMode {
		return nil, fmt.Errorf("missing mode (error|panic|delay)")
	}
	return pt, nil
}

// Point marks an injection site. With no armed plan, or no spec for name, it
// returns nil. Otherwise the point's mode applies: error mode returns a
// *Fault, panic mode panics with one, delay mode sleeps and returns nil.
// Sites that cannot surface an error (progress callbacks) ignore the return
// value; error mode is then a no-op there by construction.
func Point(name string) error {
	pl := armed.Load()
	if pl == nil {
		return nil
	}
	pt, ok := pl.points[name]
	if !ok || !pt.decide() {
		return nil
	}
	switch pt.mode {
	case modePanic:
		panic(&Fault{PointName: name, Msg: pt.msg})
	case modeDelay:
		time.Sleep(pt.delay)
		return nil
	default:
		return &Fault{PointName: name, Msg: pt.msg}
	}
}

// PointStats is the observable history of one armed point.
type PointStats struct {
	// Hits counts Point calls that found this spec; Fires counts the subset
	// that actually injected the fault.
	Hits  int64 `json:"hits"`
	Fires int64 `json:"fires"`
}

// Snapshot returns per-point counters of the armed plan, or nil when
// disarmed. The service exposes it under /v1/stats.
func Snapshot() map[string]PointStats {
	pl := armed.Load()
	if pl == nil {
		return nil
	}
	out := make(map[string]PointStats, len(pl.points))
	for name, pt := range pl.points {
		pt.mu.Lock()
		out[name] = PointStats{Hits: pt.hits, Fires: pt.fires}
		pt.mu.Unlock()
	}
	return out
}

// Points lists the armed point names, sorted, for log lines.
func Points() []string {
	pl := armed.Load()
	if pl == nil {
		return nil
	}
	names := make([]string, 0, len(pl.points))
	for name := range pl.points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
