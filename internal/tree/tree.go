// Package tree provides the rooted spanning tree toolkit used throughout the
// reproduction: parent/child structure, preorder intervals (ancestry tests),
// depths, subtree sizes, binary-lifting LCA (used as a centralized
// verification oracle), and heavy-light decomposition.
//
// Tree edges are identified by their child endpoint: the tree edge with id v
// is the edge {v, Parent[v]} for v != Root. This convention is shared by all
// packages.
package tree

import (
	"errors"
	"fmt"

	"twoecss/internal/graph"
)

// Rooted is a rooted spanning tree of an underlying graph. All slices are
// indexed by vertex.
type Rooted struct {
	G    *graph.Graph
	Root int
	// Parent[v] is the parent of v (-1 for the root).
	Parent []int
	// ParentEdge[v] is the id (in G) of the edge {v,Parent[v]} (-1 for root).
	ParentEdge []int
	// Children[v] lists the children of v in preorder-discovery order.
	Children [][]int
	// Depth[v] is the hop distance from the root.
	Depth []int
	// Tin/Tout are preorder entry/exit times: u is an ancestor of v
	// (inclusive) iff Tin[u] <= Tin[v] && Tout[v] <= Tout[u].
	Tin, Tout []int
	// Order is the preorder vertex sequence (Order[0] == Root).
	Order []int
	// Size[v] is the number of vertices in the subtree rooted at v.
	Size []int

	up [][]int // binary lifting table; up[0] == Parent with root mapped to root
}

// ErrNotTree reports that the provided edge set is not a spanning tree.
var ErrNotTree = errors.New("tree: edge set is not a spanning tree")

// NewFromParentEdges builds a Rooted from a parentEdge array as produced by
// graph.BFS (parentEdge[v] = edge id connecting v towards the root, -1 at the
// root).
func NewFromParentEdges(g *graph.Graph, root int, parentEdge []int) (*Rooted, error) {
	if root < 0 || root >= g.N {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	t := &Rooted{
		G:          g,
		Root:       root,
		Parent:     make([]int, g.N),
		ParentEdge: make([]int, g.N),
		Children:   make([][]int, g.N),
		Depth:      make([]int, g.N),
		Tin:        make([]int, g.N),
		Tout:       make([]int, g.N),
		Size:       make([]int, g.N),
	}
	for v := 0; v < g.N; v++ {
		t.Parent[v] = -1
		t.ParentEdge[v] = -1
	}
	cnt := 0
	for v := 0; v < g.N; v++ {
		if v == root {
			continue
		}
		id := parentEdge[v]
		if id < 0 || id >= g.M() {
			return nil, fmt.Errorf("tree: vertex %d has no parent edge: %w", v, ErrNotTree)
		}
		e := g.Edges[id]
		if e.U != v && e.V != v {
			return nil, fmt.Errorf("tree: edge %d not incident to %d: %w", id, v, ErrNotTree)
		}
		t.Parent[v] = e.Other(v)
		t.ParentEdge[v] = id
		cnt++
	}
	if cnt != g.N-1 {
		return nil, ErrNotTree
	}
	for v := 0; v < g.N; v++ {
		if p := t.Parent[v]; p >= 0 {
			t.Children[p] = append(t.Children[p], v)
		}
	}
	if err := t.computeOrders(); err != nil {
		return nil, err
	}
	t.buildLifting()
	return t, nil
}

// NewFromEdgeSet builds a Rooted from a set of n-1 edge ids forming a
// spanning tree, rooted at root.
func NewFromEdgeSet(g *graph.Graph, root int, treeEdges []int) (*Rooted, error) {
	if len(treeEdges) != g.N-1 {
		return nil, ErrNotTree
	}
	sub := make([][]int, g.N) // adjacency restricted to tree edges
	for _, id := range treeEdges {
		if id < 0 || id >= g.M() {
			return nil, fmt.Errorf("tree: edge id %d out of range: %w", id, ErrNotTree)
		}
		e := g.Edges[id]
		sub[e.U] = append(sub[e.U], id)
		sub[e.V] = append(sub[e.V], id)
	}
	parentEdge := make([]int, g.N)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	seen := make([]bool, g.N)
	seen[root] = true
	queue := []int{root}
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range sub[v] {
			u := g.Edges[id].Other(v)
			if !seen[u] {
				seen[u] = true
				parentEdge[u] = id
				reached++
				queue = append(queue, u)
			}
		}
	}
	if reached != g.N {
		return nil, ErrNotTree
	}
	return NewFromParentEdges(g, root, parentEdge)
}

// BFSTree computes a BFS spanning tree of g rooted at root.
func BFSTree(g *graph.Graph, root int) (*Rooted, error) {
	parentEdge, dist := g.BFS(root)
	for _, d := range dist {
		if d < 0 {
			return nil, graph.ErrDisconnected
		}
	}
	return NewFromParentEdges(g, root, parentEdge)
}

func (t *Rooted) computeOrders() error {
	n := t.G.N
	t.Order = make([]int, 0, n)
	timer := 0
	type frame struct{ v, idx int }
	stack := make([]frame, 0, n)
	stack = append(stack, frame{v: t.Root})
	t.Tin[t.Root] = timer
	timer++
	t.Order = append(t.Order, t.Root)
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(t.Children[f.v]) {
			c := t.Children[f.v][f.idx]
			f.idx++
			t.Depth[c] = t.Depth[f.v] + 1
			t.Tin[c] = timer
			timer++
			t.Order = append(t.Order, c)
			visited++
			stack = append(stack, frame{v: c})
		} else {
			t.Tout[f.v] = timer
			timer++
			stack = stack[:len(stack)-1]
		}
	}
	if visited != n {
		return ErrNotTree // cycle or disconnection in parent structure
	}
	// Subtree sizes in reverse preorder.
	for i := range t.Size {
		t.Size[i] = 1
	}
	for i := n - 1; i >= 1; i-- {
		v := t.Order[i]
		t.Size[t.Parent[v]] += t.Size[v]
	}
	return nil
}

func (t *Rooted) buildLifting() {
	n := t.G.N
	lg := 1
	for 1<<lg < n {
		lg++
	}
	t.up = make([][]int, lg+1)
	base := make([]int, n)
	for v := 0; v < n; v++ {
		if t.Parent[v] >= 0 {
			base[v] = t.Parent[v]
		} else {
			base[v] = v
		}
	}
	t.up[0] = base
	for k := 1; k <= lg; k++ {
		prev := t.up[k-1]
		cur := make([]int, n)
		for v := 0; v < n; v++ {
			cur[v] = prev[prev[v]]
		}
		t.up[k] = cur
	}
}

// IsAncestor reports whether u is an ancestor of v (inclusive: every vertex
// is an ancestor of itself). This is the local test enabled by LCA labels in
// the paper (Section 4.1).
func (t *Rooted) IsAncestor(u, v int) bool {
	return t.Tin[u] <= t.Tin[v] && t.Tout[v] <= t.Tout[u]
}

// LCA returns the lowest common ancestor of u and v via binary lifting.
func (t *Rooted) LCA(u, v int) int {
	if t.IsAncestor(u, v) {
		return u
	}
	if t.IsAncestor(v, u) {
		return v
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if !t.IsAncestor(t.up[k][u], v) {
			u = t.up[k][u]
		}
	}
	return t.Parent[u]
}

// KthAncestor returns the ancestor of v at distance k, or the root if k
// exceeds Depth[v].
func (t *Rooted) KthAncestor(v, k int) int {
	if k > t.Depth[v] {
		k = t.Depth[v]
	}
	for i := 0; k > 0; i, k = i+1, k>>1 {
		if k&1 == 1 {
			v = t.up[i][v]
		}
	}
	return v
}

// EdgeCount returns n-1, the number of tree edges.
func (t *Rooted) EdgeCount() int { return t.G.N - 1 }

// TreeEdgeIDs returns the graph edge ids of all tree edges.
func (t *Rooted) TreeEdgeIDs() []int {
	out := make([]int, 0, t.G.N-1)
	for v := 0; v < t.G.N; v++ {
		if t.ParentEdge[v] >= 0 {
			out = append(out, t.ParentEdge[v])
		}
	}
	return out
}

// IsTreeEdge reports whether graph edge id belongs to the tree.
func (t *Rooted) IsTreeEdge(id int) bool {
	e := t.G.Edges[id]
	return t.ParentEdge[e.U] == id || t.ParentEdge[e.V] == id
}

// NonTreeEdgeIDs returns the graph edge ids not in the tree.
func (t *Rooted) NonTreeEdgeIDs() []int {
	out := make([]int, 0, t.G.M()-(t.G.N-1))
	for id := range t.G.Edges {
		if !t.IsTreeEdge(id) {
			out = append(out, id)
		}
	}
	return out
}

// Covers reports whether the (non-tree) edge {u,v} covers the tree edge with
// child endpoint c, i.e. whether the edge {c,Parent[c]} lies on the tree path
// between u and v (Section 2 of the paper).
func (t *Rooted) Covers(u, v, c int) bool {
	// {c,p(c)} is on P(u,v) iff exactly one of u,v is in the subtree of c,
	// equivalently c is an ancestor of exactly one of them... precisely:
	// the path P(u,v) passes c's parent edge iff (c ancestor of u) XOR
	// (c ancestor of v).
	return t.IsAncestor(c, u) != t.IsAncestor(c, v)
}

// PathLen returns the number of edges on the tree path between u and v.
func (t *Rooted) PathLen(u, v int) int {
	w := t.LCA(u, v)
	return t.Depth[u] + t.Depth[v] - 2*t.Depth[w]
}

// Weight returns the total weight of the tree.
func (t *Rooted) Weight() graph.Weight {
	var s graph.Weight
	for v := 0; v < t.G.N; v++ {
		if t.ParentEdge[v] >= 0 {
			s += t.G.Edges[t.ParentEdge[v]].W
		}
	}
	return s
}

// Height returns the maximum depth.
func (t *Rooted) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// HeavyChild returns, for each vertex, its child with the largest subtree
// (-1 for leaves). Ties break to the smaller vertex id for determinism.
func (t *Rooted) HeavyChild() []int {
	hc := make([]int, t.G.N)
	for v := range hc {
		hc[v] = -1
		best := -1
		for _, c := range t.Children[v] {
			if t.Size[c] > best || (t.Size[c] == best && c < hc[v]) {
				best = t.Size[c]
				hc[v] = c
			}
		}
	}
	return hc
}

// HeavyLight computes a heavy-light decomposition per Definition 5.3: edge
// {v,parent} is heavy iff Size[v] > Size[parent]/2. It returns head[v], the
// topmost vertex of the heavy path containing v, and isHeavy[v] reporting
// whether v's parent edge is heavy. Every root-to-leaf path contains at most
// log2(n) light edges.
func (t *Rooted) HeavyLight() (head []int, isHeavy []bool) {
	n := t.G.N
	head = make([]int, n)
	isHeavy = make([]bool, n)
	for _, v := range t.Order {
		p := t.Parent[v]
		if p >= 0 && 2*t.Size[v] > t.Size[p] {
			isHeavy[v] = true
			head[v] = head[p]
		} else {
			head[v] = v
		}
	}
	return head, isHeavy
}

// LightEdgesToRoot returns for each vertex the list of child endpoints of
// the light edges on its path to the root, bottom-up. Lists have length at
// most log2(n)+1.
func (t *Rooted) LightEdgesToRoot() [][]int {
	_, isHeavy := t.HeavyLight()
	out := make([][]int, t.G.N)
	for _, v := range t.Order {
		p := t.Parent[v]
		if p < 0 {
			continue
		}
		if isHeavy[v] {
			out[v] = out[p]
		} else {
			lst := make([]int, 0, len(out[p])+1)
			lst = append(lst, v)
			lst = append(lst, out[p]...)
			out[v] = lst
		}
	}
	return out
}
