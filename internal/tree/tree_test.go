package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/graph"
)

func randTreeGraph(rng *rand.Rand, n int) (*graph.Graph, *Rooted) {
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 50, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, rng.Intn(n), cfg)
	t, err := BFSTree(g, rng.Intn(n))
	if err != nil {
		panic(err)
	}
	return g, t
}

func TestBFSTreeBasic(t *testing.T) {
	g := graph.Grid(3, 3, graph.DefaultGenConfig(1))
	rt, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root != 0 || rt.Parent[0] != -1 {
		t.Fatal("bad root")
	}
	if rt.Size[0] != 9 {
		t.Fatalf("root subtree size = %d", rt.Size[0])
	}
	if got := len(rt.TreeEdgeIDs()); got != 8 {
		t.Fatalf("tree edges = %d", got)
	}
	if got := len(rt.NonTreeEdgeIDs()); got != g.M()-8 {
		t.Fatalf("non-tree edges = %d", got)
	}
	// BFS tree depths equal BFS distances.
	_, dist := g.BFS(0)
	for v := 0; v < g.N; v++ {
		if rt.Depth[v] != dist[v] {
			t.Fatalf("depth[%d]=%d, dist=%d", v, rt.Depth[v], dist[v])
		}
	}
}

func TestNewFromEdgeSetErrors(t *testing.T) {
	g := graph.New(4)
	e0 := g.MustAddEdge(0, 1, 1)
	e1 := g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	e3 := g.MustAddEdge(0, 2, 1)
	if _, err := NewFromEdgeSet(g, 0, []int{e0, e1}); err == nil {
		t.Fatal("too-small edge set accepted")
	}
	if _, err := NewFromEdgeSet(g, 0, []int{e0, e1, e3}); err == nil {
		t.Fatal("cyclic edge set accepted (does not span vertex 3)")
	}
}

// lcaNaive walks parents.
func lcaNaive(t *Rooted, u, v int) int {
	seen := map[int]bool{}
	for x := u; ; x = t.Parent[x] {
		seen[x] = true
		if t.Parent[x] < 0 {
			break
		}
	}
	for x := v; ; x = t.Parent[x] {
		if seen[x] {
			return x
		}
	}
}

func TestLCAAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		_, rt := randTreeGraph(rng, n)
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := rt.LCA(u, v), lcaNaive(rt, u, v); got != want {
				t.Fatalf("LCA(%d,%d)=%d, want %d", u, v, got, want)
			}
		}
	}
}

func TestIsAncestorMatchesParentWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_, rt := randTreeGraph(rng, 30)
	for u := 0; u < 30; u++ {
		anc := map[int]bool{}
		for x := u; ; x = rt.Parent[x] {
			anc[x] = true
			if rt.Parent[x] < 0 {
				break
			}
		}
		for a := 0; a < 30; a++ {
			if rt.IsAncestor(a, u) != anc[a] {
				t.Fatalf("IsAncestor(%d,%d) mismatch", a, u)
			}
		}
	}
}

func TestCovers(t *testing.T) {
	// Path 0-1-2-3-4 rooted at 0; chord {1,4} covers tree edges 2,3,4.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	rt, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 5; c++ {
		want := c >= 2
		if got := rt.Covers(1, 4, c); got != want {
			t.Fatalf("Covers(1,4,%d)=%v want %v", c, got, want)
		}
	}
}

func TestCoversAgainstPathMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(25)
		_, rt := randTreeGraph(rng, n)
		u, v := rng.Intn(n), rng.Intn(n)
		onPath := map[int]bool{}
		w := rt.LCA(u, v)
		for x := u; x != w; x = rt.Parent[x] {
			onPath[x] = true
		}
		for x := v; x != w; x = rt.Parent[x] {
			onPath[x] = true
		}
		for c := 0; c < n; c++ {
			if c == rt.Root {
				continue
			}
			if rt.Covers(u, v, c) != onPath[c] {
				t.Fatalf("Covers(%d,%d,%d) != path membership", u, v, c)
			}
		}
	}
}

func TestKthAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	_, rt := randTreeGraph(rng, 50)
	for v := 0; v < 50; v++ {
		x := v
		for k := 0; k <= rt.Depth[v]+2; k++ {
			if got := rt.KthAncestor(v, k); got != x {
				t.Fatalf("KthAncestor(%d,%d)=%d want %d", v, k, got, x)
			}
			if rt.Parent[x] >= 0 {
				x = rt.Parent[x]
			}
		}
	}
}

func TestHeavyLightLightCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(300)
		_, rt := randTreeGraph(rng, n)
		light := rt.LightEdgesToRoot()
		lg := 0
		for 1<<lg < n {
			lg++
		}
		for v := 0; v < n; v++ {
			if len(light[v]) > lg+1 {
				t.Fatalf("n=%d vertex %d has %d light edges (> log n + 1)", n, v, len(light[v]))
			}
			// Validate each listed light edge is genuinely on the path.
			for _, c := range light[v] {
				if !rt.IsAncestor(c, v) {
					t.Fatalf("light edge child %d not an ancestor of %d", c, v)
				}
			}
		}
	}
}

func TestHeavyPathsAreChains(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, rt := randTreeGraph(rng, 200)
	_, isHeavy := rt.HeavyLight()
	// Each vertex has at most one heavy child edge.
	heavyKids := make([]int, rt.G.N)
	for v := 0; v < rt.G.N; v++ {
		if isHeavy[v] {
			heavyKids[rt.Parent[v]]++
		}
	}
	for v, k := range heavyKids {
		if k > 1 {
			t.Fatalf("vertex %d has %d heavy children", v, k)
		}
	}
}

func TestSubtreeSizesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		_, rt := randTreeGraph(rng, n)
		// Size[v] must equal 1 + sum of children sizes, and Size[root]==n.
		for v := 0; v < n; v++ {
			s := 1
			for _, c := range rt.Children[v] {
				s += rt.Size[c]
			}
			if s != rt.Size[v] {
				return false
			}
		}
		return rt.Size[rt.Root] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLen(t *testing.T) {
	g := graph.Grid(4, 4, graph.DefaultGenConfig(3))
	rt, err := BFSTree(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			w := rt.LCA(u, v)
			want := rt.Depth[u] + rt.Depth[v] - 2*rt.Depth[w]
			if got := rt.PathLen(u, v); got != want {
				t.Fatalf("PathLen(%d,%d)=%d want %d", u, v, got, want)
			}
		}
	}
}

func TestWeightAndHeight(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 20)
	rt, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Weight() != 30 {
		t.Fatalf("Weight = %d", rt.Weight())
	}
	if rt.Height() != 2 {
		t.Fatalf("Height = %d", rt.Height())
	}
}
