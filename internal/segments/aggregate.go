package segments

import (
	"fmt"

	"twoecss/internal/congest"
	"twoecss/internal/primitives"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

// Aggregator implements the two aggregate-function building blocks of
// Section 4.2 on top of a segment decomposition:
//
//   - PerVEdge (Claim 4.5): every virtual non-tree edge simultaneously
//     learns an aggregate of values held by the tree edges it covers.
//   - PerTreeEdge (Claim 4.6): every tree edge simultaneously learns an
//     aggregate of values held by the virtual edges that cover it
//     (combining short-, mid- and long-range contributions).
//
// Both run in O(D + sqrt n) rounds. The global movements (per-segment
// summaries and per-highway long-range combination, Claim 4.4) are simulated
// at message level on the BFS tree; the intra-segment scans are billed
// analytically as 3 x MaxDiameter rounds per call.
type Aggregator struct {
	Net *congest.Network
	// BFS is the communication tree over the network graph (height O(D)).
	BFS *tree.Rooted
	// D is the decomposition of the spanning tree being augmented.
	D *Decomposition
	// VG is the virtual graph whose edges participate in aggregation.
	VG *vgraph.VGraph

	coveredBy [][]int // per virtual edge: covered tree-edge children
	covering  [][]int // per tree-edge child: covering virtual edges
	vedgeSegs [][]int // per virtual edge: distinct segments its path touches

	// Scratch reused across aggregate calls (an Aggregator is not safe for
	// concurrent use, matching the one-Network-one-run engine contract):
	// per-vertex keyed inputs for the Claim 4.6 convergecast, per-vertex
	// item lists for the Claim 4.5 gather-broadcast, and the flat payload
	// backing for per-segment items.
	kv       []primitives.KeyedValues
	kvTouch  []int // vertices with non-empty kv this call
	perNode  [][]primitives.Item
	pnTouch  []int // vertices with non-empty perNode this call
	itemBuf  []congest.Word
	itemList []primitives.Item
}

// NewAggregator precomputes the cover structure. The precomputation mirrors
// the node-local knowledge establishd by Claims 4.3/4.4 (each vertex knows
// its segment paths and the skeleton); its round bill is part of the
// decomposition construction charge.
func NewAggregator(net *congest.Network, bfs *tree.Rooted, d *Decomposition, vg *vgraph.VGraph) *Aggregator {
	a := &Aggregator{Net: net, BFS: bfs, D: d, VG: vg}
	nv := len(vg.VEdges)
	a.coveredBy = make([][]int, nv)
	a.covering = make([][]int, vg.T.G.N)
	a.vedgeSegs = make([][]int, nv)
	for ve := 0; ve < nv; ve++ {
		path := vg.CoveredTreeEdges(ve)
		a.coveredBy[ve] = path
		segSeen := map[int]bool{}
		for _, c := range path {
			a.covering[c] = append(a.covering[c], ve)
			sid := d.SegOfEdge[c]
			if !segSeen[sid] {
				segSeen[sid] = true
				a.vedgeSegs[ve] = append(a.vedgeSegs[ve], sid)
			}
		}
	}
	return a
}

// CoveredBy returns the tree-edge children covered by virtual edge ve.
func (a *Aggregator) CoveredBy(ve int) []int { return a.coveredBy[ve] }

// Covering returns the virtual edges covering tree edge child c.
func (a *Aggregator) Covering(c int) []int { return a.covering[c] }

// chargeIntraSegment bills the local scans of one aggregate call.
func (a *Aggregator) chargeIntraSegment(what string) error {
	return a.Net.Charge(int64(3*a.D.MaxDiameter+3), what)
}

// itemsInto resets the per-segment item scratch and returns an empty item
// list whose entries may be filled via appendItem.
func (a *Aggregator) itemsInto() {
	a.itemBuf = a.itemBuf[:0]
	a.itemList = a.itemList[:0]
}

// appendItem appends a two-word item backed by the reused flat buffer. The
// buffer is pre-grown so appends never relocate live item payloads.
func (a *Aggregator) appendItem(k, v congest.Word) {
	a.itemBuf = append(a.itemBuf, k, v)
	n := len(a.itemBuf)
	a.itemList = append(a.itemList, primitives.Item(a.itemBuf[n-2:n:n]))
}

// PerVEdge implements Claim 4.5: result[ve] = fold(op, id, value(c) for all
// covered tree-edge children c). op must be commutative and associative.
func (a *Aggregator) PerVEdge(value func(c int) congest.Word, op primitives.Combine, id congest.Word) ([]congest.Word, error) {
	if err := a.chargeIntraSegment("Claim 4.5 intra-segment scans"); err != nil {
		return nil, err
	}
	// Claim 4.4 global step: every vertex learns the per-segment highway
	// aggregate m_S; simulated as a gather-broadcast of one item per
	// segment, originated at the segment descendant.
	if a.perNode == nil {
		a.perNode = make([][]primitives.Item, a.BFS.G.N)
	}
	for _, v := range a.pnTouch {
		a.perNode[v] = a.perNode[v][:0]
	}
	a.pnTouch = a.pnTouch[:0]
	a.itemsInto()
	if cap(a.itemBuf) < 2*len(a.D.Segs) {
		a.itemBuf = make([]congest.Word, 0, 2*len(a.D.Segs))
	}
	for _, seg := range a.D.Segs {
		m := id
		for i := 1; i < len(seg.Highway); i++ {
			m = op(m, value(seg.Highway[i]))
		}
		if len(a.perNode[seg.Desc]) == 0 {
			a.pnTouch = append(a.pnTouch, seg.Desc)
		}
		a.appendItem(congest.Word(seg.ID), m)
		a.perNode[seg.Desc] = append(a.perNode[seg.Desc], a.itemList[len(a.itemList)-1])
	}
	if err := primitives.GatherBroadcastAll(a.Net, a.BFS, a.perNode); err != nil {
		return nil, fmt.Errorf("segments: claim 4.5 global step: %w", err)
	}
	out := make([]congest.Word, len(a.VG.VEdges))
	for ve := range out {
		acc := id
		for _, c := range a.coveredBy[ve] {
			acc = op(acc, value(c))
		}
		out[ve] = acc
	}
	return out, nil
}

// PerTreeEdge implements Claim 4.6: result[c] = fold(op, id, w(ve) for all
// virtual edges ve covering tree edge c with contribute(ve) = (w(ve), true)).
// Virtual edges with contribute(...) = (_, false) do not participate.
func (a *Aggregator) PerTreeEdge(contribute func(ve int) (congest.Word, bool), op primitives.Combine, id congest.Word) ([]congest.Word, error) {
	if err := a.chargeIntraSegment("Claim 4.6 intra-segment scans"); err != nil {
		return nil, err
	}
	// Global step: mid/long-range contributions are combined per segment
	// over the BFS tree (Section 4.2.3); simulated as an ordered keyed
	// convergecast followed by a broadcast of the per-segment table.
	// Per-vertex inputs are flat (key, value) lists reused across calls;
	// segment-key lists per simulating vertex are short, so the insert
	// scan is cheaper than the per-vertex maps it replaces.
	if a.kv == nil {
		a.kv = make([]primitives.KeyedValues, a.BFS.G.N)
	}
	for _, v := range a.kvTouch {
		a.kv[v].Keys = a.kv[v].Keys[:0]
		a.kv[v].Vals = a.kv[v].Vals[:0]
	}
	a.kvTouch = a.kvTouch[:0]
	for ve := range a.VG.VEdges {
		w, ok := contribute(ve)
		if !ok {
			continue
		}
		dec := a.VG.VEdges[ve].Dec // simulating vertex
		kv := &a.kv[dec]
		if len(kv.Keys) == 0 {
			a.kvTouch = append(a.kvTouch, dec)
		}
		for _, sid := range a.vedgeSegs[ve] {
			k := congest.Word(sid)
			found := false
			for i, have := range kv.Keys {
				if have == k {
					kv.Vals[i] = op(kv.Vals[i], w)
					found = true
					break
				}
			}
			if !found {
				kv.Keys = append(kv.Keys, k)
				kv.Vals = append(kv.Vals, w)
			}
		}
	}
	table, err := primitives.KeyedSumOrdered(a.Net, a.BFS, a.kv, op)
	if err != nil {
		return nil, fmt.Errorf("segments: claim 4.6 convergecast: %w", err)
	}
	a.itemsInto()
	if cap(a.itemBuf) < 2*len(a.D.Segs) {
		a.itemBuf = make([]congest.Word, 0, 2*len(a.D.Segs))
	}
	for _, seg := range a.D.Segs {
		if val, ok := table[congest.Word(seg.ID)]; ok {
			a.appendItem(congest.Word(seg.ID), val)
		}
	}
	if err := primitives.BroadcastAll(a.Net, a.BFS, a.itemList); err != nil {
		return nil, fmt.Errorf("segments: claim 4.6 broadcast: %w", err)
	}

	out := make([]congest.Word, a.VG.T.G.N)
	for c := range out {
		acc := id
		for _, ve := range a.covering[c] {
			if w, ok := contribute(ve); ok {
				acc = op(acc, w)
			}
		}
		out[c] = acc
	}
	return out, nil
}
