package segments

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/primitives"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

func randRooted(rng *rand.Rand, n, extra int) (*graph.Graph, *tree.Rooted) {
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 30, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	rt, err := tree.BFSTree(g, rng.Intn(n))
	if err != nil {
		panic(err)
	}
	return g, rt
}

func TestBuildValidateFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", pathGraph(100)},
		{"star", starGraph(100)},
		{"grid", graph.Grid(10, 13, graph.DefaultGenConfig(3))},
		{"caterpillar", graph.Caterpillar(20, 4, graph.DefaultGenConfig(4))},
		{"binarytree", graph.TreeLeafCycle(6, graph.DefaultGenConfig(5))},
		{"tiny", pathGraph(2)},
		{"single", graph.New(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := tree.BFSTree(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Build(rt)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
	_ = rng
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	return g
}

func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1)
	}
	return g
}

func TestBuildValidateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		_, rt := randRooted(rng, maxInt(n, 1), 0)
		d, err := Build(rt)
		if err != nil {
			t.Fatalf("trial %d n=%d: %v", trial, n, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d n=%d: %v", trial, n, err)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSegmentCountScaling(t *testing.T) {
	// On a path of n vertices the decomposition must produce Theta(sqrt n)
	// segments.
	for _, n := range []int{64, 256, 1024} {
		rt, err := tree.BFSTree(pathGraph(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Build(rt)
		if err != nil {
			t.Fatal(err)
		}
		s := int(math.Ceil(math.Sqrt(float64(n))))
		if len(d.Segs) < s/2 || len(d.Segs) > 2*s+2 {
			t.Fatalf("n=%d: %d segments, want about %d", n, len(d.Segs), s)
		}
	}
}

func TestSkeletonParentAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, rt := randRooted(rng, 200, 0)
	d, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Segs {
		steps := 0
		for p := d.SkeletonParent[i]; p >= 0; p = d.SkeletonParent[p] {
			steps++
			if steps > len(d.Segs) {
				t.Fatalf("skeleton parent cycle at segment %d", i)
			}
		}
	}
	// Parent's Desc must equal child's Root.
	for i := range d.Segs {
		p := d.SkeletonParent[i]
		if p < 0 {
			continue
		}
		if d.Segs[p].Desc != d.Segs[i].Root && !contains(d.Segs[p].Highway, d.Segs[i].Root) {
			t.Fatalf("segment %d root %d not on parent %d highway", i, d.Segs[i].Root, p)
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func buildAggregator(t *testing.T, seed int64, n, extra int) (*Aggregator, *vgraph.VGraph, *tree.Rooted) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, rt := randRooted(rng, n, extra)
	vg, err := vgraph.BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewAggregator(net, bfs, d, vg), vg, rt
}

func TestPerVEdgeSum(t *testing.T) {
	a, vg, rt := buildAggregator(t, 11, 80, 100)
	value := func(c int) congest.Word { return congest.Word(2*c + 1) }
	sum := func(x, y congest.Word) congest.Word { return x + y }
	got, err := a.PerVEdge(value, sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ve := range vg.VEdges {
		var want congest.Word
		for c := 0; c < rt.G.N; c++ {
			if c != rt.Root && vg.Covers(ve, c) {
				want += value(c)
			}
		}
		if got[ve] != want {
			t.Fatalf("PerVEdge[%d] = %d, want %d", ve, got[ve], want)
		}
	}
	if a.Net.Stats().ChargedRounds == 0 || a.Net.Stats().SimulatedRounds == 0 {
		t.Fatal("aggregate call must bill both charged and simulated rounds")
	}
}

func TestPerTreeEdgeMin(t *testing.T) {
	a, vg, rt := buildAggregator(t, 12, 70, 90)
	const inf = int64(1) << 60
	contribute := func(ve int) (congest.Word, bool) {
		if ve%3 == 0 {
			return 0, false // a third of the edges sit out
		}
		return congest.Word(vg.VEdges[ve].W), true
	}
	min := func(x, y congest.Word) congest.Word {
		if x < y {
			return x
		}
		return y
	}
	got, err := a.PerTreeEdge(contribute, min, inf)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < rt.G.N; c++ {
		if c == rt.Root {
			continue
		}
		want := congest.Word(inf)
		for ve := range vg.VEdges {
			if w, ok := contribute(ve); ok && vg.Covers(ve, c) && w < want {
				want = w
			}
		}
		if got[c] != want {
			t.Fatalf("PerTreeEdge[%d] = %d, want %d", c, got[c], want)
		}
	}
}

func TestAggregatorIndexesMatchVGraph(t *testing.T) {
	a, vg, rt := buildAggregator(t, 13, 50, 60)
	idx := vg.CoverIndex()
	for c := 0; c < rt.G.N; c++ {
		if len(a.Covering(c)) != len(idx[c]) {
			t.Fatalf("covering(%d): %d vs %d", c, len(a.Covering(c)), len(idx[c]))
		}
	}
	for ve := range vg.VEdges {
		if len(a.CoveredBy(ve)) == 0 {
			t.Fatalf("vedge %d covers nothing", ve)
		}
	}
}

func TestDecompositionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		_, rt := randRooted(rng, n, 0)
		d, err := Build(rt)
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
