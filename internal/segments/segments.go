// Package segments implements the decomposition of the spanning tree into
// O(sqrt n) edge-disjoint segments of diameter O(sqrt n) used by the paper
// (Section 4.2.1, following Ghaffari–Parter and Dory): each segment S has a
// root r_S that is an ancestor of all its vertices, a unique descendant d_S,
// and a highway (the r_S–d_S path); r_S and d_S are the only vertices shared
// with other segments; the skeleton tree on segment endpoints captures the
// global structure.
//
// On top of the decomposition the package provides the aggregate-function
// machinery of Claims 4.5 and 4.6: every virtual non-tree edge can learn an
// aggregate of the tree edges it covers, and every tree edge an aggregate of
// the virtual edges covering it, in O(D + sqrt n) rounds. The global data
// movements (per-segment summaries over a BFS tree, Claim 4.4) are simulated
// at message level; the intra-segment scans are billed analytically at
// 3 x (maximum segment diameter) per call, with the diameter measured from
// the actual decomposition (see DESIGN.md, fidelity table).
package segments

import (
	"fmt"
	"math"
	"slices"

	"twoecss/internal/tree"
)

// Segment is one piece of the decomposition.
type Segment struct {
	ID int
	// Root (r_S) is an ancestor of every vertex in the segment.
	Root int
	// Desc (d_S) is the unique descendant: the bottom endpoint of the
	// highway. Only Root and Desc may appear in other segments.
	Desc int
	// Highway is the tree path from Root down to Desc (both inclusive).
	Highway []int
	// Members are all vertices of the segment (Root and Desc included).
	Members []int
}

// Decomposition is the full segment decomposition of a rooted tree.
type Decomposition struct {
	T    *tree.Rooted
	S    int // size parameter, ceil(sqrt n)
	Segs []Segment
	// SegOfEdge[v] is the segment owning tree edge {v,parent(v)} (entry of
	// the tree root is -1). Edges are partitioned among segments.
	SegOfEdge []int
	// HomeSeg[v] is the segment owning v's parent edge; for the tree root
	// it is the first segment rooted at it.
	HomeSeg []int
	// IsHighwayEdge[v] reports whether tree edge v lies on its segment's
	// highway.
	IsHighwayEdge []bool
	// SkeletonParent[s] is the parent segment in the skeleton tree (-1 for
	// segments rooted at the tree root).
	SkeletonParent []int
	// MaxDiameter is the maximum over segments of the intra-segment tree
	// distance bound actually realized (hop diameter of the segment's
	// tree), used for analytic round bills.
	MaxDiameter int
}

// Build computes the decomposition: heavy vertices (subtree size >= s) form
// a connected top tree; maximal heavy chains between branching/leaf "break"
// vertices are chopped into highway pieces of at most s edges; every light
// subtree attaches to the segment of its heavy parent.
func Build(t *tree.Rooted) (*Decomposition, error) {
	n := t.G.N
	if n == 0 {
		return nil, fmt.Errorf("segments: empty tree")
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))
	d := &Decomposition{
		T: t, S: s,
		SegOfEdge:     make([]int, n),
		HomeSeg:       make([]int, n),
		IsHighwayEdge: make([]bool, n),
	}
	for v := range d.SegOfEdge {
		d.SegOfEdge[v] = -1
		d.HomeSeg[v] = -1
	}
	if n == 1 {
		d.Segs = []Segment{{ID: 0, Root: t.Root, Desc: t.Root, Highway: []int{t.Root}, Members: []int{t.Root}}}
		d.SkeletonParent = []int{-1}
		d.HomeSeg[t.Root] = 0
		return d, nil
	}

	heavy := make([]bool, n)
	for v := 0; v < n; v++ {
		heavy[v] = t.Size[v] >= s
	}
	// Break vertices: the root, heavy vertices with != 1 heavy child.
	isBreak := make([]bool, n)
	heavyKids := make([][]int, n)
	for v := 0; v < n; v++ {
		if !heavy[v] {
			continue
		}
		for _, c := range t.Children[v] {
			if heavy[c] {
				heavyKids[v] = append(heavyKids[v], c)
			}
		}
		if v == t.Root || len(heavyKids[v]) != 1 {
			isBreak[v] = true
		}
	}

	// Maximal heavy chains: from each non-root break vertex b climb to the
	// first break vertex above. Chains are vertex-disjoint except at their
	// endpoints; chop each into pieces of at most s edges, top down.
	addPiece := func(path []int) int {
		// path is listed top (Root) first.
		id := len(d.Segs)
		d.Segs = append(d.Segs, Segment{
			ID:      id,
			Root:    path[0],
			Desc:    path[len(path)-1],
			Highway: append([]int(nil), path...),
		})
		for i := 1; i < len(path); i++ {
			d.SegOfEdge[path[i]] = id
			d.IsHighwayEdge[path[i]] = true
		}
		return id
	}
	for b := 0; b < n; b++ {
		if !isBreak[b] || b == t.Root {
			continue
		}
		chain := []int{b}
		for v := t.Parent[b]; ; v = t.Parent[v] {
			chain = append(chain, v)
			if isBreak[v] {
				break
			}
		}
		// chain is bottom-up; reverse to top-down.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		for lo := 0; lo < len(chain)-1; lo += s {
			hi := lo + s
			if hi > len(chain)-1 {
				hi = len(chain) - 1
			}
			addPiece(chain[lo : hi+1])
		}
	}
	if len(d.Segs) == 0 {
		// No non-root break vertices: the heavy tree is only the root
		// (every child subtree is light). Use a trivial piece at the root.
		addPiece([]int{t.Root})
	}

	// Attachment segment for light subtrees hanging off heavy vertex p:
	// prefer the piece owning p's parent edge (p = interior or Desc);
	// for the tree root use the first piece rooted at it.
	pieceAbove := func(p int) int {
		if p != t.Root && d.SegOfEdge[p] >= 0 && d.IsHighwayEdge[p] {
			return d.SegOfEdge[p]
		}
		for _, seg := range d.Segs {
			if seg.Root == p {
				return seg.ID
			}
		}
		return -1
	}
	// Assign light subtrees by preorder sweep: the first light vertex on a
	// root path fixes the segment for its whole subtree.
	for _, v := range t.Order {
		if v == t.Root {
			continue
		}
		if d.SegOfEdge[v] >= 0 {
			continue // highway edge, already owned
		}
		p := t.Parent[v]
		if heavy[p] && !heavy[v] {
			sid := pieceAbove(p)
			if sid < 0 {
				return nil, fmt.Errorf("segments: no attachment piece for light subtree at %d", v)
			}
			d.SegOfEdge[v] = sid
		} else {
			// Interior of a light subtree: inherit.
			d.SegOfEdge[v] = d.SegOfEdge[p]
		}
		if d.SegOfEdge[v] < 0 {
			return nil, fmt.Errorf("segments: edge %d unassigned", v)
		}
	}

	// Members, home segments, skeleton.
	memberSet := make([]map[int]bool, len(d.Segs))
	for i := range memberSet {
		memberSet[i] = map[int]bool{}
		for _, h := range d.Segs[i].Highway {
			memberSet[i][h] = true
		}
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			d.HomeSeg[v] = pieceAbove(t.Root)
			continue
		}
		sid := d.SegOfEdge[v]
		d.HomeSeg[v] = sid
		memberSet[sid][v] = true
		memberSet[sid][t.Parent[v]] = true
	}
	for i := range d.Segs {
		ms := make([]int, 0, len(memberSet[i]))
		for v := range memberSet[i] {
			ms = append(ms, v)
		}
		slices.Sort(ms)
		d.Segs[i].Members = ms
	}
	d.SkeletonParent = make([]int, len(d.Segs))
	for i := range d.Segs {
		r := d.Segs[i].Root
		if r == t.Root {
			d.SkeletonParent[i] = -1
		} else {
			d.SkeletonParent[i] = d.SegOfEdge[r] // r's parent edge is heavy
		}
	}
	d.MaxDiameter = d.computeMaxDiameter()
	return d, nil
}

// computeMaxDiameter measures the realized hop diameter of each segment's
// tree (highway length plus twice the deepest light subtree).
func (d *Decomposition) computeMaxDiameter() int {
	t := d.T
	// depthBelowHighway[v]: for vertices in light subtrees, depth below the
	// highway attachment point.
	maxDiam := 0
	deepest := make(map[int]int, len(d.Segs)) // seg -> deepest light depth
	depth := make([]int, t.G.N)
	for _, v := range t.Order {
		if v == t.Root {
			continue
		}
		sid := d.SegOfEdge[v]
		if d.IsHighwayEdge[v] {
			depth[v] = 0
			continue
		}
		p := t.Parent[v]
		if d.IsHighwayEdge[p] || p == d.Segs[sid].Root || anyHighway(d, sid, p) {
			depth[v] = 1
		} else {
			depth[v] = depth[p] + 1
		}
		if depth[v] > deepest[sid] {
			deepest[sid] = depth[v]
		}
	}
	for i := range d.Segs {
		diam := len(d.Segs[i].Highway) - 1 + 2*deepest[i]
		if diam > maxDiam {
			maxDiam = diam
		}
	}
	return maxDiam
}

func anyHighway(d *Decomposition, sid, v int) bool {
	for _, h := range d.Segs[sid].Highway {
		if h == v {
			return true
		}
	}
	return false
}

// Validate checks the structural guarantees of Section 4.2.1: edges are
// partitioned, each segment's root is an ancestor of all members, only
// Root/Desc are shared across segments, the segment count is O(sqrt n) and
// every segment diameter is O(sqrt n).
func (d *Decomposition) Validate() error {
	t := d.T
	n := t.G.N
	if n <= 1 {
		return nil
	}
	owned := 0
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		sid := d.SegOfEdge[v]
		if sid < 0 || sid >= len(d.Segs) {
			return fmt.Errorf("segments: edge %d unowned", v)
		}
		owned++
	}
	if owned != n-1 {
		return fmt.Errorf("segments: %d edges owned, want %d", owned, n-1)
	}
	// Count segment occurrences of each vertex.
	occ := make(map[int][]int, n)
	for _, seg := range d.Segs {
		for _, v := range seg.Members {
			occ[v] = append(occ[v], seg.ID)
		}
	}
	for v, segs := range occ {
		if len(segs) <= 1 {
			continue
		}
		for _, sid := range segs {
			if d.Segs[sid].Root != v && d.Segs[sid].Desc != v {
				return fmt.Errorf("segments: vertex %d shared by segment %d but is neither its root nor desc", v, sid)
			}
		}
	}
	for _, seg := range d.Segs {
		for _, v := range seg.Members {
			if !t.IsAncestor(seg.Root, v) {
				return fmt.Errorf("segments: root %d of segment %d not ancestor of member %d", seg.Root, seg.ID, v)
			}
		}
		if !t.IsAncestor(seg.Root, seg.Desc) {
			return fmt.Errorf("segments: desc %d not descendant of root %d", seg.Desc, seg.Root)
		}
		if len(seg.Highway)-1 > d.S {
			return fmt.Errorf("segments: highway of %d has %d edges > s=%d", seg.ID, len(seg.Highway)-1, d.S)
		}
	}
	if len(d.Segs) > 5*d.S+5 {
		return fmt.Errorf("segments: %d segments exceeds O(sqrt n) bound (s=%d)", len(d.Segs), d.S)
	}
	if d.MaxDiameter > 3*d.S+3 {
		return fmt.Errorf("segments: max diameter %d exceeds 3s+3 (s=%d)", d.MaxDiameter, d.S)
	}
	return nil
}
