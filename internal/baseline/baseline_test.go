package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twoecss/internal/graph"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

func TestExactPathTAPSimple(t *testing.T) {
	// Path of 5 vertices (4 edges); intervals: {0,2}:3, {2,4}:3, {0,4}:10,
	// {1,3}:1. Optimal: {0,2}+{2,4} = 6 < 10.
	w, picks, err := ExactPathTAP(5, []Interval{
		{0, 2, 3}, {2, 4, 3}, {0, 4, 10}, {1, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 || len(picks) != 2 {
		t.Fatalf("w=%d picks=%v", w, picks)
	}
}

func TestExactPathTAPInfeasible(t *testing.T) {
	if _, _, err := ExactPathTAP(5, []Interval{{0, 2, 1}}); err != ErrInfeasible {
		t.Fatalf("err = %v", err)
	}
}

func TestExactPathTAPMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(10)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(v-1, v, 1000) // heavy tree edges, never useful
		}
		var ivs []Interval
		g.MustAddEdge(0, n-1, 50)
		ivs = append(ivs, Interval{0, n - 1, 50})
		for j := 0; j < m; j++ {
			l, r := rng.Intn(n), rng.Intn(n)
			if l == r {
				continue
			}
			if l > r {
				l, r = r, l
			}
			w := int64(1 + rng.Intn(40))
			g.MustAddEdge(l, r, w)
			ivs = append(ivs, Interval{l, r, w})
		}
		rt, err := tree.NewFromEdgeSet(g, 0, seq(n-1))
		if err != nil {
			t.Fatal(err)
		}
		wantW, _, err := BruteForceTAP(rt, 20)
		if err != nil {
			t.Fatal(err)
		}
		gotW, _, err := ExactPathTAP(n, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if gotW != wantW {
			t.Fatalf("trial %d: path DP %d != brute %d", trial, gotW, wantW)
		}
	}
}

func seq(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

func randomTAPInstance(rng *rand.Rand, n, extra int) *tree.Rooted {
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 100, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, extra, cfg)
	if _, err := graph.Ensure2EC(g, cfg); err != nil {
		panic(err)
	}
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		panic(err)
	}
	return rt
}

func TestGreedyTAPValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		rt := randomTAPInstance(rng, 5+rng.Intn(10), rng.Intn(6))
		if len(rt.NonTreeEdgeIDs()) > 14 {
			continue
		}
		w, picks, err := GreedyTAP(rt)
		if err != nil {
			t.Fatal(err)
		}
		assertCovers(t, rt, picks)
		opt, _, err := BruteForceTAP(rt, 14)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy is an O(log n) approximation; on these tiny instances a
		// factor 8 is a very generous sanity envelope.
		if float64(w) > 8*float64(opt) {
			t.Fatalf("greedy %d way beyond OPT %d", w, opt)
		}
	}
}

func assertCovers(t *testing.T, rt *tree.Rooted, picks []int) {
	t.Helper()
	vg, err := vgraph.BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, id := range picks {
		for _, ve := range vg.VirtualOf(id) {
			in[ve] = true
		}
	}
	if !vg.FullyCovers(func(ve int) bool { return in[ve] }) {
		t.Fatal("augmentation does not cover the tree")
	}
}

func TestKhullerThurimella2Approx(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		rt := randomTAPInstance(rng, 5+rng.Intn(9), rng.Intn(6))
		if len(rt.NonTreeEdgeIDs()) > 14 {
			continue
		}
		w, picks, optVirt, err := KhullerThurimella(rt)
		if err != nil {
			t.Fatal(err)
		}
		assertCovers(t, rt, picks)
		opt, _, err := BruteForceTAP(rt, 14)
		if err != nil {
			t.Fatal(err)
		}
		if float64(w) > 2*float64(opt)+1e-9 {
			t.Fatalf("trial %d: KT %d > 2*OPT %d", trial, w, opt)
		}
		// OPT on G' is at most 2*OPT on G and at least OPT on G... and at
		// least the projected weight cannot be below OPT either.
		if optVirt > 2*opt || w < opt {
			t.Fatalf("trial %d: optVirt=%d w=%d opt=%d inconsistent", trial, optVirt, w, opt)
		}
	}
}

// The arborescence optimum on G' must equal the brute-force optimum over
// virtual edge subsets (where each virtual edge is priced separately).
func TestArborescenceExactOnVirtual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		rt := randomTAPInstance(rng, 4+rng.Intn(7), rng.Intn(5))
		vg, err := vgraph.BuildFromGraph(rt)
		if err != nil {
			t.Fatal(err)
		}
		nv := len(vg.VEdges)
		if nv > 16 {
			continue
		}
		_, _, optVirt, err := KhullerThurimella(rt)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 60
		for mask := 0; mask < 1<<nv; mask++ {
			var w int64
			for j := 0; j < nv; j++ {
				if mask>>j&1 == 1 {
					w += int64(vg.VEdges[j].W)
				}
			}
			if w >= best {
				continue
			}
			if vg.FullyCovers(func(ve int) bool { return mask>>ve&1 == 1 }) {
				best = w
			}
		}
		if optVirt != best {
			t.Fatalf("trial %d: arborescence %d != brute virtual OPT %d", trial, optVirt, best)
		}
	}
}

func TestBruteForce2ECSS(t *testing.T) {
	// A 4-cycle plus an expensive diagonal: OPT is the cycle.
	g := graph.New(4)
	for v := 0; v < 4; v++ {
		g.MustAddEdge(v, (v+1)%4, 1)
	}
	g.MustAddEdge(0, 2, 100)
	w, picks, err := BruteForce2ECSS(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 || len(picks) != 4 {
		t.Fatalf("w=%d picks=%v", w, picks)
	}
	if _, _, err := BruteForce2ECSS(graph.Grid(6, 6, graph.DefaultGenConfig(1)), 16); err == nil {
		t.Fatal("oversized brute force accepted")
	}
}

func TestBruteForceTAPLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rt := randomTAPInstance(rng, 30, 40)
	if _, _, err := BruteForceTAP(rt, 5); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestEdmondsQuick(t *testing.T) {
	// Random small digraph: compare against exhaustive search over
	// functions parent: V\{r} -> arcs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		var arcs []arc
		for i := 0; i < n*n; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			arcs = append(arcs, arc{from: from, to: to, w: int64(1 + rng.Intn(20))})
		}
		got, chosen, err := minArborescence(n, 0, arcs)
		want, feasible := bruteArborescence(n, 0, arcs)
		if !feasible {
			return err != nil
		}
		if err != nil || got != want {
			return false
		}
		// chosen must form a valid arborescence of weight got.
		var sum int64
		inDeg := make([]int, n)
		for _, ai := range chosen {
			sum += arcs[ai].w
			inDeg[arcs[ai].to]++
		}
		if sum != got {
			return false
		}
		for v := 1; v < n; v++ {
			if inDeg[v] != 1 {
				return false
			}
		}
		// Reachability from root via chosen arcs.
		adj := make([][]int, n)
		for _, ai := range chosen {
			adj[arcs[ai].from] = append(adj[arcs[ai].from], arcs[ai].to)
		}
		seen := make([]bool, n)
		stack := []int{0}
		seen[0] = true
		cnt := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					cnt++
					stack = append(stack, u)
				}
			}
		}
		return cnt == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// bruteArborescence enumerates all parent-arc assignments.
func bruteArborescence(n, root int, arcs []arc) (int64, bool) {
	incoming := make([][]int, n)
	for i, a := range arcs {
		if a.to != root {
			incoming[a.to] = append(incoming[a.to], i)
		}
	}
	for v := 0; v < n; v++ {
		if v != root && len(incoming[v]) == 0 {
			return 0, false
		}
	}
	best := int64(1) << 60
	feasible := false
	var rec func(v int, picked []int, sum int64)
	rec = func(v int, picked []int, sum int64) {
		if sum >= best {
			return
		}
		if v == n {
			// Check reachability.
			adj := make([][]int, n)
			for _, ai := range picked {
				adj[arcs[ai].from] = append(adj[arcs[ai].from], arcs[ai].to)
			}
			seen := make([]bool, n)
			stack := []int{root}
			seen[root] = true
			cnt := 1
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range adj[x] {
					if !seen[u] {
						seen[u] = true
						cnt++
						stack = append(stack, u)
					}
				}
			}
			if cnt == n {
				best = sum
				feasible = true
			}
			return
		}
		if v == root {
			rec(v+1, picked, sum)
			return
		}
		for _, ai := range incoming[v] {
			rec(v+1, append(picked, ai), sum+arcs[ai].w)
		}
	}
	rec(0, nil, 0)
	return best, feasible
}
