package baseline

import (
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

// arc is one directed edge of an arborescence instance.
type arc struct {
	from, to int
	w        int64
}

// minArborescence computes the minimum-weight out-arborescence rooted at
// root via the recursive Chu-Liu/Edmonds algorithm. It returns the total
// weight and the indices (into arcs) of the chosen arcs, one incoming arc
// per non-root vertex. Returns ErrInfeasible if some vertex is unreachable.
func minArborescence(n, root int, arcs []arc) (int64, []int, error) {
	idx := make([]int, len(arcs))
	for i := range idx {
		idx[i] = i
	}
	return edmonds(n, root, arcs, idx)
}

// edmonds solves one contraction level; ids maps the local arcs back to the
// caller's arc indices (top level: identity).
func edmonds(n, root int, arcs []arc, ids []int) (int64, []int, error) {
	// Minimum incoming arc per vertex, deterministic tie-break by index.
	minIn := make([]int, n)
	for v := range minIn {
		minIn[v] = -1
	}
	for i, a := range arcs {
		if a.to == root || a.from == a.to {
			continue
		}
		if minIn[a.to] < 0 || a.w < arcs[minIn[a.to]].w ||
			(a.w == arcs[minIn[a.to]].w && ids[i] < ids[minIn[a.to]]) {
			minIn[a.to] = i
		}
	}
	for v := 0; v < n; v++ {
		if v != root && minIn[v] < 0 {
			return 0, nil, ErrInfeasible
		}
	}
	// Detect cycles among the chosen arcs.
	comp := make([]int, n)
	for v := range comp {
		comp[v] = -1
	}
	nComp := 0
	state := make([]int, n) // 0 new, 1 on stack, 2 done
	for v := 0; v < n; v++ {
		if state[v] != 0 {
			continue
		}
		var stack []int
		u := v
		for u != root && state[u] == 0 {
			state[u] = 1
			stack = append(stack, u)
			u = arcs[minIn[u]].from
		}
		if u != root && state[u] == 1 {
			// New cycle through u.
			cid := nComp
			nComp++
			x := u
			for {
				comp[x] = cid
				x = arcs[minIn[x]].from
				if x == u {
					break
				}
			}
		}
		for _, x := range stack {
			state[x] = 2
		}
	}
	if nComp == 0 {
		// Acyclic: the chosen arcs form the arborescence.
		var total int64
		chosen := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != root {
				total += arcs[minIn[v]].w
				chosen = append(chosen, minIn[v])
			}
		}
		return total, chosen, nil
	}
	// Singleton supernodes for non-cycle vertices.
	for v := 0; v < n; v++ {
		if comp[v] < 0 {
			comp[v] = nComp
			nComp++
		}
	}
	inCycle := make([]bool, n)
	compSize := make([]int, nComp)
	for v := 0; v < n; v++ {
		compSize[comp[v]]++
	}
	var cycleSum int64
	for v := 0; v < n; v++ {
		if v != root && compSize[comp[v]] > 1 {
			inCycle[v] = true
			cycleSum += arcs[minIn[v]].w
		}
	}
	// Contracted instance: each crossing arc is reweighted by the cycle
	// arc it would displace; head bookkeeping drives the expansion.
	var subArcs []arc
	var subIDs []int    // caller-level ids for recursion transparency
	var parent []int    // local arc index at THIS level
	var localHead []int // head vertex at this level
	for i, a := range arcs {
		cf, ct := comp[a.from], comp[a.to]
		if cf == ct {
			continue
		}
		w := a.w
		if inCycle[a.to] {
			w -= arcs[minIn[a.to]].w
		}
		subArcs = append(subArcs, arc{from: cf, to: ct, w: w})
		subIDs = append(subIDs, ids[i])
		parent = append(parent, i)
		localHead = append(localHead, a.to)
	}
	subTotal, subChosen, err := edmonds(nComp, comp[root], subArcs, subIDs)
	if err != nil {
		return 0, nil, err
	}
	// Expansion: chosen external arcs stay; each entered cycle keeps all
	// its arcs except the one pointing at the entry head.
	chosen := make([]int, 0, n-1)
	entered := make([]int, nComp) // entry head vertex per supernode (-1 none)
	for c := range entered {
		entered[c] = -1
	}
	for _, si := range subChosen {
		chosen = append(chosen, parent[si])
		entered[comp[localHead[si]]] = localHead[si]
	}
	for v := 0; v < n; v++ {
		if !inCycle[v] {
			continue
		}
		if entered[comp[v]] == v {
			continue // displaced by the external entry arc
		}
		chosen = append(chosen, minIn[v])
	}
	return cycleSum + subTotal, chosen, nil
}

// KhullerThurimella computes a 2-approximation for weighted TAP on t using
// the minimum arborescence reduction on the virtual graph G' (Khuller &
// Thurimella 1993): tree edges become free child-to-parent arcs, every
// virtual edge (anc,dec) becomes an anc-to-dec arc of its weight; the
// minimum out-arborescence rooted at the tree root selects a virtual edge
// cover of weight exactly OPT_TAP(G'), whose projection to G weighs at most
// 2*OPT_TAP(G).
//
// It returns (projected augmentation weight in G, chosen original edge ids,
// exact OPT of TAP on G').
func KhullerThurimella(t *tree.Rooted) (int64, []int, int64, error) {
	vg, err := vgraph.BuildFromGraph(t)
	if err != nil {
		return 0, nil, 0, err
	}
	arcs := make([]arc, 0, t.G.N-1+len(vg.VEdges))
	veOf := make([]int, 0, cap(arcs)) // virtual edge per arc (-1 = tree arc)
	for v := 0; v < t.G.N; v++ {
		if t.Parent[v] >= 0 {
			arcs = append(arcs, arc{from: v, to: t.Parent[v], w: 0})
			veOf = append(veOf, -1)
		}
	}
	for ve, e := range vg.VEdges {
		arcs = append(arcs, arc{from: e.Anc, to: e.Dec, w: int64(e.W)})
		veOf = append(veOf, ve)
	}
	optVirt, chosen, err := minArborescence(t.G.N, t.Root, arcs)
	if err != nil {
		return 0, nil, 0, err
	}
	var ves []int
	for _, ai := range chosen {
		if veOf[ai] >= 0 {
			ves = append(ves, veOf[ai])
		}
	}
	orig := vg.Project(ves)
	var w int64
	for _, id := range orig {
		w += int64(t.G.Edges[id].W)
	}
	return w, orig, optVirt, nil
}
