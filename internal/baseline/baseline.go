// Package baseline provides the comparison algorithms the paper positions
// itself against, plus exact references used to measure approximation
// ratios:
//
//   - ExactPathTAP: exact weighted TAP when the tree is a path (weighted
//     interval covering by dynamic programming) — instances with known OPT.
//   - BruteForceTAP / BruteForce2ECSS: exhaustive optima for small m.
//   - GreedyTAP: the classical sequential greedy set-cover algorithm, an
//     O(log n)-approximation (the quality class of Dory PODC'18).
//   - KhullerThurimella: the centralized 2-approximation for weighted TAP
//     via a minimum-weight arborescence on the virtual graph; its
//     arborescence value is the EXACT optimum of TAP on G', which also
//     certifies the primal-dual algorithm's G' ratio.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"twoecss/internal/graph"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

// ErrInfeasible reports that no augmentation covers every tree edge.
var ErrInfeasible = errors.New("baseline: tree augmentation infeasible")

// ErrTooLarge reports a brute-force request beyond the configured limit.
var ErrTooLarge = errors.New("baseline: instance too large for exhaustive search")

// Interval is one candidate interval for path TAP: it covers path edges
// L+1..R (vertex indices) at cost W.
type Interval struct {
	L, R int
	W    int64
}

// ExactPathTAP solves weighted TAP exactly when the tree is the path
// 0-1-...-(n-1): choose a minimum-weight set of intervals covering every
// path edge. Dynamic programming over covered prefixes, O(n*m).
func ExactPathTAP(n int, intervals []Interval) (int64, []int, error) {
	if n < 2 {
		return 0, nil, nil
	}
	const inf = math.MaxInt64 / 4
	// dist[p] = cheapest cost covering edges 1..p (p in 0..n-1), where
	// edge i connects vertices i-1,i.
	dist := make([]int64, n)
	choice := make([]int, n) // interval index achieving dist[p]
	from := make([]int, n)
	for p := 1; p < n; p++ {
		dist[p] = inf
		choice[p] = -1
	}
	for p := 0; p < n-1; p++ {
		if dist[p] >= inf {
			continue
		}
		for idx, iv := range intervals {
			if iv.L > p || iv.R <= p {
				continue
			}
			if c := dist[p] + iv.W; c < dist[iv.R] {
				dist[iv.R] = c
				choice[iv.R] = idx
				from[iv.R] = p
			}
		}
	}
	if dist[n-1] >= inf {
		return 0, nil, ErrInfeasible
	}
	var picks []int
	for p := n - 1; p > 0; p = from[p] {
		picks = append(picks, choice[p])
	}
	slices.Sort(picks)
	return dist[n-1], picks, nil
}

// BruteForceTAP finds the optimal augmentation of t by original non-tree
// edges, by exhaustive subset search. Refuses instances with more than
// limit non-tree edges.
func BruteForceTAP(t *tree.Rooted, limit int) (int64, []int, error) {
	vg, err := vgraph.BuildFromGraph(t)
	if err != nil {
		return 0, nil, err
	}
	nonTree := t.NonTreeEdgeIDs()
	m := len(nonTree)
	if m > limit {
		return 0, nil, fmt.Errorf("%w: %d non-tree edges > %d", ErrTooLarge, m, limit)
	}
	best := int64(math.MaxInt64)
	bestMask := -1
	for mask := 0; mask < 1<<m; mask++ {
		var w int64
		for j := 0; j < m; j++ {
			if mask>>j&1 == 1 {
				w += int64(t.G.Edges[nonTree[j]].W)
			}
		}
		if w >= best {
			continue
		}
		in := map[int]bool{}
		for j := 0; j < m; j++ {
			if mask>>j&1 == 1 {
				for _, ve := range vg.VirtualOf(nonTree[j]) {
					in[ve] = true
				}
			}
		}
		if vg.FullyCovers(func(ve int) bool { return in[ve] }) {
			best = w
			bestMask = mask
		}
	}
	if bestMask < 0 {
		return 0, nil, ErrInfeasible
	}
	var picks []int
	for j := 0; j < m; j++ {
		if bestMask>>j&1 == 1 {
			picks = append(picks, nonTree[j])
		}
	}
	return best, picks, nil
}

// BruteForce2ECSS finds the optimal 2-edge-connected spanning subgraph of g
// by exhaustive search over edge subsets. Refuses graphs with more than
// limit edges.
func BruteForce2ECSS(g *graph.Graph, limit int) (int64, []int, error) {
	m := g.M()
	if m > limit {
		return 0, nil, fmt.Errorf("%w: %d edges > %d", ErrTooLarge, m, limit)
	}
	best := int64(math.MaxInt64)
	bestMask := -1
	for mask := 0; mask < 1<<m; mask++ {
		var w int64
		for j := 0; j < m; j++ {
			if mask>>j&1 == 1 {
				w += int64(g.Edges[j].W)
			}
		}
		if w >= best {
			continue
		}
		keep := make([]int, 0, m)
		for j := 0; j < m; j++ {
			if mask>>j&1 == 1 {
				keep = append(keep, j)
			}
		}
		if len(keep) < g.N {
			continue // a 2EC spanning subgraph needs >= n edges
		}
		sub := g.Subgraph(keep)
		if sub.TwoEdgeConnected() {
			best = w
			bestMask = mask
		}
	}
	if bestMask < 0 {
		return 0, nil, ErrInfeasible
	}
	var picks []int
	for j := 0; j < m; j++ {
		if bestMask>>j&1 == 1 {
			picks = append(picks, j)
		}
	}
	return best, picks, nil
}

// GreedyTAP is the sequential greedy set-cover algorithm for weighted TAP
// on G: repeatedly add the non-tree edge maximizing newly-covered tree
// edges per unit weight, until all tree edges are covered. This is the
// O(log n)-approximation quality class that Theorem 1.1 improves on.
func GreedyTAP(t *tree.Rooted) (int64, []int, error) {
	n := t.G.N
	nonTree := t.NonTreeEdgeIDs()
	// coverSets[j] = tree-edge children covered by nonTree[j].
	coverSets := make([][]int, len(nonTree))
	for j, id := range nonTree {
		e := t.G.Edges[id]
		w := t.LCA(e.U, e.V)
		for x := e.U; x != w; x = t.Parent[x] {
			coverSets[j] = append(coverSets[j], x)
		}
		for x := e.V; x != w; x = t.Parent[x] {
			coverSets[j] = append(coverSets[j], x)
		}
	}
	covered := make([]bool, n)
	need := n - 1
	var picks []int
	var total int64
	for need > 0 {
		bestJ, bestGain := -1, 0.0
		for j, id := range nonTree {
			gain := 0
			for _, c := range coverSets[j] {
				if !covered[c] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			eff := float64(gain) / float64(t.G.Edges[id].W)
			if eff > bestGain || (eff == bestGain && bestJ >= 0 && id < nonTree[bestJ]) {
				bestGain = eff
				bestJ = j
			}
		}
		if bestJ < 0 {
			return 0, nil, ErrInfeasible
		}
		picks = append(picks, nonTree[bestJ])
		total += int64(t.G.Edges[nonTree[bestJ]].W)
		for _, c := range coverSets[bestJ] {
			if !covered[c] {
				covered[c] = true
				need--
			}
		}
	}
	slices.Sort(picks)
	return total, picks, nil
}
