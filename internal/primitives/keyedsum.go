package primitives

import (
	"fmt"
	"math"
	"sort"

	"twoecss/internal/congest"
	"twoecss/internal/tree"
)

// KeyedSumOrdered convergecasts per-key values to the root with exact-once
// combining, supporting non-idempotent operators (sum, xor, float-sum).
// Every participant streams its keys in increasing order; a vertex emits key
// k upward only once each child has either finished or progressed past k,
// so each subtree contributes to each key exactly once. This is the
// pipelined aggregate convergecast the paper invokes for per-highway
// aggregation (Section 4.2.3).
// Rounds: O(height + #keys).
func KeyedSumOrdered(net *congest.Network, t *tree.Rooted, perNode []map[congest.Word]congest.Word, op Combine) (map[congest.Word]congest.Word, error) {
	g := net.G
	if len(perNode) != g.N {
		return nil, fmt.Errorf("primitives: perNode length %d != n", len(perNode))
	}
	const doneTag = math.MaxInt64

	acc := make([]map[congest.Word]congest.Word, g.N)
	keys := make([][]congest.Word, g.N)           // own ∪ received keys, kept sorted
	progress := make([]map[int]congest.Word, g.N) // child vertex -> last key (doneTag when finished)
	childCount := make([]int, g.N)
	sentDone := make([]bool, g.N)

	for v := 0; v < g.N; v++ {
		acc[v] = make(map[congest.Word]congest.Word, len(perNode[v]))
		for k, val := range perNode[v] {
			acc[v][k] = val
			keys[v] = append(keys[v], k)
		}
		sort.Slice(keys[v], func(i, j int) bool { return keys[v][i] < keys[v][j] })
		childCount[v] = len(t.Children[v])
		progress[v] = make(map[int]congest.Word, childCount[v])
	}

	// childFloor returns the smallest progress over v's children
	// (doneTag if v has no children or all are done).
	childFloor := func(v int) congest.Word {
		if len(progress[v]) < childCount[v] {
			return math.MinInt64 // some child has not reported at all
		}
		floor := congest.Word(doneTag)
		for _, p := range progress[v] {
			if p < floor {
				floor = p
			}
		}
		return floor
	}

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			from := m.From
			k := m.Data[0]
			if k == doneTag {
				progress[v][from] = doneTag
				continue
			}
			val := m.Data[1]
			if cur, ok := acc[v][k]; ok {
				acc[v][k] = op(cur, val)
			} else {
				acc[v][k] = val
				// Insert in sorted position (arrivals are ordered per
				// child, but interleave across children).
				i := sort.Search(len(keys[v]), func(i int) bool { return keys[v][i] >= k })
				keys[v] = append(keys[v], 0)
				copy(keys[v][i+1:], keys[v][i:])
				keys[v][i] = k
			}
			progress[v][from] = k
		}
		if t.ParentEdge[v] < 0 || sentDone[v] {
			return nil, false
		}
		floor := childFloor(v)
		if len(keys[v]) > 0 {
			k := keys[v][0]
			if k <= floor {
				keys[v] = keys[v][1:]
				msg := congest.Msg{EdgeID: t.ParentEdge[v], From: v,
					Data: []congest.Word{k, acc[v][k]}}
				return []congest.Msg{msg}, true
			}
			return nil, true // wait for children to progress past k
		}
		if floor == doneTag {
			sentDone[v] = true
			msg := congest.Msg{EdgeID: t.ParentEdge[v], From: v,
				Data: []congest.Word{doneTag}}
			return []congest.Msg{msg}, false
		}
		return nil, true
	}
	total := 0
	for _, m := range perNode {
		total += len(m)
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, 4*total)); err != nil {
		return nil, err
	}
	// Drop keys already streamed away at the root? The root never streams;
	// acc[root] holds the full table.
	return acc[t.Root], nil
}
