package primitives

import (
	"fmt"
	"math"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/tree"
)

// KeyedValues is one vertex's input to KeyedSumOrdered: parallel key/value
// slices (not necessarily sorted). Keys must be unique per vertex and
// below math.MaxInt64, which is reserved as the done marker.
//
// KeyedSumOrdered CONSUMES the slices: it sorts, drains, and shifts them
// in place, so after the call their contents (at the original lengths)
// are unspecified. Callers that reuse backing arrays across calls must
// rebuild them from length zero each time (as segments.Aggregator does).
type KeyedValues struct {
	Keys, Vals []congest.Word
}

// sortByKey co-sorts kv.Vals with kv.Keys. The lists are short (a handful
// of segment keys per vertex), so a binary-insertion pass beats building a
// permutation; it is also stable, though keys are unique anyway.
func (kv *KeyedValues) sortByKey() {
	for i := 1; i < len(kv.Keys); i++ {
		k, v := kv.Keys[i], kv.Vals[i]
		j, _ := slices.BinarySearch(kv.Keys[:i], k)
		copy(kv.Keys[j+1:i+1], kv.Keys[j:i])
		copy(kv.Vals[j+1:i+1], kv.Vals[j:i])
		kv.Keys[j], kv.Vals[j] = k, v
	}
}

// KeyedSumOrdered convergecasts per-key values to the root with exact-once
// combining, supporting non-idempotent operators (sum, xor, float-sum).
// Every participant streams its keys in increasing order; a vertex emits key
// k upward only once each child has either finished or progressed past k,
// so each subtree contributes to each key exactly once. This is the
// pipelined aggregate convergecast the paper invokes for per-highway
// aggregation (Section 4.2.3).
// Rounds: O(height + #keys).
//
// Node state is flat: per-vertex sorted (key, value) parallel slices, one
// global progress array indexed by child vertex, and double-buffered
// two-word payloads, so a steady-state round allocates only when a key
// list grows.
func KeyedSumOrdered(net *congest.Network, t *tree.Rooted, perNode []KeyedValues, op Combine) (map[congest.Word]congest.Word, error) {
	g := net.G
	if len(perNode) != g.N {
		return nil, fmt.Errorf("primitives: perNode length %d != n", len(perNode))
	}
	const doneTag = math.MaxInt64
	const unreported = math.MinInt64

	keys := make([][]congest.Word, g.N) // pending keys, sorted ascending
	vals := make([][]congest.Word, g.N) // vals[v][i] pairs with keys[v][i]
	// progress[u] is the last key child u streamed to its parent
	// (unreported before u's first message, doneTag when u finished).
	progress := make([]congest.Word, g.N)
	sentDone := make([]bool, g.N)
	// payload[4v:4v+4] holds v's double-buffered two-word payload: a
	// receiver reads a payload in the round after it was filled, in which
	// round v may fill the other half (see DESIGN.md on payload recycling).
	payload := make([]congest.Word, 4*g.N)
	parity := make([]bool, g.N)

	for v := 0; v < g.N; v++ {
		kv := perNode[v]
		if len(kv.Keys) != len(kv.Vals) {
			return nil, fmt.Errorf("primitives: vertex %d has %d keys but %d values", v, len(kv.Keys), len(kv.Vals))
		}
		kv.sortByKey()
		keys[v] = kv.Keys
		vals[v] = kv.Vals
		progress[v] = unreported
	}

	// childFloor returns the smallest progress over v's children
	// (doneTag if v has no children or all are done; unreported if any
	// child has not reported at all).
	childFloor := func(v int) congest.Word {
		floor := congest.Word(doneTag)
		for _, c := range t.Children[v] {
			if progress[c] < floor {
				floor = progress[c]
			}
		}
		return floor
	}

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			from := m.From
			k := m.Data[0]
			if k == doneTag {
				progress[from] = doneTag
				continue
			}
			val := m.Data[1]
			// Insert in sorted position (arrivals are ordered per child,
			// but interleave across children), combining equal keys.
			i, found := slices.BinarySearch(keys[v], k)
			if found {
				vals[v][i] = op(vals[v][i], val)
			} else {
				keys[v] = append(keys[v], 0)
				vals[v] = append(vals[v], 0)
				copy(keys[v][i+1:], keys[v][i:])
				copy(vals[v][i+1:], vals[v][i:])
				keys[v][i], vals[v][i] = k, val
			}
			progress[from] = k
		}
		if t.ParentEdge[v] < 0 || sentDone[v] {
			return nil, false
		}
		floor := childFloor(v)
		if len(keys[v]) > 0 {
			k := keys[v][0]
			if k <= floor {
				val := vals[v][0]
				keys[v] = keys[v][1:]
				vals[v] = vals[v][1:]
				buf := payload[4*v : 4*v+2 : 4*v+2]
				if parity[v] {
					buf = payload[4*v+2 : 4*v+4 : 4*v+4]
				}
				parity[v] = !parity[v]
				buf[0], buf[1] = k, val
				out := append(net.OutBuf(v), congest.Msg{EdgeID: t.ParentEdge[v], From: v, Data: buf})
				return out, true
			}
			return nil, true // wait for children to progress past k
		}
		if floor == doneTag {
			sentDone[v] = true
			buf := payload[4*v : 4*v+1 : 4*v+1]
			if parity[v] {
				buf = payload[4*v+2 : 4*v+3 : 4*v+3]
			}
			parity[v] = !parity[v]
			buf[0] = doneTag
			out := append(net.OutBuf(v), congest.Msg{EdgeID: t.ParentEdge[v], From: v, Data: buf})
			return out, false
		}
		return nil, true
	}
	total := 0
	for _, kv := range perNode {
		total += len(kv.Keys)
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, 4*total)); err != nil {
		return nil, err
	}
	// The root never streams; its remaining (key, value) lists are the
	// full combined table.
	table := make(map[congest.Word]congest.Word, len(keys[t.Root]))
	for i, k := range keys[t.Root] {
		table[k] = vals[t.Root][i]
	}
	return table, nil
}
