package primitives

import (
	"fmt"
	"slices"

	"twoecss/internal/congest"
	"twoecss/internal/tree"
)

// KeyedCombine convergecasts per-key values from all vertices to the root
// with in-network combining: every vertex starts with a (possibly empty)
// map key -> value; intermediate vertices combine entries with equal keys
// using op, re-sending a key if a later arrival improves it. op MUST be
// commutative, associative and idempotent (min/max/or/and): re-combining a
// stale partial with a fresher one must absorb, otherwise use
// KeyedSumOrdered. The root ends with the combined value per key.
// Rounds: O(height + #keys), one entry per edge per round.
func KeyedCombine(net *congest.Network, t *tree.Rooted, perNode []map[congest.Word]congest.Word, op Combine) (map[congest.Word]congest.Word, error) {
	g := net.G
	if len(perNode) != g.N {
		return nil, fmt.Errorf("primitives: perNode length %d != n", len(perNode))
	}
	acc := make([]map[congest.Word]congest.Word, g.N)
	dirty := make([][]congest.Word, g.N)
	inDirty := make([]map[congest.Word]bool, g.N)
	for v := 0; v < g.N; v++ {
		acc[v] = make(map[congest.Word]congest.Word, len(perNode[v]))
		inDirty[v] = make(map[congest.Word]bool, len(perNode[v]))
		keys := make([]congest.Word, 0, len(perNode[v]))
		for k, val := range perNode[v] {
			acc[v][k] = val
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			dirty[v] = append(dirty[v], k)
			inDirty[v][k] = true
		}
	}
	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			k, val := m.Data[0], m.Data[1]
			cur, ok := acc[v][k]
			merged := val
			if ok {
				merged = op(cur, val)
			}
			if !ok || merged != cur {
				acc[v][k] = merged
				if !inDirty[v][k] {
					inDirty[v][k] = true
					dirty[v] = append(dirty[v], k)
				}
			}
		}
		if t.ParentEdge[v] < 0 || len(dirty[v]) == 0 {
			dirty[v] = dirty[v][:0]
			return nil, false
		}
		k := dirty[v][0]
		dirty[v] = dirty[v][1:]
		inDirty[v][k] = false
		msg := congest.Msg{EdgeID: t.ParentEdge[v], From: v, Data: []congest.Word{k, acc[v][k]}}
		return []congest.Msg{msg}, len(dirty[v]) > 0
	}
	total := 0
	for _, m := range perNode {
		total += len(m)
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, 4*total)); err != nil {
		return nil, err
	}
	return acc[t.Root], nil
}

// KeyedCombineBroadcast runs KeyedCombine and then broadcasts the combined
// table so every vertex knows the value of every key.
// Rounds: O(height + #keys).
func KeyedCombineBroadcast(net *congest.Network, t *tree.Rooted, perNode []map[congest.Word]congest.Word, op Combine) (map[congest.Word]congest.Word, error) {
	table, err := KeyedCombine(net, t, perNode, op)
	if err != nil {
		return nil, err
	}
	keys := make([]congest.Word, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	items := make([]Item, 0, len(keys))
	for _, k := range keys {
		items = append(items, Item{k, table[k]})
	}
	if _, err := Broadcast(net, t, items); err != nil {
		return nil, err
	}
	return table, nil
}
