package primitives

import (
	"math/rand"
	"testing"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
)

func TestKeyedCombineMin(t *testing.T) {
	net, rt := testNet(t, 21, 50)
	rng := rand.New(rand.NewSource(77))
	perNode := make([]map[congest.Word]congest.Word, 50)
	want := map[congest.Word]congest.Word{}
	for v := 0; v < 50; v++ {
		perNode[v] = map[congest.Word]congest.Word{}
		for j := 0; j < rng.Intn(4); j++ {
			k := congest.Word(rng.Intn(12))
			val := congest.Word(rng.Intn(1000))
			if cur, ok := perNode[v][k]; !ok || val < cur {
				perNode[v][k] = val
			}
			if cur, ok := want[k]; !ok || perNode[v][k] < cur {
				want[k] = perNode[v][k]
			}
		}
	}
	min := func(a, b congest.Word) congest.Word {
		if a < b {
			return a
		}
		return b
	}
	got, err := KeyedCombine(net, rt, perNode, min)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d, want %d", k, got[k], v)
		}
	}
}

// toKeyedValues converts the map-based test fixtures to the flat
// KeyedSumOrdered input (unsorted; the primitive sorts).
func toKeyedValues(perNode []map[congest.Word]congest.Word) []KeyedValues {
	out := make([]KeyedValues, len(perNode))
	for v, m := range perNode {
		for k, val := range m {
			out[v].Keys = append(out[v].Keys, k)
			out[v].Vals = append(out[v].Vals, val)
		}
	}
	return out
}

func TestKeyedSumOrderedExact(t *testing.T) {
	for _, n := range []int{2, 5, 30, 80} {
		net, rt := testNet(t, int64(n), n)
		rng := rand.New(rand.NewSource(int64(n * 3)))
		perNode := make([]map[congest.Word]congest.Word, n)
		want := map[congest.Word]congest.Word{}
		for v := 0; v < n; v++ {
			perNode[v] = map[congest.Word]congest.Word{}
			for j := 0; j < rng.Intn(5); j++ {
				k := congest.Word(rng.Intn(9))
				val := congest.Word(1 + rng.Intn(50))
				perNode[v][k] += val
			}
			for k, val := range perNode[v] {
				want[k] += val
			}
		}
		sum := func(a, b congest.Word) congest.Word { return a + b }
		got, err := KeyedSumOrdered(net, rt, toKeyedValues(perNode), sum)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d keys, want %d", n, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("n=%d key %d: got %d, want %d", n, k, got[k], v)
			}
		}
	}
}

func TestKeyedSumOrderedPipelines(t *testing.T) {
	// Path graph: K keys spread along the path must cost O(n + K), not
	// O(n*K).
	n, K := 80, 24
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	net := congest.NewNetwork(g)
	rt, err := BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	perNode := make([]map[congest.Word]congest.Word, n)
	for v := 0; v < n; v++ {
		perNode[v] = map[congest.Word]congest.Word{congest.Word(v % K): 1}
	}
	base := net.Stats().SimulatedRounds
	sum := func(a, b congest.Word) congest.Word { return a + b }
	got, err := KeyedSumOrdered(net, rt, toKeyedValues(perNode), sum)
	if err != nil {
		t.Fatal(err)
	}
	rounds := net.Stats().SimulatedRounds - base
	if rounds > int64(3*n+6*K+20) {
		t.Fatalf("keyed sum took %d rounds on path %d with %d keys", rounds, n, K)
	}
	var total congest.Word
	for _, v := range got {
		total += v
	}
	if total != congest.Word(n) {
		t.Fatalf("total mass %d, want %d", total, n)
	}
}

func TestKeyedCombineBroadcastReachesAll(t *testing.T) {
	net, rt := testNet(t, 23, 25)
	perNode := make([]map[congest.Word]congest.Word, 25)
	for v := range perNode {
		perNode[v] = map[congest.Word]congest.Word{congest.Word(v % 3): congest.Word(v)}
	}
	max := func(a, b congest.Word) congest.Word {
		if a > b {
			return a
		}
		return b
	}
	table, err := KeyedCombineBroadcast(net, rt, perNode, max)
	if err != nil {
		t.Fatal(err)
	}
	if table[0] != 24 || table[1] != 22 || table[2] != 23 {
		t.Fatalf("table = %v", table)
	}
}
