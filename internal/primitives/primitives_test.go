package primitives

import (
	"math/rand"
	"testing"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

func testNet(t *testing.T, seed int64, n int) (*congest.Network, *tree.Rooted) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 100, Rng: rng}
	g := graph.RandomSpanningTreePlus(n, n/2, cfg)
	net := congest.NewNetwork(g)
	rt, err := BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, rt
}

func TestBuildBFSMatchesCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 10, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, rng.Intn(n), cfg)
		net := congest.NewNetwork(g)
		root := rng.Intn(n)
		rt, err := BuildBFS(net, root)
		if err != nil {
			t.Fatal(err)
		}
		_, dist := g.BFS(root)
		for v := 0; v < n; v++ {
			if rt.Depth[v] != dist[v] {
				t.Fatalf("BFS depth[%d]=%d, want %d", v, rt.Depth[v], dist[v])
			}
		}
		// Round bill must be about the eccentricity, certainly <= n+3.
		if net.Stats().SimulatedRounds > int64(n+3) {
			t.Fatalf("BFS used %d rounds on n=%d", net.Stats().SimulatedRounds, n)
		}
	}
}

func TestBuildBFSBadRoot(t *testing.T) {
	g := graph.Grid(2, 2, graph.DefaultGenConfig(1))
	net := congest.NewNetwork(g)
	if _, err := BuildBFS(net, 99); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestGatherCollectsEverything(t *testing.T) {
	net, rt := testNet(t, 5, 40)
	perNode := make([][]Item, 40)
	want := map[congest.Word]bool{}
	for v := 0; v < 40; v++ {
		if v%3 == 0 {
			perNode[v] = []Item{{congest.Word(v), congest.Word(v * 10)}}
			want[congest.Word(v)] = true
		}
	}
	got, err := Gather(net, rt, perNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("gathered %d items, want %d", len(got), len(want))
	}
	for _, it := range got {
		if !want[it[0]] || it[1] != it[0]*10 {
			t.Fatalf("bad item %v", it)
		}
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	net, rt := testNet(t, 6, 35)
	items := []Item{{1, 2}, {3, 4}, {5, 6}}
	recv, err := Broadcast(net, rt, items)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 35; v++ {
		if len(recv[v]) != len(items) {
			t.Fatalf("vertex %d received %d items", v, len(recv[v]))
		}
		for i, it := range recv[v] {
			if it[0] != items[i][0] || it[1] != items[i][1] {
				t.Fatalf("vertex %d item %d = %v", v, i, it)
			}
		}
	}
}

func TestBroadcastPipelines(t *testing.T) {
	// A path of n vertices with k items must take ~n+k rounds, not n*k.
	n, k := 60, 30
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	net := congest.NewNetwork(g)
	rt, err := BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := net.Stats().SimulatedRounds
	items := make([]Item, k)
	for i := range items {
		items[i] = Item{congest.Word(i)}
	}
	if _, err := Broadcast(net, rt, items); err != nil {
		t.Fatal(err)
	}
	rounds := net.Stats().SimulatedRounds - base
	if rounds > int64(n+2*k+8) {
		t.Fatalf("broadcast of %d items on path %d took %d rounds (not pipelined)", k, n, rounds)
	}
}

func TestGatherBroadcast(t *testing.T) {
	net, rt := testNet(t, 7, 30)
	perNode := make([][]Item, 30)
	perNode[3] = []Item{{42}}
	perNode[17] = []Item{{99}}
	all, err := GatherBroadcast(net, rt, perNode)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 30; v++ {
		if len(all[v]) != 2 {
			t.Fatalf("vertex %d has %d items", v, len(all[v]))
		}
		seen := map[congest.Word]bool{all[v][0][0]: true, all[v][1][0]: true}
		if !seen[42] || !seen[99] {
			t.Fatalf("vertex %d items wrong: %v", v, all[v])
		}
	}
}

func TestSubtreeAggregateSum(t *testing.T) {
	net, rt := testNet(t, 8, 45)
	x := make([]congest.Word, 45)
	for v := range x {
		x[v] = congest.Word(v + 1)
	}
	sum := func(a, b congest.Word) congest.Word { return a + b }
	got, err := SubtreeAggregate(net, rt, x, sum)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: iterate in reverse preorder.
	want := append([]congest.Word(nil), x...)
	for i := len(rt.Order) - 1; i >= 1; i-- {
		v := rt.Order[i]
		want[rt.Parent[v]] += want[v]
	}
	for v := 0; v < 45; v++ {
		if got[v] != want[v] {
			t.Fatalf("subtree sum at %d = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestRootPathAggregateSum(t *testing.T) {
	net, rt := testNet(t, 9, 45)
	x := make([]congest.Word, 45)
	for v := range x {
		x[v] = congest.Word(2*v + 1)
	}
	sum := func(a, b congest.Word) congest.Word { return a + b }
	got, err := RootPathAggregate(net, rt, x, sum)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 45; v++ {
		var want congest.Word
		for u := v; ; u = rt.Parent[u] {
			want += x[u]
			if rt.Parent[u] < 0 {
				break
			}
		}
		if got[v] != want {
			t.Fatalf("root-path sum at %d = %d, want %d", v, got[v], want)
		}
	}
}

func TestGlobalAggregateMax(t *testing.T) {
	net, rt := testNet(t, 10, 25)
	x := make([]congest.Word, 25)
	for v := range x {
		x[v] = congest.Word(v * v % 97)
	}
	max := func(a, b congest.Word) congest.Word {
		if a > b {
			return a
		}
		return b
	}
	got, err := GlobalAggregate(net, rt, x, max)
	if err != nil {
		t.Fatal(err)
	}
	var want congest.Word
	for _, v := range x {
		if v > want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("global max = %d, want %d", got, want)
	}
}

func TestGatherLengthValidation(t *testing.T) {
	net, rt := testNet(t, 11, 10)
	if _, err := Gather(net, rt, make([][]Item, 3)); err == nil {
		t.Fatal("short perNode accepted")
	}
	if _, err := SubtreeAggregate(net, rt, make([]congest.Word, 3), func(a, b congest.Word) congest.Word { return a + b }); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestBandwidthCompliance(t *testing.T) {
	net, rt := testNet(t, 12, 40)
	perNode := make([][]Item, 40)
	for v := range perNode {
		perNode[v] = []Item{{congest.Word(v), 1, 2, 3}}
	}
	if _, err := GatherBroadcast(net, rt, perNode); err != nil {
		t.Fatal(err)
	}
	if net.Stats().MaxEdgeWords > net.WordsPerEdge {
		t.Fatalf("bandwidth violated: %d > %d", net.Stats().MaxEdgeWords, net.WordsPerEdge)
	}
}
