// Package primitives implements the standard CONGEST building blocks the
// paper composes its algorithms from, as real message-level simulations on a
// congest.Network: distributed BFS-tree construction, pipelined broadcast
// and convergecast of k values over a rooted tree, subtree and root-path
// aggregation, and global aggregate/termination queries.
//
// Round complexities (all measured by the engine, stated here for
// reference): BFS is O(D); a pipelined k-item broadcast or gather costs
// O(height + k); subtree/root-path aggregation cost O(height); a global
// aggregate costs O(height).
package primitives

import (
	"fmt"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

// maxRoundsFor bounds primitive executions: generous linear budget.
func maxRoundsFor(g *graph.Graph, extra int) int64 {
	return int64(4*g.N + 4*g.M() + extra + 64)
}

// BuildBFS constructs a BFS spanning tree rooted at root by distributed
// flooding: each vertex joins the tree when it first hears an explore
// message, adopting the minimum-id sender among same-round arrivals as its
// parent. Rounds: O(ecc(root)).
func BuildBFS(net *congest.Network, root int) (*tree.Rooted, error) {
	g := net.G
	if root < 0 || root >= g.N {
		return nil, fmt.Errorf("primitives: bad root %d", root)
	}
	parentEdge := make([]int, g.N)
	discovered := make([]bool, g.N)
	justJoined := make([]bool, g.N)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	discovered[root] = true
	justJoined[root] = true

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		if !discovered[v] {
			// First explore wins; inbox is sorted by sender id.
			if len(inbox) == 0 {
				return nil, false
			}
			discovered[v] = true
			parentEdge[v] = inbox[0].EdgeID
			justJoined[v] = true
			return nil, true
		}
		if justJoined[v] {
			justJoined[v] = false
			out := net.OutBuf(v)
			for _, h := range g.Row(v) {
				if id := int(h.ID); id != parentEdge[v] {
					out = append(out, congest.Msg{EdgeID: id, From: v, Data: exploreData})
				}
			}
			return out, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{root}, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return tree.NewFromParentEdges(g, root, parentEdge)
}

// exploreData is the constant one-word payload of BFS explore messages.
// It is shared across all senders; receivers never mutate payloads.
var exploreData = []congest.Word{1}

// Item is a fixed-arity tuple of words moved by the pipelined primitives.
// One Item fits one CONGEST message (a constant number of O(log n)-bit
// fields).
type Item []congest.Word

// The primitives read their node-local tree view (parent edge, child
// edges) straight from the *tree.Rooted: the edge to child c is
// t.ParentEdge[c], so no per-call adjacency copy is needed. This models
// the same node-local knowledge (each vertex knows its incident tree
// edges after tree construction) without the O(n) localView allocation
// the seed paid on every primitive call.

// appendChildMsgs appends one message per child edge of v carrying data.
func appendChildMsgs(out []congest.Msg, t *tree.Rooted, v int, data []congest.Word) []congest.Msg {
	for _, c := range t.Children[v] {
		out = append(out, congest.Msg{EdgeID: t.ParentEdge[c], From: v, Data: data})
	}
	return out
}

// Gather moves every node's items to the root via a pipelined convergecast
// without combining: one item per edge per round flows upward. It returns
// the items received at the root (root's own items included), in arrival
// order. Rounds: O(height + total items).
func Gather(net *congest.Network, t *tree.Rooted, perNode [][]Item) ([]Item, error) {
	g := net.G
	if len(perNode) != g.N {
		return nil, fmt.Errorf("primitives: perNode length %d != n", len(perNode))
	}
	queue := make([][]Item, g.N)
	for v := 0; v < g.N; v++ {
		queue[v] = append(queue[v], perNode[v]...)
	}
	var collected []Item
	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			queue[v] = append(queue[v], Item(m.Data))
		}
		if v == t.Root {
			collected = append(collected, queue[v]...)
			queue[v] = queue[v][:0]
			return nil, false
		}
		if len(queue[v]) == 0 {
			return nil, false
		}
		it := queue[v][0]
		queue[v] = queue[v][1:]
		out := append(net.OutBuf(v), congest.Msg{EdgeID: t.ParentEdge[v], From: v, Data: it})
		return out, len(queue[v]) > 0
	}
	total := 0
	for _, its := range perNode {
		total += len(its)
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, total)); err != nil {
		return nil, err
	}
	return collected, nil
}

// Broadcast delivers the given items from the root to every vertex via a
// pipelined downcast. Every vertex ends up with all items in the same
// order. Rounds: O(height + len(items)).
//
// The pipelined downcast preserves order, so every vertex receives exactly
// items[0], items[1], ... — node state is therefore two counters per
// vertex (received, forwarded) rather than per-vertex item queues, and the
// returned per-vertex slices alias the caller's items (do not mutate).
func Broadcast(net *congest.Network, t *tree.Rooted, items []Item) ([][]Item, error) {
	received := make([][]Item, net.G.N)
	rcvd, err := broadcastCounted(net, t, items)
	if err != nil {
		return nil, err
	}
	for v := range received {
		received[v] = items[:rcvd[v]:rcvd[v]]
	}
	return received, nil
}

// broadcastCounted runs the downcast and returns the per-vertex count of
// delivered items (len(items) everywhere on a spanning tree). Callers that
// ignore the received lists (aggregate bills) use it to skip building them.
func broadcastCounted(net *congest.Network, t *tree.Rooted, items []Item) ([]int32, error) {
	g := net.G
	rcvd := make([]int32, g.N)
	fwd := make([]int32, g.N)
	rcvd[t.Root] = int32(len(items))

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		rcvd[v] += int32(len(inbox))
		if fwd[v] == rcvd[v] || len(t.Children[v]) == 0 {
			fwd[v] = rcvd[v]
			return nil, false
		}
		it := items[fwd[v]]
		fwd[v]++
		out := appendChildMsgs(net.OutBuf(v), t, v, it)
		return out, fwd[v] < rcvd[v]
	}
	if err := net.Run(handler, []int{t.Root}, maxRoundsFor(g, len(items)*2)); err != nil {
		return nil, err
	}
	return rcvd, nil
}

// GatherBroadcast gathers all items to the root and then broadcasts them so
// that every vertex knows every item (the "all vertices learn X" pattern
// used throughout Section 4). Rounds: O(height + total items).
func GatherBroadcast(net *congest.Network, t *tree.Rooted, perNode [][]Item) ([][]Item, error) {
	collected, err := Gather(net, t, perNode)
	if err != nil {
		return nil, err
	}
	return Broadcast(net, t, collected)
}

// GatherBroadcastAll is GatherBroadcast for callers that need only the
// communication (and its round bill), not the per-vertex received lists.
func GatherBroadcastAll(net *congest.Network, t *tree.Rooted, perNode [][]Item) error {
	collected, err := Gather(net, t, perNode)
	if err != nil {
		return err
	}
	_, err = broadcastCounted(net, t, collected)
	return err
}

// BroadcastAll is Broadcast for callers that need only the communication,
// not the per-vertex received lists.
func BroadcastAll(net *congest.Network, t *tree.Rooted, items []Item) error {
	_, err := broadcastCounted(net, t, items)
	return err
}

// Combine is a binary aggregate operator on words (sum, min, max, xor, ...).
type Combine func(a, b congest.Word) congest.Word

// SubtreeAggregate computes, for every vertex v, the aggregate of x over the
// subtree of v (descendants' aggregate on the given tree). Internal nodes
// wait for all children before reporting upward. Rounds: O(height).
func SubtreeAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) ([]congest.Word, error) {
	g := net.G
	if len(x) != g.N {
		return nil, fmt.Errorf("primitives: input length %d != n", len(x))
	}
	acc := append([]congest.Word(nil), x...)
	needed := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		needed[v] = len(t.Children[v])
	}
	reported := make([]bool, g.N)
	// Each node sends its aggregate exactly once per run, so one shared
	// backing array provides every node's one-word payload without
	// per-message allocation.
	sendBuf := make([]congest.Word, g.N)

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			acc[v] = op(acc[v], m.Data[0])
			needed[v]--
		}
		if needed[v] == 0 && !reported[v] {
			reported[v] = true
			if t.ParentEdge[v] >= 0 {
				sendBuf[v] = acc[v]
				msg := congest.Msg{EdgeID: t.ParentEdge[v], From: v, Data: sendBuf[v : v+1 : v+1]}
				return append(net.OutBuf(v), msg), false
			}
		}
		return nil, false
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return acc, nil
}

// RootPathAggregate computes, for every vertex v, the aggregate of x over
// all ancestors of v including v itself (ancestors' aggregate on the given
// tree), by an accumulate-and-forward downcast. Rounds: O(height).
func RootPathAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) ([]congest.Word, error) {
	g := net.G
	if len(x) != g.N {
		return nil, fmt.Errorf("primitives: input length %d != n", len(x))
	}
	acc := append([]congest.Word(nil), x...)
	sent := make([]bool, g.N)
	have := make([]bool, g.N)
	have[t.Root] = true
	// One shared backing array for the one-shot per-node payloads, as in
	// SubtreeAggregate.
	sendBuf := make([]congest.Word, g.N)

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			acc[v] = op(m.Data[0], acc[v])
			have[v] = true
		}
		if have[v] && !sent[v] {
			sent[v] = true
			sendBuf[v] = acc[v]
			out := appendChildMsgs(net.OutBuf(v), t, v, sendBuf[v:v+1:v+1])
			return out, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{t.Root}, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return acc, nil
}

// GlobalAggregate combines one word per vertex into a single value known to
// all vertices (convergecast to the root followed by a broadcast). Used for
// global termination tests such as "is any tree edge of layer k still
// uncovered". Rounds: O(height).
func GlobalAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) (congest.Word, error) {
	up, err := SubtreeAggregate(net, t, x, op)
	if err != nil {
		return 0, err
	}
	total := up[t.Root]
	if _, err := broadcastCounted(net, t, []Item{{total}}); err != nil {
		return 0, err
	}
	return total, nil
}
