// Package primitives implements the standard CONGEST building blocks the
// paper composes its algorithms from, as real message-level simulations on a
// congest.Network: distributed BFS-tree construction, pipelined broadcast
// and convergecast of k values over a rooted tree, subtree and root-path
// aggregation, and global aggregate/termination queries.
//
// Round complexities (all measured by the engine, stated here for
// reference): BFS is O(D); a pipelined k-item broadcast or gather costs
// O(height + k); subtree/root-path aggregation cost O(height); a global
// aggregate costs O(height).
package primitives

import (
	"fmt"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/tree"
)

// maxRoundsFor bounds primitive executions: generous linear budget.
func maxRoundsFor(g *graph.Graph, extra int) int64 {
	return int64(4*g.N + 4*g.M() + extra + 64)
}

// BuildBFS constructs a BFS spanning tree rooted at root by distributed
// flooding: each vertex joins the tree when it first hears an explore
// message, adopting the minimum-id sender among same-round arrivals as its
// parent. Rounds: O(ecc(root)).
func BuildBFS(net *congest.Network, root int) (*tree.Rooted, error) {
	g := net.G
	if root < 0 || root >= g.N {
		return nil, fmt.Errorf("primitives: bad root %d", root)
	}
	parentEdge := make([]int, g.N)
	discovered := make([]bool, g.N)
	justJoined := make([]bool, g.N)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	discovered[root] = true
	justJoined[root] = true

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		if !discovered[v] {
			// First explore wins; inbox is sorted by sender id.
			if len(inbox) == 0 {
				return nil, false
			}
			discovered[v] = true
			parentEdge[v] = inbox[0].EdgeID
			justJoined[v] = true
			return nil, true
		}
		if justJoined[v] {
			justJoined[v] = false
			out := net.OutBuf(v)
			for _, id := range g.Incident(v) {
				if id == parentEdge[v] {
					continue
				}
				out = append(out, congest.Msg{EdgeID: id, From: v, Data: exploreData})
			}
			return out, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{root}, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return tree.NewFromParentEdges(g, root, parentEdge)
}

// exploreData is the constant one-word payload of BFS explore messages.
// It is shared across all senders; receivers never mutate payloads.
var exploreData = []congest.Word{1}

// Item is a fixed-arity tuple of words moved by the pipelined primitives.
// One Item fits one CONGEST message (a constant number of O(log n)-bit
// fields).
type Item []congest.Word

// treeLocal is the node-local view of a rooted tree that every primitive
// uses: parent edge and child edges. Deriving it from a *tree.Rooted is
// node-local bookkeeping (each vertex knows its incident tree edges after
// tree construction).
type treeLocal struct {
	parentEdge []int   // -1 at root
	childEdges [][]int // edge ids to children
	root       int
}

func localView(t *tree.Rooted) *treeLocal {
	n := t.G.N
	tl := &treeLocal{parentEdge: make([]int, n), childEdges: make([][]int, n), root: t.Root}
	for v := 0; v < n; v++ {
		tl.parentEdge[v] = t.ParentEdge[v]
		kids := t.Children[v]
		tl.childEdges[v] = make([]int, len(kids))
		for i, c := range kids {
			tl.childEdges[v][i] = t.ParentEdge[c]
		}
	}
	return tl
}

// Gather moves every node's items to the root via a pipelined convergecast
// without combining: one item per edge per round flows upward. It returns
// the items received at the root (root's own items included), in arrival
// order. Rounds: O(height + total items).
func Gather(net *congest.Network, t *tree.Rooted, perNode [][]Item) ([]Item, error) {
	g := net.G
	if len(perNode) != g.N {
		return nil, fmt.Errorf("primitives: perNode length %d != n", len(perNode))
	}
	tl := localView(t)
	queue := make([][]Item, g.N)
	for v := 0; v < g.N; v++ {
		queue[v] = append(queue[v], perNode[v]...)
	}
	var collected []Item
	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			queue[v] = append(queue[v], Item(m.Data))
		}
		if v == tl.root {
			collected = append(collected, queue[v]...)
			queue[v] = queue[v][:0]
			return nil, false
		}
		if len(queue[v]) == 0 {
			return nil, false
		}
		it := queue[v][0]
		queue[v] = queue[v][1:]
		out := append(net.OutBuf(v), congest.Msg{EdgeID: tl.parentEdge[v], From: v, Data: it})
		return out, len(queue[v]) > 0
	}
	total := 0
	for _, its := range perNode {
		total += len(its)
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, total)); err != nil {
		return nil, err
	}
	return collected, nil
}

// Broadcast delivers the given items from the root to every vertex via a
// pipelined downcast. Every vertex ends up with all items in the same
// order. Rounds: O(height + len(items)).
func Broadcast(net *congest.Network, t *tree.Rooted, items []Item) ([][]Item, error) {
	g := net.G
	tl := localView(t)
	received := make([][]Item, g.N)
	// pending[v] holds items yet to be forwarded to children.
	pending := make([][]Item, g.N)
	received[t.Root] = append(received[t.Root], items...)
	pending[t.Root] = append(pending[t.Root], items...)

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			it := Item(m.Data)
			received[v] = append(received[v], it)
			pending[v] = append(pending[v], it)
		}
		if len(pending[v]) == 0 || len(tl.childEdges[v]) == 0 {
			pending[v] = pending[v][:0]
			return nil, false
		}
		it := pending[v][0]
		pending[v] = pending[v][1:]
		out := net.OutBuf(v)
		for _, id := range tl.childEdges[v] {
			out = append(out, congest.Msg{EdgeID: id, From: v, Data: it})
		}
		return out, len(pending[v]) > 0
	}
	if err := net.Run(handler, []int{t.Root}, maxRoundsFor(g, len(items)*2)); err != nil {
		return nil, err
	}
	return received, nil
}

// GatherBroadcast gathers all items to the root and then broadcasts them so
// that every vertex knows every item (the "all vertices learn X" pattern
// used throughout Section 4). Rounds: O(height + total items).
func GatherBroadcast(net *congest.Network, t *tree.Rooted, perNode [][]Item) ([][]Item, error) {
	collected, err := Gather(net, t, perNode)
	if err != nil {
		return nil, err
	}
	return Broadcast(net, t, collected)
}

// Combine is a binary aggregate operator on words (sum, min, max, xor, ...).
type Combine func(a, b congest.Word) congest.Word

// SubtreeAggregate computes, for every vertex v, the aggregate of x over the
// subtree of v (descendants' aggregate on the given tree). Internal nodes
// wait for all children before reporting upward. Rounds: O(height).
func SubtreeAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) ([]congest.Word, error) {
	g := net.G
	if len(x) != g.N {
		return nil, fmt.Errorf("primitives: input length %d != n", len(x))
	}
	tl := localView(t)
	acc := append([]congest.Word(nil), x...)
	needed := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		needed[v] = len(tl.childEdges[v])
	}
	reported := make([]bool, g.N)
	// Each node sends its aggregate exactly once per run, so one shared
	// backing array provides every node's one-word payload without
	// per-message allocation.
	sendBuf := make([]congest.Word, g.N)

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			acc[v] = op(acc[v], m.Data[0])
			needed[v]--
		}
		if needed[v] == 0 && !reported[v] {
			reported[v] = true
			if tl.parentEdge[v] >= 0 {
				sendBuf[v] = acc[v]
				msg := congest.Msg{EdgeID: tl.parentEdge[v], From: v, Data: sendBuf[v : v+1 : v+1]}
				return append(net.OutBuf(v), msg), false
			}
		}
		return nil, false
	}
	if err := net.Run(handler, nil, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return acc, nil
}

// RootPathAggregate computes, for every vertex v, the aggregate of x over
// all ancestors of v including v itself (ancestors' aggregate on the given
// tree), by an accumulate-and-forward downcast. Rounds: O(height).
func RootPathAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) ([]congest.Word, error) {
	g := net.G
	if len(x) != g.N {
		return nil, fmt.Errorf("primitives: input length %d != n", len(x))
	}
	tl := localView(t)
	acc := append([]congest.Word(nil), x...)
	sent := make([]bool, g.N)
	have := make([]bool, g.N)
	have[t.Root] = true
	// One shared backing array for the one-shot per-node payloads, as in
	// SubtreeAggregate.
	sendBuf := make([]congest.Word, g.N)

	handler := func(v int, inbox []congest.Msg) ([]congest.Msg, bool) {
		for _, m := range inbox {
			acc[v] = op(m.Data[0], acc[v])
			have[v] = true
		}
		if have[v] && !sent[v] {
			sent[v] = true
			sendBuf[v] = acc[v]
			out := net.OutBuf(v)
			for _, id := range tl.childEdges[v] {
				out = append(out, congest.Msg{EdgeID: id, From: v, Data: sendBuf[v : v+1 : v+1]})
			}
			return out, false
		}
		return nil, false
	}
	if err := net.Run(handler, []int{t.Root}, maxRoundsFor(g, 0)); err != nil {
		return nil, err
	}
	return acc, nil
}

// GlobalAggregate combines one word per vertex into a single value known to
// all vertices (convergecast to the root followed by a broadcast). Used for
// global termination tests such as "is any tree edge of layer k still
// uncovered". Rounds: O(height).
func GlobalAggregate(net *congest.Network, t *tree.Rooted, x []congest.Word, op Combine) (congest.Word, error) {
	up, err := SubtreeAggregate(net, t, x, op)
	if err != nil {
		return 0, err
	}
	total := up[t.Root]
	if _, err := Broadcast(net, t, []Item{{total}}); err != nil {
		return 0, err
	}
	return total, nil
}
