// Package setcover implements the paper's second algorithm (Theorem 1.2,
// Section 5): a randomized O(log n)-approximation for weighted TAP — and
// hence an O(log n)+1 approximation for 2-ECSS — whose round complexity is
// proportional to the low-congestion shortcut quality of the network,
// O~(SC(G) + D).
//
// The outer loop parallelizes the greedy set-cover algorithm: phases sweep
// cost-effectiveness thresholds Delta = (1+eps)^i downward; within a phase,
// sub-phases sweep the maximum coverage degree d downward; each sub-phase
// samples the candidate set with probability 1/(2d) for O(log n)
// repetitions, committing a sample iff it is "good" (it covers at least
// Delta/100 marked tree edges per unit weight). Coverage state is
// maintained with the Lemma 5.4 XOR detector and cost-effectiveness with
// the Lemma 5.5 marked-ancestor counts, both running over the shortcut
// tools of Section 5.2.
//
// If a phase's sampling fails to clear every eligible edge (a low
// probability event the paper absorbs into "with high probability"), the
// implementation falls back to committing the single most cost-effective
// edge, which is exactly one step of sequential greedy and preserves the
// O(log n) guarantee while ensuring termination.
package setcover

import (
	"errors"
	"fmt"

	"math/rand"

	"twoecss/internal/congest"
	"twoecss/internal/primitives"
	"twoecss/internal/shortcuts"
	"twoecss/internal/tree"
)

// ErrInfeasible reports an uncoverable tree edge.
var ErrInfeasible = errors.New("setcover: tree edge not coverable (input not 2-edge-connected)")

// Options tunes the algorithm.
type Options struct {
	// Eps is the threshold-granularity parameter (paper's ε).
	Eps float64
	// Reps is the number of sampling repetitions per sub-phase (O(log n)).
	Reps int
	// GoodFraction is the goodness threshold divisor (paper uses 100).
	GoodFraction float64
	// Rng drives the sampling; required.
	Rng *rand.Rand
}

// DefaultOptions returns the paper's parameters for an n-vertex network.
func DefaultOptions(n int, rng *rand.Rand) Options {
	reps := 1
	for 1<<reps < n {
		reps++
	}
	return Options{Eps: 0.2, Reps: 2 * reps, GoodFraction: 100, Rng: rng}
}

// Result is the outcome of a run.
type Result struct {
	// Edges is the augmentation (original non-tree edge ids).
	Edges []int
	// Weight is its total weight.
	Weight int64
	// Phases, SubPhases, Samples count outer-loop work; Fallbacks counts
	// greedy fallback commits.
	Phases, SubPhases, Samples, Fallbacks int
	// MaxShortcutQuality is the largest realized alpha+beta observed.
	MaxShortcutQuality int
}

// Solver runs the shortcut-based TAP approximation.
type Solver struct {
	Net   *congest.Network
	BFS   *tree.Rooted
	T     *tree.Rooted
	Tools *shortcuts.Tools

	coverSets [][]int // per non-tree edge position: covered tree children
	nonTree   []int
	weights   []int64
}

// NewSolver prepares a solver over the network graph and spanning tree t,
// using the given shortcut builder for all tree tools.
func NewSolver(net *congest.Network, bfs, t *tree.Rooted, b shortcuts.Builder) (*Solver, error) {
	tl, err := shortcuts.NewTools(net, t, b)
	if err != nil {
		return nil, err
	}
	s := &Solver{Net: net, BFS: bfs, T: t, Tools: tl, nonTree: t.NonTreeEdgeIDs()}
	s.coverSets = make([][]int, len(s.nonTree))
	s.weights = make([]int64, len(s.nonTree))
	for j, id := range s.nonTree {
		e := t.G.Edges[id]
		w := t.LCA(e.U, e.V)
		for x := e.U; x != w; x = t.Parent[x] {
			s.coverSets[j] = append(s.coverSets[j], x)
		}
		for x := e.V; x != w; x = t.Parent[x] {
			s.coverSets[j] = append(s.coverSets[j], x)
		}
		s.weights[j] = int64(e.W)
	}
	return s, nil
}

// Solve runs the full algorithm.
func (s *Solver) Solve(opt Options) (*Result, error) {
	if opt.Rng == nil {
		return nil, fmt.Errorf("setcover: Options.Rng is required")
	}
	if opt.Eps <= 0 || opt.Eps >= 1 {
		return nil, fmt.Errorf("setcover: eps %v out of (0,1)", opt.Eps)
	}
	n := s.T.G.N
	marked := make([]bool, n) // marked = still uncovered
	needed := 0
	for v := 0; v < n; v++ {
		if v != s.T.Root {
			marked[v] = true
			needed++
		}
	}
	chosen := make([]bool, len(s.nonTree))
	res := &Result{}

	// Threshold sweep: from the best possible cost-effectiveness (n/1)
	// down to the worst (1/Wmax).
	maxW := float64(s.T.G.MaxWeight())
	if maxW < 1 {
		maxW = 1
	}
	delta := float64(n)
	minDelta := 1 / maxW

	for needed > 0 && delta >= minDelta/(1+opt.Eps) {
		res.Phases++
		// Cost-effectiveness of every edge w.r.t. marked edges
		// (Lemma 5.5 tool call bills the rounds).
		counts, err := s.coverCounts(marked)
		if err != nil {
			return nil, err
		}
		candidates := s.eligible(counts, chosen, delta, opt.Eps)
		if len(candidates) == 0 {
			delta /= 1 + opt.Eps
			continue
		}
		// Sub-phases over coverage degree d.
		for needed > 0 {
			res.SubPhases++
			d := s.maxDegree(candidates, marked)
			if d == 0 {
				break
			}
			p := 1 / (2 * float64(d))
			progressed := false
			for rep := 0; rep < opt.Reps && needed > 0; rep++ {
				res.Samples++
				var sample []int
				for _, j := range candidates {
					if opt.Rng.Float64() < p {
						sample = append(sample, j)
					}
				}
				if len(sample) == 0 {
					continue
				}
				newCov, wsum := s.evaluate(sample, marked)
				// Goodness check: one global aggregate over the BFS
				// tree (O(D) rounds).
				if err := s.billGoodness(); err != nil {
					return nil, err
				}
				if float64(newCov) < delta/opt.GoodFraction*float64(wsum) {
					continue
				}
				progressed = true
				needed -= s.commit(sample, marked, chosen, res)
				// Coverage state refresh (Lemma 5.4 tool call).
				if err := s.billCoverage(marked, opt.Rng); err != nil {
					return nil, err
				}
				candidates = s.eligible(counts, chosen, delta, opt.Eps)
			}
			if !progressed {
				break
			}
		}
		// Fallback: if eligible edges remain after the sampling budget,
		// commit the single most cost-effective one (a sequential greedy
		// step) to guarantee progress, then recompute.
		counts, err = s.coverCounts(marked)
		if err != nil {
			return nil, err
		}
		if best := s.bestEdge(counts, chosen); best >= 0 &&
			s.effectiveness(best, counts) >= delta*(1-opt.Eps) {
			res.Fallbacks++
			needed -= s.commit([]int{best}, marked, chosen, res)
			if err := s.billCoverage(marked, opt.Rng); err != nil {
				return nil, err
			}
			continue // stay at this delta
		}
		delta /= 1 + opt.Eps
	}
	if needed > 0 {
		return nil, ErrInfeasible
	}
	for j, c := range chosen {
		if c {
			res.Edges = append(res.Edges, s.nonTree[j])
			res.Weight += s.weights[j]
		}
	}
	res.MaxShortcutQuality = s.Tools.MaxQuality
	return res, nil
}

func (s *Solver) coverCounts(marked []bool) ([]int, error) {
	m, err := s.Tools.CoverCount(marked)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(s.nonTree))
	for j, id := range s.nonTree {
		counts[j] = m[id]
	}
	return counts, nil
}

func (s *Solver) effectiveness(j int, counts []int) float64 {
	return float64(counts[j]) / float64(s.weights[j])
}

func (s *Solver) eligible(counts []int, chosen []bool, delta, eps float64) []int {
	var out []int
	for j := range s.nonTree {
		if chosen[j] || counts[j] == 0 {
			continue
		}
		if s.effectiveness(j, counts) >= delta*(1-eps) {
			out = append(out, j)
		}
	}
	return out
}

func (s *Solver) bestEdge(counts []int, chosen []bool) int {
	best, bestEff := -1, 0.0
	for j := range s.nonTree {
		if chosen[j] || counts[j] == 0 {
			continue
		}
		if eff := s.effectiveness(j, counts); eff > bestEff {
			bestEff = eff
			best = j
		}
	}
	return best
}

func (s *Solver) maxDegree(candidates []int, marked []bool) int {
	deg := make(map[int]int)
	for _, j := range candidates {
		for _, c := range s.coverSets[j] {
			if marked[c] {
				deg[c]++
			}
		}
	}
	d := 0
	for _, k := range deg {
		if k > d {
			d = k
		}
	}
	return d
}

func (s *Solver) evaluate(sample []int, marked []bool) (int, int64) {
	seen := map[int]bool{}
	var w int64
	for _, j := range sample {
		w += s.weights[j]
		for _, c := range s.coverSets[j] {
			if marked[c] {
				seen[c] = true
			}
		}
	}
	return len(seen), w
}

func (s *Solver) commit(sample []int, marked, chosen []bool, res *Result) int {
	newly := 0
	for _, j := range sample {
		chosen[j] = true
		for _, c := range s.coverSets[j] {
			if marked[c] {
				marked[c] = false
				newly++
			}
		}
	}
	return newly
}

// billGoodness runs the O(D)-round global sum used by the goodness test.
func (s *Solver) billGoodness() error {
	x := make([]congest.Word, s.BFS.G.N)
	sum := func(a, b congest.Word) congest.Word { return a + b }
	_, err := primitives.GlobalAggregate(s.Net, s.BFS, x, sum)
	return err
}

// billCoverage refreshes the marked set via the Lemma 5.4 detector (one
// DescendantsSum over the shortcut hierarchy).
func (s *Solver) billCoverage(marked []bool, rng *rand.Rand) error {
	set := map[int]bool{}
	for j, id := range s.nonTree {
		_ = j
		set[id] = true
	}
	_, err := s.Tools.CoveredDetection(set, rng)
	return err
}
