package setcover

import (
	"math"
	"math/rand"
	"testing"

	"twoecss/internal/baseline"
	"twoecss/internal/congest"
	"twoecss/internal/graph"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/shortcuts"
	"twoecss/internal/tree"
	"twoecss/internal/vgraph"
)

func fixture(t *testing.T, g *graph.Graph, seed int64) (*Solver, *tree.Rooted) {
	t.Helper()
	net := congest.NewNetwork(g)
	bfs, err := primitives.BuildBFS(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mst.KruskalTree(g, 0, net)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, bfs, rt, &shortcuts.SteinerBuilder{G: g, BFS: bfs})
	if err != nil {
		t.Fatal(err)
	}
	return s, rt
}

func assertCovers(t *testing.T, rt *tree.Rooted, picks []int) {
	t.Helper()
	vg, err := vgraph.BuildFromGraph(rt)
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]bool{}
	for _, id := range picks {
		for _, ve := range vg.VirtualOf(id) {
			in[ve] = true
		}
	}
	if !vg.FullyCovers(func(ve int) bool { return in[ve] }) {
		t.Fatal("setcover augmentation does not cover the tree")
	}
}

func TestSolveCoversFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfgs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.RingWithChords(40, 15, graph.DefaultGenConfig(2))},
		{"grid", graph.Grid(6, 6, graph.DefaultGenConfig(3))},
		{"treeleafcycle", graph.TreeLeafCycle(5, graph.DefaultGenConfig(4))},
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			s, rt := fixture(t, tc.g, 1)
			res, err := s.Solve(DefaultOptions(tc.g.N, rng))
			if err != nil {
				t.Fatal(err)
			}
			assertCovers(t, rt, res.Edges)
			if res.Weight <= 0 || res.Phases == 0 {
				t.Fatalf("degenerate result %+v", res)
			}
			if s.Net.Stats().SimulatedRounds == 0 {
				t.Fatal("no simulated rounds")
			}
		})
	}
}

func TestLogNApproximation(t *testing.T) {
	// Against the exact optimum on small instances, the ratio must stay
	// within an O(log n) envelope (constant 4*ln(n) is generous).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 60, Rng: rng}
		g := graph.RandomSpanningTreePlus(8+rng.Intn(8), 4+rng.Intn(4), cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			t.Fatal(err)
		}
		s, rt := fixture(t, g, int64(trial))
		if len(rt.NonTreeEdgeIDs()) > 15 {
			continue
		}
		res, err := s.Solve(DefaultOptions(g.N, rng))
		if err != nil {
			t.Fatal(err)
		}
		assertCovers(t, rt, res.Edges)
		opt, _, err := baseline.BruteForceTAP(rt, 15)
		if err != nil {
			t.Fatal(err)
		}
		envelope := 4 * math.Log(float64(g.N)+2) * float64(opt)
		if float64(res.Weight) > envelope {
			t.Fatalf("trial %d: weight %d beyond O(log n) envelope %.1f (opt %d)",
				trial, res.Weight, envelope, opt)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := graph.RingWithChords(12, 3, graph.DefaultGenConfig(5))
	s, _ := fixture(t, g, 2)
	if _, err := s.Solve(Options{Eps: 0.2, Reps: 4, GoodFraction: 100}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := s.Solve(Options{Eps: 0, Reps: 4, GoodFraction: 100, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestInfeasibleDetected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1) // bridge
	s, _ := fixture(t, g, 3)
	if _, err := s.Solve(DefaultOptions(4, rand.New(rand.NewSource(9)))); err == nil {
		t.Fatal("bridged graph accepted")
	}
}

func TestShortcutQualityRecorded(t *testing.T) {
	g := graph.TreeLeafCycle(6, graph.DefaultGenConfig(6))
	s, _ := fixture(t, g, 4)
	res, err := s.Solve(DefaultOptions(g.N, rand.New(rand.NewSource(10))))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxShortcutQuality <= 0 {
		t.Fatal("shortcut quality not recorded")
	}
}
