package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ecss_test_total", "A counter.").Add(3)
	r.Counter("ecss_test_classed_total", "Classed counter.", L("class", "interactive")).Inc()
	r.Counter("ecss_test_classed_total", "Classed counter.", L("class", "batch")).Add(2)
	r.Gauge("ecss_test_depth", "A gauge.").Set(7.5)
	h := r.Histogram("ecss_test_seconds", "A histogram.", []float64{0.1, 1, 10}, L("stage", "bfs"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "ecss_test_collected", Help: "Scrape-time sample.", Type: "gauge", Value: 42, Labels: []Label{L("shard", `http://s1:8081`)}})
		emit(Sample{Name: "ecss_test_escaped", Help: "quote \" backslash \\ newline.", Type: "gauge", Value: 1, Labels: []Label{L("v", "a\"b\\c\nd")}})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()

	for _, want := range []string{
		"# TYPE ecss_test_total counter",
		"ecss_test_total 3",
		`ecss_test_classed_total{class="batch"} 2`,
		`ecss_test_classed_total{class="interactive"} 1`,
		"ecss_test_depth 7.5",
		"# TYPE ecss_test_seconds histogram",
		`ecss_test_seconds_bucket{le="0.1",stage="bfs"} 1`,
		`ecss_test_seconds_bucket{le="1",stage="bfs"} 2`,
		`ecss_test_seconds_bucket{le="+Inf",stage="bfs"} 3`,
		`ecss_test_seconds_count{stage="bfs"} 3`,
		`ecss_test_collected{shard="http://s1:8081"} 42`,
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("exposition missing %q:\n%s", want, doc)
		}
	}

	st, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not validate: %v\n%s", err, doc)
	}
	if st.Families < 6 || st.Samples < 10 {
		t.Fatalf("validator saw %d families / %d samples", st.Families, st.Samples)
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric with spaces 1\n",
		"name{label=\"unterminated} 1\n",
		"name{label=\"v\"} notanumber\n",
		"2leadingdigit 1\n",
		"name{9bad=\"v\"} 1\n",
		"# TYPE name nonsense\n",
		"name 1\n# TYPE name counter\n",
		"# TYPE name counter\n# TYPE name counter\n",
		"name{l=\"bad escape \\q\"} 1\n",
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("validator accepted %q", bad)
		}
	}
	good := "# HELP m doc\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 3\nm_sum 1.5\nm_count 3\nplain 4 1700000000\n"
	if _, err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("validator rejected valid doc: %v", err)
	}
}

func TestNewObsServesRuntimeAndBusMetrics(t *testing.T) {
	o := New()
	o.Bus.Publish(Event{Type: EvJobAdmitted, Job: "j1"})
	rec := httptest.NewRecorder()
	o.Metrics.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.Bytes()
	if _, err := ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{"ecss_runtime_goroutines", "ecss_events_published_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ecss_conc_total", "c")
	h := r.Histogram("ecss_conc_seconds", "h", nil)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("counter %v, want 4000", c.Value())
	}
	if n := h.count.Load(); n != 4000 {
		t.Fatalf("histogram count %d, want 4000", n)
	}
}
