package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// collectSSE reads events from an SSE response until n events arrived or
// the stream ends.
func collectSSE(t *testing.T, body *bufio.Reader, n int) []Event {
	t.Helper()
	var out []Event
	err := ReadSSE(body, func(ev SSEvent) error {
		var e Event
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			return fmt.Errorf("bad event JSON %q: %w", ev.Data, err)
		}
		if e.Seq != ev.ID {
			return fmt.Errorf("frame id %d != payload seq %d", ev.ID, e.Seq)
		}
		if e.Type != ev.Type {
			return fmt.Errorf("frame event %q != payload type %q", ev.Type, e.Type)
		}
		out = append(out, e)
		if len(out) >= n {
			return ErrStopSSE
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ReadSSE: %v", err)
	}
	return out
}

func TestFirehoseSSEAndTypeFilter(t *testing.T) {
	b := NewBus(0)
	srv := httptest.NewServer(http.HandlerFunc(b.ServeFirehose))
	defer srv.Close()

	go func() {
		for i := 0; i < 20; i++ {
			b.Publish(Event{Type: EvJobAdmitted, Job: fmt.Sprintf("j%d", i)})
			b.Publish(Event{Type: EvJobDone, Job: fmt.Sprintf("j%d", i), Terminal: true})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	resp, err := http.Get(srv.URL + "?types=job.done")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := collectSSE(t, bufio.NewReader(resp.Body), 5)
	for _, e := range got {
		if e.Type != EvJobDone {
			t.Fatalf("type filter leaked %+v", e)
		}
	}
}

func TestFirehoseResumeWithLastEventID(t *testing.T) {
	b := NewBus(64)
	srv := httptest.NewServer(http.HandlerFunc(b.ServeFirehose))
	defer srv.Close()

	for i := 0; i < 6; i++ {
		b.Publish(Event{Type: EvJobAdmitted})
	}

	// First connection: resume from 0 replays everything retained.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	first := collectSSE(t, bufio.NewReader(resp.Body), 4)
	resp.Body.Close()
	if first[0].Seq != 1 || first[3].Seq != 4 {
		t.Fatalf("initial replay seqs %d..%d", first[0].Seq, first[3].Seq)
	}

	// Reconnect with the last seen id: the remaining retained events
	// arrive exactly once, no duplicates, no gap.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req2.Header.Set("Last-Event-ID", "4")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := collectSSE(t, bufio.NewReader(resp2.Body), 2)
	if rest[0].Seq != 5 || rest[1].Seq != 6 {
		t.Fatalf("resumed seqs %d,%d want 5,6", rest[0].Seq, rest[1].Seq)
	}
}

func TestJobStreamReplaysTerminalAndCloses(t *testing.T) {
	b := NewBus(0)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		b.ServeJobStream(w, r, r.PathValue("id"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	b.Publish(Event{Type: EvJobAdmitted, Job: "j1"})
	b.Publish(Event{Type: EvJobStarted, Job: "j1"})
	b.Publish(Event{Type: EvJobDone, Job: "j1", Terminal: true, MS: 1.5})

	// Finished job: the whole lifecycle replays and the server closes the
	// stream after the terminal event — ReadSSE returns on EOF.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/jobs/j1/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []Event
	if err := ReadSSE(bufio.NewReader(resp.Body), func(ev SSEvent) error {
		var e Event
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			return err
		}
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("ReadSSE: %v", err)
	}
	if len(got) != 3 || got[0].Type != EvJobAdmitted || !got[2].Terminal {
		t.Fatalf("terminal replay = %+v", got)
	}
}

func TestJobStreamLiveUntilTerminal(t *testing.T) {
	b := NewBus(0)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		b.ServeJobStream(w, r, r.PathValue("id"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	b.Publish(Event{Type: EvJobAdmitted, Job: "live"})
	resp, err := http.Get(srv.URL + "/v1/jobs/live/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Publish(Event{Type: EvJobStarted, Job: "live"})
		b.Publish(Event{Type: EvJobStage, Job: "other"}) // must not leak in
		b.Publish(Event{Type: EvJobDone, Job: "live", Terminal: true})
	}()
	var got []Event
	if err := ReadSSE(bufio.NewReader(resp.Body), func(ev SSEvent) error {
		var e Event
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			return err
		}
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("ReadSSE: %v", err)
	}
	want := []string{EvJobAdmitted, EvJobStarted, EvJobDone}
	if len(got) != 3 {
		t.Fatalf("live stream = %+v", got)
	}
	for i, e := range got {
		if e.Type != want[i] || e.Job != "live" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	var last uint64
	for _, e := range got {
		if e.Seq <= last {
			t.Fatalf("non-monotonic stream seq %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
}

func TestReadSSEIgnoresCommentsAndHeartbeats(t *testing.T) {
	stream := ": ping\n\nid: 3\nevent: job.done\ndata: {\"seq\":3,\"ts\":\"2026-01-01T00:00:00Z\",\"type\":\"job.done\",\"terminal\":true}\n\n: dropped 2\n\n"
	var got []SSEvent
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 3 || got[0].Type != "job.done" {
		t.Fatalf("parsed %+v", got)
	}
}

func TestReadSSECRLFLineEndings(t *testing.T) {
	// Proxies and Windows-side tooling normalize to CRLF; the SSE spec
	// admits CR LF as a line terminator and the parser must not leave a
	// stray \r inside field values or treat "\r\n\r\n" as a non-boundary.
	stream := "id: 7\r\nevent: job.stage\r\ndata: {\"type\":\"job.stage\"}\r\n\r\n" +
		": heartbeat\r\n\r\n" +
		"data: tail\r\n\r\n"
	var got []SSEvent
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d events, want 2: %+v", len(got), got)
	}
	if got[0].ID != 7 || got[0].Type != "job.stage" {
		t.Fatalf("first event = %+v", got[0])
	}
	if strings.ContainsRune(string(got[0].Data), '\r') || string(got[0].Data) != `{"type":"job.stage"}` {
		t.Fatalf("CR leaked into data: %q", got[0].Data)
	}
	if string(got[1].Data) != "tail" {
		t.Fatalf("second event data = %q", got[1].Data)
	}
}

func TestReadSSEMultiLineData(t *testing.T) {
	// Multiple data: fields in one frame concatenate with exactly one "\n"
	// between payload lines (and none trailing), per the SSE spec.
	stream := "event: note\ndata: line one\ndata: line two\ndata:\ndata: line four\n\n"
	var got []SSEvent
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d events, want 1", len(got))
	}
	if want := "line one\nline two\n\nline four"; string(got[0].Data) != want {
		t.Fatalf("joined data = %q, want %q", got[0].Data, want)
	}
	if got[0].Type != "note" {
		t.Fatalf("event type = %q", got[0].Type)
	}
}

func TestReadSSECommentOnlyStream(t *testing.T) {
	// A stream of heartbeats alone — what an idle firehose looks like —
	// must produce no events and terminate cleanly at EOF, including when
	// the final frame has no trailing blank line.
	stream := ": ping\n\n: ping\n\n: ping\n"
	calls := 0
	if err := ReadSSE(strings.NewReader(stream), func(ev SSEvent) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("comment-only stream produced %d events", calls)
	}
}
