package obs

import (
	"sync"
	"time"
)

// Bus defaults.
const (
	// DefaultRetain is the firehose replay ring's capacity: how far back a
	// reconnecting subscriber can resume via Last-Event-ID.
	DefaultRetain = 4096
	// DefaultSubBuffer is a subscriber's channel capacity when SubOptions
	// leaves it zero.
	DefaultSubBuffer = 64
	// traceJobs bounds how many jobs keep a retained trace; traceEvents
	// bounds one job's trace. Beyond traceEvents further non-terminal
	// events are dropped (counted) so the trace always ends at the
	// terminal event, never mid-lifecycle.
	traceJobs   = 2048
	traceEvents = 96
)

// Bus is a process-wide bounded fan-out event bus. Publish assigns each
// event a strictly monotonic sequence number, retains it in a replay ring
// (Last-Event-ID resume) and, for job events, in a per-job trace, then
// offers it to every matching subscriber without blocking: a subscriber
// whose buffer is full loses the event and has the loss counted — slow
// consumers degrade themselves, never the publishers or each other.
type Bus struct {
	mu     sync.Mutex
	seq    uint64
	ring   []Event // circular replay buffer
	start  int     // index of oldest retained event
	count  int     // retained events
	subs   map[*Sub]struct{}
	traces map[string][]Event // trace key (shard|job) -> ordered events
	order  []string           // FIFO of trace keys for eviction

	published    uint64
	dropped      uint64 // events lost to full subscriber buffers (summed)
	traceDropped uint64 // non-terminal events lost to the per-trace bound
}

// BusStats is the bus's own accounting, exported as metrics.
type BusStats struct {
	Published    uint64
	Dropped      uint64
	TraceDropped uint64
	Subscribers  int
	TraceJobs    int
}

// NewBus builds a bus retaining the last retain events for replay
// (<=0 selects DefaultRetain).
func NewBus(retain int) *Bus {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Bus{
		ring:   make([]Event, retain),
		subs:   make(map[*Sub]struct{}),
		traces: make(map[string][]Event),
	}
}

func traceKey(shard, job string) string { return shard + "|" + job }

// Publish stamps e with the next sequence number (and the current time,
// unless the publisher already set one — republished shard events keep
// their origin timestamp) and fans it out. It never blocks and returns the
// stamped event.
func (b *Bus) Publish(e Event) Event {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if e.TS.IsZero() {
		e.TS = time.Now()
	}
	b.published++

	// Replay ring.
	if b.count < len(b.ring) {
		b.ring[(b.start+b.count)%len(b.ring)] = e
		b.count++
	} else {
		b.ring[b.start] = e
		b.start = (b.start + 1) % len(b.ring)
	}

	// Per-job trace. A trace is sealed by its first terminal event: later
	// serving events for the same job (repeat cache hits) go to the
	// firehose only, so a replayed trace is exactly one lifecycle.
	if e.Job != "" {
		k := traceKey(e.Shard, e.Job)
		tr, ok := b.traces[k]
		switch {
		case ok && len(tr) > 0 && tr[len(tr)-1].Terminal:
			// sealed
		case len(tr) >= traceEvents && !e.Terminal:
			b.traceDropped++
		default:
			if !ok {
				if len(b.order) >= traceJobs {
					delete(b.traces, b.order[0])
					b.order = b.order[1:]
				}
				b.order = append(b.order, k)
			}
			b.traces[k] = append(tr, e)
		}
	}

	for s := range b.subs {
		if !s.matches(e) {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped++
			b.dropped++
		}
	}
	b.mu.Unlock()
	return e
}

// Trace returns a copy of the retained event trace of one job (events with
// an empty Shard tag — the publishing process's own jobs).
func (b *Bus) Trace(job string) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	tr := b.traces[traceKey("", job)]
	out := make([]Event, len(tr))
	copy(out, tr)
	return out
}

// Stats snapshots the bus accounting.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BusStats{
		Published:    b.published,
		Dropped:      b.dropped,
		TraceDropped: b.traceDropped,
		Subscribers:  len(b.subs),
		TraceJobs:    len(b.traces),
	}
}

// SubOptions filters and sizes a subscription.
type SubOptions struct {
	// Buffer is the channel capacity (0 selects DefaultSubBuffer). Events
	// published while the buffer is full are dropped for this subscriber
	// and counted in Dropped.
	Buffer int
	// Types restricts delivery to the listed event types (empty: all).
	Types []string
	// Job restricts delivery to one job id (the publishing process's own
	// jobs) and, with Replay, seeds the subscription with the job's
	// retained trace.
	Job string
	// Replay seeds the subscription with retained history before live
	// events: the job's trace when Job is set, else the replay ring.
	// Only retained events with Seq > FromSeq are replayed, so a
	// reconnecting consumer resumes where it left off (SSE Last-Event-ID).
	Replay  bool
	FromSeq uint64
}

// Sub is one subscription. Receive from C; Close when done.
type Sub struct {
	bus     *Bus
	ch      chan Event
	types   map[string]bool
	job     string
	dropped uint64
	closed  bool
}

// matches reports whether e passes the subscription's filters. Caller
// holds bus.mu.
func (s *Sub) matches(e Event) bool {
	if s.job != "" && (e.Job != s.job || e.Shard != "") {
		return false
	}
	return s.types == nil || s.types[e.Type]
}

// Subscribe registers a subscription. Replayed events are delivered
// in-order ahead of any live event: the seeding happens under the same
// lock that serializes Publish, so there is no gap and no duplication
// between history and the live feed.
func (b *Bus) Subscribe(o SubOptions) *Sub {
	if o.Buffer <= 0 {
		o.Buffer = DefaultSubBuffer
	}
	s := &Sub{bus: b, ch: make(chan Event, o.Buffer), job: o.Job}
	if len(o.Types) > 0 {
		s.types = make(map[string]bool, len(o.Types))
		for _, t := range o.Types {
			if t != "" {
				s.types[t] = true
			}
		}
	}
	b.mu.Lock()
	if o.Replay {
		replay := func(e Event) {
			if e.Seq <= o.FromSeq || !s.matches(e) {
				return
			}
			select {
			case s.ch <- e:
			default:
				s.dropped++
				b.dropped++
			}
		}
		if o.Job != "" {
			for _, e := range b.traces[traceKey("", o.Job)] {
				replay(e)
			}
		} else {
			for i := 0; i < b.count; i++ {
				replay(b.ring[(b.start+i)%len(b.ring)])
			}
		}
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// C is the delivery channel. It is closed by Close, never by the bus.
func (s *Sub) C() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full buffer.
func (s *Sub) Dropped() uint64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close unregisters the subscription and closes its channel. Safe to call
// once; pending buffered events remain readable until the channel drains.
func (s *Sub) Close() {
	s.bus.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(s.bus.subs, s)
		close(s.ch)
	}
	s.bus.mu.Unlock()
}
