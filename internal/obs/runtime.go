package obs

import (
	"runtime/metrics"
)

// runtimeMetric maps one runtime/metrics sample to an exposition family.
// Histogram-kind sources export their cumulative event count; unsupported
// names (older/newer toolchains) are skipped at scrape time, never fatal.
type runtimeMetric struct {
	src  string
	name string
	help string
	typ  string
}

var runtimeMetricSet = []runtimeMetric{
	{"/sched/goroutines:goroutines", "ecss_runtime_goroutines", "Live goroutines.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "ecss_runtime_heap_objects_bytes", "Bytes occupied by live heap objects and dead objects not yet swept.", "gauge"},
	{"/memory/classes/total:bytes", "ecss_runtime_memory_total_bytes", "All memory mapped by the Go runtime.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "ecss_runtime_gc_cycles_total", "Completed GC cycles.", "counter"},
	{"/gc/heap/allocs:bytes", "ecss_runtime_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", "counter"},
	{"/sched/pauses/total/gc:seconds", "ecss_runtime_gc_pauses_total", "Stop-the-world GC pauses observed (count from the runtime pause histogram).", "counter"},
	{"/sched/latencies:seconds", "ecss_runtime_sched_latency_samples_total", "Goroutine scheduling latency samples observed.", "counter"},
}

// RegisterRuntimeMetrics adds a runtime/metrics-sourced gauge set
// (goroutines, heap and total memory, GC cycles and pauses) to r, sampled
// at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	samples := make([]metrics.Sample, len(runtimeMetricSet))
	for i, m := range runtimeMetricSet {
		samples[i].Name = m.src
	}
	r.Collect(func(emit func(Sample)) {
		// Read refreshes in place; the slice is captured by the closure so
		// scrape allocations stay minimal.
		metrics.Read(samples)
		for i, m := range runtimeMetricSet {
			var v float64
			switch samples[i].Value.Kind() {
			case metrics.KindUint64:
				v = float64(samples[i].Value.Uint64())
			case metrics.KindFloat64:
				v = samples[i].Value.Float64()
			case metrics.KindFloat64Histogram:
				h := samples[i].Value.Float64Histogram()
				var n uint64
				for _, c := range h.Counts {
					n += c
				}
				v = float64(n)
			default:
				continue // KindBad: unsupported on this toolchain
			}
			emit(Sample{Name: m.name, Help: m.help, Type: m.typ, Value: v})
		}
	})
}

// Obs bundles the per-process bus and metrics registry. New wires the
// bus's own accounting and the runtime gauge set into the registry, so
// every daemon exposes them uniformly.
type Obs struct {
	Bus     *Bus
	Metrics *Registry
}

// New builds a process observability hub.
func New() *Obs {
	o := &Obs{Bus: NewBus(0), Metrics: NewRegistry()}
	RegisterRuntimeMetrics(o.Metrics)
	bus := o.Bus
	o.Metrics.Collect(func(emit func(Sample)) {
		st := bus.Stats()
		emit(Sample{Name: "ecss_events_published_total", Help: "Events published to the bus.", Type: "counter", Value: float64(st.Published)})
		emit(Sample{Name: "ecss_events_dropped_total", Help: "Events lost to full subscriber buffers (slow-consumer policy).", Type: "counter", Value: float64(st.Dropped)})
		emit(Sample{Name: "ecss_events_trace_dropped_total", Help: "Events lost to the per-job trace bound.", Type: "counter", Value: float64(st.TraceDropped)})
		emit(Sample{Name: "ecss_events_subscribers", Help: "Live bus subscriptions.", Type: "gauge", Value: float64(st.Subscribers)})
		emit(Sample{Name: "ecss_events_trace_jobs", Help: "Jobs with a retained event trace.", Type: "gauge", Value: float64(st.TraceJobs)})
	})
	return o
}
