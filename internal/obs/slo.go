package obs

// SLO layer: declared service-level objectives with multi-window error-
// budget burn rates computed at scrape time (DESIGN.md §12.4). An SLO
// counts good and bad events into a ring of coarse time buckets; the
// registered collector derives, per declared window, the error ratio and
// the burn rate — the ratio divided by the objective's error budget, the
// standard multi-window multi-burn-rate alerting input (a burn rate of 1
// consumes exactly the whole budget over the SLO period; 14.4 exhausts a
// 30-day budget in 2 days). alerts/ecss.rules.yml pairs fast and slow
// windows on the exported ecss_slo_burn_rate gauge.

import (
	"strings"
	"sync"
	"time"
)

// windowLabel renders a window as a compact label value: "5m", "6h" —
// time.Duration.String with the trailing zero units trimmed.
func windowLabel(w time.Duration) string {
	s := w.String()
	if strings.HasSuffix(s, "m0s") {
		s = strings.TrimSuffix(s, "0s")
	}
	if strings.HasSuffix(s, "h0m") {
		s = strings.TrimSuffix(s, "0m")
	}
	return s
}

// sloBucketWidth is the ring resolution. Windows are rounded up to whole
// buckets; the newest (partial) bucket is always included, so short-window
// burn rates respond within seconds of a bad burst.
const sloBucketWidth = 5 * time.Second

// DefaultSLOWindows are the burn-rate windows exported when the declaring
// subsystem does not choose its own: the classic fast (5m), intermediate
// (30m), and slow (6h) pairing set.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, 30 * time.Minute, 6 * time.Hour}

type sloBucket struct {
	idx       int64 // bucket timestamp: unixNano / sloBucketWidth
	good, bad int64
}

// SLO is one declared objective: a target fraction of good events.
// Subsystems classify each observed event as good or bad (a served
// request, a request under its latency threshold); the SLO keeps lifetime
// totals plus a bounded ring of recent buckets for windowed burn rates.
type SLO struct {
	name      string
	objective float64 // target good fraction in (0,1)
	windows   []time.Duration

	mu      sync.Mutex
	ring    []sloBucket
	good    int64 // lifetime totals
	bad     int64
	nowFunc func() time.Time // test hook; nil means time.Now
}

// NewSLO declares an objective (e.g. 0.99 = 99% good) and registers its
// exposition on reg: ecss_slo_objective, ecss_slo_events_total
// {outcome=good|bad}, and per window ecss_slo_error_ratio and
// ecss_slo_burn_rate, all labeled {slo=name}. Objectives outside (0,1)
// are clamped to 0.999. windows nil selects DefaultSLOWindows.
func NewSLO(reg *Registry, name string, objective float64, windows ...time.Duration) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.999
	}
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	longest := windows[0]
	for _, w := range windows {
		if w > longest {
			longest = w
		}
	}
	s := &SLO{
		name:      name,
		objective: objective,
		windows:   append([]time.Duration(nil), windows...),
		ring:      make([]sloBucket, longest/sloBucketWidth+2),
	}
	if reg != nil {
		reg.Collect(s.collect)
	}
	return s
}

func (s *SLO) now() time.Time {
	if s.nowFunc != nil {
		return s.nowFunc()
	}
	return time.Now()
}

// Name returns the declared objective's name.
func (s *SLO) Name() string { return s.name }

// Objective returns the declared good-event target fraction.
func (s *SLO) Objective() float64 { return s.objective }

// Observe records one classified event.
func (s *SLO) Observe(good bool) {
	idx := s.now().UnixNano() / int64(sloBucketWidth)
	s.mu.Lock()
	b := &s.ring[idx%int64(len(s.ring))]
	if b.idx != idx {
		b.idx, b.good, b.bad = idx, 0, 0
	}
	if good {
		b.good++
		s.good++
	} else {
		b.bad++
		s.bad++
	}
	s.mu.Unlock()
}

// ObserveLatency classifies a duration against a threshold: good iff
// d <= threshold.
func (s *SLO) ObserveLatency(d, threshold time.Duration) { s.Observe(d <= threshold) }

// windowCounts sums the ring buckets younger than w, including the current
// partial bucket. Caller holds s.mu.
func (s *SLO) windowCounts(nowIdx int64, w time.Duration) (good, bad int64) {
	span := int64(w / sloBucketWidth)
	if span < 1 {
		span = 1
	}
	lo := nowIdx - span + 1
	for i := range s.ring {
		b := &s.ring[i]
		if b.idx >= lo && b.idx <= nowIdx {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// BurnRate returns the error-budget burn rate over window w: the bad-event
// ratio divided by the budget (1 - objective). 0 when the window saw no
// events.
func (s *SLO) BurnRate(w time.Duration) float64 {
	nowIdx := s.now().UnixNano() / int64(sloBucketWidth)
	s.mu.Lock()
	good, bad := s.windowCounts(nowIdx, w)
	s.mu.Unlock()
	if good+bad == 0 {
		return 0
	}
	return (float64(bad) / float64(good+bad)) / (1 - s.objective)
}

// collect is the registered scrape-time exposition.
func (s *SLO) collect(emit func(Sample)) {
	l := L("slo", s.name)
	nowIdx := s.now().UnixNano() / int64(sloBucketWidth)
	s.mu.Lock()
	good, bad := s.good, s.bad
	type wrow struct {
		label      string
		ratio, br  float64
		seenEvents bool
	}
	rows := make([]wrow, 0, len(s.windows))
	for _, w := range s.windows {
		wg, wb := s.windowCounts(nowIdx, w)
		row := wrow{label: windowLabel(w)}
		if wg+wb > 0 {
			row.seenEvents = true
			row.ratio = float64(wb) / float64(wg+wb)
			row.br = row.ratio / (1 - s.objective)
		}
		rows = append(rows, row)
	}
	s.mu.Unlock()
	emit(Sample{Name: "ecss_slo_objective", Help: "Declared good-event target fraction per SLO.",
		Type: "gauge", Value: s.objective, Labels: []Label{l}})
	emit(Sample{Name: "ecss_slo_events_total", Help: "Events classified against each SLO.",
		Type: "counter", Value: float64(good), Labels: []Label{l, L("outcome", "good")}})
	emit(Sample{Name: "ecss_slo_events_total", Help: "Events classified against each SLO.",
		Type: "counter", Value: float64(bad), Labels: []Label{l, L("outcome", "bad")}})
	for _, row := range rows {
		wl := L("window", row.label)
		emit(Sample{Name: "ecss_slo_error_ratio", Help: "Bad-event fraction per SLO over each declared window.",
			Type: "gauge", Value: row.ratio, Labels: []Label{l, wl}})
		emit(Sample{Name: "ecss_slo_burn_rate", Help: "Error-budget burn rate per SLO over each declared window (1 = budget consumed exactly at period end).",
			Type: "gauge", Value: row.br, Labels: []Label{l, wl}})
	}
}
