// Package obs is the process-wide observability layer behind the serving
// stack (DESIGN.md §11): a bounded fan-out event Bus carrying typed
// lifecycle events with monotonic sequence numbers, per-job event traces,
// SSE serving and parsing, a Prometheus-text metrics Registry, and
// runtime-sourced gauges. The service, store, and router publish into one
// Bus per process; cmd/ecssd and cmd/ecssrouter expose it at /v1/events
// (firehose), /v1/jobs/{id}/stream (per-job SSE), /v1/jobs/{id}/trace
// (ordered span timeline), and /metrics.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"time"
)

// Event types. The taxonomy is part of the operational API: names are
// dotted <subsystem>.<what>, stable across releases, and every event a
// subsystem acknowledges having processed is replayable from its trace.
const (
	// Job lifecycle (service). Admitted/started/stage/retry narrate a solve
	// (job.stage fires when a pipeline stage completes, carrying its wall
	// time and engine cost); done/failed/expired/shed/canceled are
	// terminal; cached marks a
	// submission served without a solve (memory cache or disk store — the
	// job is terminal the moment it exists); coalesced marks a submission
	// attached to an identical in-flight job.
	EvJobAdmitted  = "job.admitted"
	EvJobStarted   = "job.started"
	EvJobStage     = "job.stage"
	EvJobRetry     = "job.retry"
	EvJobDone      = "job.done"
	EvJobFailed    = "job.failed"
	EvJobExpired   = "job.expired"
	EvJobShed      = "job.shed"
	EvJobCanceled  = "job.canceled"
	EvJobCached    = "job.cached"
	EvJobCoalesced = "job.coalesced"

	// Result store. store.evict names each removed key; store.evict_pressure
	// summarizes one eviction pass (Bytes reclaimed, Count victims, Budget
	// enforced) so byte-pressure cycling is one event, not N.
	EvStoreWrite         = "store.write"
	EvStoreWriteError    = "store.write_error"
	EvStoreEvict         = "store.evict"
	EvStoreEvictPressure = "store.evict_pressure"
	EvStoreQuarantine    = "store.quarantine"
	EvStoreRestore       = "store.restore"
	EvStoreReverifyDrop  = "store.reverify_delete"

	// Routing tier.
	EvRouterRetry           = "router.retry"
	EvRouterHedge           = "router.hedge"
	EvRouterHedgeWon        = "router.hedge_won"
	EvRouterAttemptCanceled = "router.attempt_canceled"
	EvRouterEject           = "router.eject"
	EvRouterShardDrain      = "router.shard_drain"
	EvRouterShardRecovered  = "router.shard_recovered"
	EvRouterNoShard         = "router.no_shard"
	EvRouterDrain           = "router.drain"

	// Process-level.
	EvServiceDrain = "service.drain"
)

// Event is one observable occurrence. Seq is assigned by the publishing
// Bus and is strictly monotonic per process; a router republishing a
// shard's events re-stamps Seq on its own bus and preserves the original
// in ShardSeq, tagged with Shard.
type Event struct {
	Seq  uint64    `json:"seq"`
	TS   time.Time `json:"ts"`
	Type string    `json:"type"`

	// Job is the (shard-local) job id the event belongs to, when any.
	Job string `json:"job,omitempty"`
	// Req is the request id minted at admission or propagated from the
	// router via the X-ECSS-Request-Id header: every event of one client
	// request — including both attempts of a hedged forward — shares it.
	Req string `json:"req,omitempty"`
	// Shard tags router-aggregated events with the origin shard's address;
	// ShardSeq preserves the shard bus's own sequence number.
	Shard    string `json:"shard,omitempty"`
	ShardSeq uint64 `json:"shard_seq,omitempty"`

	// Stage is the pipeline stage for job.stage events.
	Stage string `json:"stage,omitempty"`
	// Key is a content-address prefix (store and admission events).
	Key string `json:"key,omitempty"`
	// Class is the admission priority class of job events.
	Class string `json:"class,omitempty"`
	// Err carries the failure cause of *_error / failed / expired events.
	Err string `json:"error,omitempty"`
	// MS is a duration in milliseconds where one is meaningful (job.done,
	// job.failed: solve wall time; job.stage: the completed stage's wall
	// time).
	MS float64 `json:"ms,omitempty"`
	// Bytes, Count, and Budget carry the numeric payload of summary events
	// (store.evict_pressure: bytes reclaimed, entries evicted, byte budget).
	Bytes  int64 `json:"bytes,omitempty"`
	Count  int   `json:"count,omitempty"`
	Budget int64 `json:"budget,omitempty"`
	// Rounds and Msgs carry the engine cost dimension of job.stage (the
	// completed stage's simulated+charged rounds and delivered messages)
	// and job.done events (whole-solve totals) — the paper's own CONGEST
	// cost measures surfaced on the firehose.
	Rounds int64 `json:"rounds,omitempty"`
	Msgs   int64 `json:"msgs,omitempty"`
	// Terminal marks the event that ends a job's lifecycle; a per-job SSE
	// stream closes after relaying it.
	Terminal bool `json:"terminal,omitempty"`
}

// RequestIDHeader is the HTTP header carrying the request id end to end:
// minted by whichever tier sees the request first (router or shard),
// stamped on every event and every retried or hedged backend attempt, and
// echoed on the response.
const RequestIDHeader = "X-ECSS-Request-Id"

// ShardHeader is set by the router on relayed responses to name the shard
// whose attempt won.
const ShardHeader = "X-ECSS-Shard"

// NewRequestID mints a 16-hex-char random request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// time-derived id rather than panicking on an exotic one.
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}
