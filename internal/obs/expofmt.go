package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ExpoStats summarizes a validated exposition document.
type ExpoStats struct {
	Families int
	Samples  int
}

// ValidateExposition parses a Prometheus text-format (v0.0.4) document and
// returns an error naming the first malformed line. It checks metric and
// label name syntax, label quoting and escapes, value parseability
// (including +Inf/-Inf/NaN), TYPE declarations (known type, at most one
// per family, declared before the family's samples), and that histogram
// series use only the _bucket/_sum/_count suffixes of their family. CI
// scrapes /metrics through this (loadgen -check-metrics) so an
// unparseable exposition fails the build, not the first real scraper.
func ValidateExposition(doc []byte) (ExpoStats, error) {
	var st ExpoStats
	typed := make(map[string]string) // family -> type
	sampled := make(map[string]bool) // families that already emitted samples
	for i, raw := range strings.Split(string(doc), "\n") {
		lineNo := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			fields := strings.Fields(rest)
			if len(fields) >= 1 && (fields[0] == "TYPE" || fields[0] == "HELP") {
				if len(fields) < 2 || !validName(fields[1]) {
					return st, fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[0], line)
				}
				if fields[0] == "TYPE" {
					if len(fields) != 3 {
						return st, fmt.Errorf("line %d: TYPE wants 'TYPE name type': %q", lineNo, line)
					}
					switch fields[2] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return st, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[2])
					}
					if _, dup := typed[fields[1]]; dup {
						return st, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[1])
					}
					if sampled[fields[1]] {
						return st, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, fields[1])
					}
					typed[fields[1]] = fields[2]
					st.Families++
				}
			}
			continue
		}
		name, rest, err := parseSeriesName(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %w: %q", lineNo, err, line)
		}
		fam := histogramFamily(name, typed)
		sampled[fam] = true
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return st, fmt.Errorf("line %d: want 'series value [timestamp]': %q", lineNo, line)
		}
		if _, err := parseExpoValue(fields[0]); err != nil {
			return st, fmt.Errorf("line %d: bad value %q: %w", lineNo, fields[0], err)
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return st, fmt.Errorf("line %d: bad timestamp %q", lineNo, fields[1])
			}
		}
		st.Samples++
	}
	return st, nil
}

// histogramFamily maps a histogram/summary series name back to its family
// (stripping _bucket/_sum/_count) when that family was TYPE-declared.
func histogramFamily(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// parseSeriesName consumes `name` or `name{label="value",...}` and returns
// the series name plus the remaining (value/timestamp) text.
func parseSeriesName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", "", fmt.Errorf("series with no value")
	}
	name = line[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] != '{' {
		return name, line[i:], nil
	}
	// Scan the label block respecting quoting and escapes.
	j := i + 1
	for j < len(line) {
		// label name
		k := j
		for k < len(line) && line[k] != '=' && line[k] != '}' {
			k++
		}
		if k < len(line) && line[k] == '}' && strings.TrimSpace(line[j:k]) == "" {
			j = k // empty label set or trailing comma
			break
		}
		if k >= len(line) || line[k] != '=' {
			return "", "", fmt.Errorf("unterminated label name")
		}
		if !validName(strings.TrimSpace(line[j:k])) || strings.Contains(line[j:k], ":") {
			return "", "", fmt.Errorf("invalid label name %q", strings.TrimSpace(line[j:k]))
		}
		k++
		if k >= len(line) || line[k] != '"' {
			return "", "", fmt.Errorf("label value not quoted")
		}
		k++
		for k < len(line) {
			if line[k] == '\\' {
				if k+1 >= len(line) {
					return "", "", fmt.Errorf("dangling escape in label value")
				}
				switch line[k+1] {
				case '\\', '"', 'n':
				default:
					return "", "", fmt.Errorf("bad escape \\%c in label value", line[k+1])
				}
				k += 2
				continue
			}
			if line[k] == '"' {
				break
			}
			k++
		}
		if k >= len(line) {
			return "", "", fmt.Errorf("unterminated label value")
		}
		k++ // closing quote
		if k < len(line) && line[k] == ',' {
			j = k + 1
			continue
		}
		j = k
		break
	}
	if j >= len(line) || line[j] != '}' {
		return "", "", fmt.Errorf("unterminated label set")
	}
	return name, line[j+1:], nil
}

// SumSeries sums the values of every sample line of the named series
// across its label sets (e.g. all shards of a shard-tagged counter),
// reporting whether any sample was found. Histogram families are summed by
// their exact series name (pass "fam_count", not "fam"). Non-finite values
// are skipped. Malformed lines are ignored: callers validating the
// document use ValidateExposition first.
func SumSeries(doc []byte, name string) (sum float64, found bool) {
	for _, raw := range strings.Split(string(doc), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, rest, err := parseSeriesName(line)
		if err != nil || n != name {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		sum += v
		found = true
	}
	return sum, found
}

// ExpoSeriesNames returns every name addressable in the document: each
// TYPE-declared family plus every sampled series name (so histogram
// families appear both bare and with their _bucket/_sum/_count suffixes).
// The alert-rules drift check resolves referenced metric names against
// this set.
func ExpoSeriesNames(doc []byte) map[string]bool {
	names := make(map[string]bool)
	for _, raw := range strings.Split(string(doc), "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) == 3 && fields[0] == "TYPE" && validName(fields[1]) {
				names[fields[1]] = true
			}
			continue
		}
		if n, _, err := parseSeriesName(line); err == nil {
			names[n] = true
		}
	}
	return names
}

func parseExpoValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 0, nil
	case "-Inf":
		return 0, nil
	case "NaN", "nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
