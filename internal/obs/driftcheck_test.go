package obs_test

// Alert-rules / registry drift check: every ecss_* metric family referenced
// anywhere in alerts/ecss.rules.yml must exist in the registered exposition
// of at least one daemon (ecssd's service registry or ecssrouter's). A rule
// watching a family nobody exports would silently never fire; this test
// turns that drift into a build failure.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"testing"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/faults"
	"twoecss/internal/graph"
	"twoecss/internal/obs"
	"twoecss/internal/router"
	"twoecss/internal/service"
	"twoecss/internal/store"
)

// scrape renders one registry's /metrics through its HTTP handler, failing
// on an invalid exposition.
func scrape(t *testing.T, h http.Handler) []byte {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(doc); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	return doc
}

func TestAlertRulesReferenceOnlyExportedFamilies(t *testing.T) {
	rules, err := os.ReadFile("../../alerts/ecss.rules.yml")
	if err != nil {
		t.Fatal(err)
	}
	// Trailing [a-z0-9] keeps glob prefixes like "ecss_engine_*" in prose
	// comments from matching as (truncated) family names.
	referenced := regexp.MustCompile(`\becss_[a-z0-9_]*[a-z0-9]\b`).FindAll(rules, -1)
	if len(referenced) == 0 {
		t.Fatal("no ecss_* families referenced in alerts/ecss.rules.yml — parse failure?")
	}

	// Arm a fault plan so the conditional ecss_fault_* families register.
	// The huge after= count means traversals are tallied as hits but the
	// fault never actually fires, so the solve below runs clean.
	if err := faults.Arm("solve.stage:error,after=1000000000"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()

	// ecssd's exposition: a service with a disk store (store families) that
	// has run one real solve (stage/engine histograms are get-or-create).
	st, err := store.OpenWith(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 1, Store: st})
	g, err := graph.ByFamily("ring", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := svc.Submit(g, ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("drift-check solve did not finish")
	}
	shardDoc := scrape(t, svc.Handler())

	// ecssrouter's exposition, fronting the live service as its one shard so
	// the shard-tagged engine aggregation has something to scrape.
	shardSrv := httptest.NewServer(svc.Handler())
	defer shardSrv.Close()
	rt, err := router.New(router.Config{ProbeInterval: time.Hour}, []string{shardSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerDoc := scrape(t, rt.Handler())

	exported := obs.ExpoSeriesNames(shardDoc)
	for name := range obs.ExpoSeriesNames(routerDoc) {
		exported[name] = true
	}

	missing := map[string]bool{}
	for _, ref := range referenced {
		if name := string(ref); !exported[name] {
			missing[name] = true
		}
	}
	if len(missing) > 0 {
		names := make([]string, 0, len(missing))
		for n := range missing {
			names = append(names, n)
		}
		sort.Strings(names)
		t.Fatalf("alerts/ecss.rules.yml references families absent from both daemons' expositions: %v", names)
	}

	// Sanity: the rules do reference this PR's new families, so the check
	// above actually exercises them.
	for _, want := range []string{"ecss_slo_burn_rate", "ecss_engine_rounds_total"} {
		if !bytes.Contains(rules, []byte(want)) {
			t.Fatalf("alert rules no longer reference %s — drift check weakened", want)
		}
	}
}
