package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SSE framing: every event is written as
//
//	id: <bus sequence number>
//	event: <event type>
//	data: <the Event as one JSON object>
//
// followed by a blank line. The id doubles as the resume cursor: a client
// reconnecting with Last-Event-ID (or ?from=N) replays every retained
// event with a larger sequence number before going live, so a short
// disconnect loses nothing that is still inside the replay ring.

// heartbeatEvery paces the ": ping" comment lines that keep idle streams
// alive through proxies and surface dead client connections.
const heartbeatEvery = 15 * time.Second

func writeSSE(w io.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

// sseSetup readies w for an event stream, returning its flusher.
func sseSetup(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusNotImplemented)
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	return fl, true
}

// fromSeq extracts the resume cursor from Last-Event-ID or ?from=.
func fromSeq(r *http.Request) (uint64, bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("from")
	}
	if raw == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ServeFirehose streams the bus over SSE: every event (optionally
// restricted by ?types=a,b,c), resumable via Last-Event-ID. The stream
// runs until the client disconnects; a slow client drops events (the
// stream interleaves ": dropped N" comments so the loss is visible
// in-band as well as in the metrics).
func (b *Bus) ServeFirehose(w http.ResponseWriter, r *http.Request) {
	var types []string
	if raw := r.URL.Query().Get("types"); raw != "" {
		types = strings.Split(raw, ",")
	}
	from, resume := fromSeq(r)
	sub := b.Subscribe(SubOptions{
		Buffer:  256,
		Types:   types,
		Replay:  resume,
		FromSeq: from,
	})
	defer sub.Close()
	fl, ok := sseSetup(w)
	if !ok {
		return
	}
	b.streamSub(w, r, fl, sub, false)
}

// ServeJobStream streams one job's lifecycle over SSE: the retained trace
// replays first (so an already-finished job immediately yields its events
// through the terminal one), then live events follow until the job
// reaches a terminal state, which closes the stream.
func (b *Bus) ServeJobStream(w http.ResponseWriter, r *http.Request, job string) {
	from, _ := fromSeq(r)
	sub := b.Subscribe(SubOptions{
		Buffer:  DefaultSubBuffer,
		Job:     job,
		Replay:  true,
		FromSeq: from,
	})
	defer sub.Close()
	fl, ok := sseSetup(w)
	if !ok {
		return
	}
	b.streamSub(w, r, fl, sub, true)
}

// streamSub drains sub to the client until disconnect — or, when
// untilTerminal is set, until a terminal event has been relayed.
func (b *Bus) streamSub(w http.ResponseWriter, r *http.Request, fl http.Flusher, sub *Sub, untilTerminal bool) {
	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	var reported uint64
	for {
		select {
		case e, ok := <-sub.ch:
			if !ok {
				return
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			if d := sub.Dropped(); d > reported {
				reported = d
				fmt.Fprintf(w, ": dropped %d\n\n", d)
			}
			fl.Flush()
			if untilTerminal && e.Terminal {
				return
			}
		case <-hb.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// ServeOneEvent writes a single-event SSE response and ends the stream.
// Serving layers use it to synthesize a terminal event for a finished job
// whose retained trace is gone: the stream contract ("ends in a terminal
// event") holds even when the bus no longer remembers the lifecycle.
func ServeOneEvent(w http.ResponseWriter, e Event) {
	if e.TS.IsZero() {
		e.TS = time.Now()
	}
	fl, ok := sseSetup(w)
	if !ok {
		return
	}
	if err := writeSSE(w, e); err == nil {
		fl.Flush()
	}
}

// SSEvent is one parsed server-sent event.
type SSEvent struct {
	ID   uint64
	Type string
	Data []byte
}

// ErrStopSSE stops ReadSSE without error: the consumer saw what it was
// waiting for (a terminal job event, typically).
var ErrStopSSE = errors.New("obs: stop reading stream")

// ReadSSE parses a server-sent event stream, invoking fn per event until
// EOF, a read error, or fn returning an error (ErrStopSSE reads as a
// clean stop). Comment lines and unknown fields are ignored, multi-line
// data is concatenated with newlines per the SSE spec.
func ReadSSE(r io.Reader, fn func(SSEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev SSEvent
	var data [][]byte
	flush := func() error {
		if len(data) == 0 && ev.Type == "" && ev.ID == 0 {
			return nil
		}
		ev.Data = bytes.Join(data, []byte("\n"))
		err := fn(ev)
		ev = SSEvent{}
		data = nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopSSE) {
					return nil
				}
				return err
			}
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			if n, err := strconv.ParseUint(value, 10, 64); err == nil {
				ev.ID = n
			}
		case "event":
			ev.Type = value
		case "data":
			data = append(data, []byte(value))
		}
	}
	if err := flush(); err != nil && !errors.Is(err, ErrStopSSE) {
		return err
	}
	return sc.Err()
}
