package obs

import (
	"fmt"
	"sync"
	"testing"
)

// drain empties whatever is currently buffered on sub.
func drain(sub *Sub) []Event {
	var out []Event
	for {
		select {
		case e := <-sub.ch:
			out = append(out, e)
		default:
			return out
		}
	}
}

func TestPublishAssignsMonotonicSeq(t *testing.T) {
	b := NewBus(16)
	var last uint64
	for i := 0; i < 50; i++ {
		e := b.Publish(Event{Type: EvJobAdmitted, Job: "j1"})
		if e.Seq != last+1 {
			t.Fatalf("seq %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	if st := b.Stats(); st.Published != 50 {
		t.Fatalf("published = %d, want 50", st.Published)
	}
}

func TestSequenceMonotonicUnderConcurrentPublishers(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(SubOptions{Buffer: 1 << 14})
	defer sub.Close()
	const publishers, perPublisher = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(Event{Type: EvJobStage, Job: fmt.Sprintf("j%d", p), Stage: "bfs"})
			}
		}(p)
	}
	wg.Wait()
	got := drain(sub)
	if len(got) != publishers*perPublisher {
		t.Fatalf("delivered %d events, want %d (dropped %d)", len(got), publishers*perPublisher, sub.Dropped())
	}
	// Delivery order must be publish order: strictly increasing, no dups,
	// no gaps — the bus holds its lock across stamp-and-fanout.
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestSlowConsumerDropAccounting(t *testing.T) {
	b := NewBus(0)
	slow := b.Subscribe(SubOptions{Buffer: 4})
	fast := b.Subscribe(SubOptions{Buffer: 64})
	defer slow.Close()
	defer fast.Close()
	for i := 0; i < 32; i++ {
		b.Publish(Event{Type: EvJobAdmitted})
	}
	if got := len(drain(slow)); got != 4 {
		t.Fatalf("slow consumer buffered %d, want 4", got)
	}
	if d := slow.Dropped(); d != 28 {
		t.Fatalf("slow consumer dropped %d, want 28", d)
	}
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast consumer dropped %d, want 0", d)
	}
	if st := b.Stats(); st.Dropped != 28 {
		t.Fatalf("bus dropped %d, want 28", st.Dropped)
	}
	// The slow consumer hurt only itself.
	if got := len(drain(fast)); got != 32 {
		t.Fatalf("fast consumer got %d, want 32", got)
	}
}

func TestTypeFiltering(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(SubOptions{Types: []string{EvJobDone, EvJobFailed}})
	defer sub.Close()
	b.Publish(Event{Type: EvJobAdmitted, Job: "j1"})
	b.Publish(Event{Type: EvJobStage, Job: "j1"})
	b.Publish(Event{Type: EvJobDone, Job: "j1", Terminal: true})
	b.Publish(Event{Type: EvJobFailed, Job: "j2", Terminal: true})
	got := drain(sub)
	if len(got) != 2 || got[0].Type != EvJobDone || got[1].Type != EvJobFailed {
		t.Fatalf("filtered delivery = %+v", got)
	}
}

func TestJobFilterAndTraceReplay(t *testing.T) {
	b := NewBus(0)
	b.Publish(Event{Type: EvJobAdmitted, Job: "j1"})
	b.Publish(Event{Type: EvJobAdmitted, Job: "j2"})
	b.Publish(Event{Type: EvJobStarted, Job: "j1"})
	b.Publish(Event{Type: EvJobDone, Job: "j1", Terminal: true})

	// Replay of a finished job yields its whole lifecycle, nothing else.
	sub := b.Subscribe(SubOptions{Job: "j1", Replay: true})
	got := drain(sub)
	sub.Close()
	want := []string{EvJobAdmitted, EvJobStarted, EvJobDone}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Type != want[i] || e.Job != "j1" {
			t.Fatalf("event %d = %+v, want type %s", i, e, want[i])
		}
	}

	// A sealed trace ignores later serving events.
	b.Publish(Event{Type: EvJobCached, Job: "j1", Terminal: true})
	if tr := b.Trace("j1"); len(tr) != 3 {
		t.Fatalf("trace grew to %d after seal", len(tr))
	}

	// Live filtering: only j2 events arrive on a j2 subscription.
	sub2 := b.Subscribe(SubOptions{Job: "j2", Replay: true})
	defer sub2.Close()
	b.Publish(Event{Type: EvJobStarted, Job: "j2"})
	b.Publish(Event{Type: EvJobStarted, Job: "j3"})
	got2 := drain(sub2)
	if len(got2) != 2 || got2[0].Type != EvJobAdmitted || got2[1].Type != EvJobStarted {
		t.Fatalf("j2 subscription saw %+v", got2)
	}
}

func TestReplayFromSeqSkipsDelivered(t *testing.T) {
	b := NewBus(64)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: EvJobAdmitted})
	}
	sub := b.Subscribe(SubOptions{Replay: true, FromSeq: 7})
	defer sub.Close()
	got := drain(sub)
	if len(got) != 3 || got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("resume from 7 delivered %+v", got)
	}
}

func TestRingEviction(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 20; i++ {
		b.Publish(Event{Type: EvJobAdmitted})
	}
	sub := b.Subscribe(SubOptions{Replay: true})
	defer sub.Close()
	got := drain(sub)
	if len(got) != 8 || got[0].Seq != 13 || got[7].Seq != 20 {
		t.Fatalf("ring replay = %d events, first %d last %d", len(got), got[0].Seq, got[len(got)-1].Seq)
	}
}

func TestTraceBoundKeepsTerminal(t *testing.T) {
	b := NewBus(0)
	for i := 0; i < traceEvents+50; i++ {
		b.Publish(Event{Type: EvJobStage, Job: "big"})
	}
	b.Publish(Event{Type: EvJobDone, Job: "big", Terminal: true})
	tr := b.Trace("big")
	if len(tr) != traceEvents+1 {
		t.Fatalf("trace len %d, want %d", len(tr), traceEvents+1)
	}
	if !tr[len(tr)-1].Terminal {
		t.Fatal("bounded trace lost its terminal event")
	}
	if st := b.Stats(); st.TraceDropped != 50 {
		t.Fatalf("trace dropped %d, want 50", st.TraceDropped)
	}
}

func TestTraceJobEviction(t *testing.T) {
	b := NewBus(0)
	for i := 0; i < traceJobs+10; i++ {
		b.Publish(Event{Type: EvJobAdmitted, Job: fmt.Sprintf("j%05d", i)})
	}
	if got := len(b.Trace("j00000")); got != 0 {
		t.Fatalf("oldest trace survived eviction with %d events", got)
	}
	if got := len(b.Trace(fmt.Sprintf("j%05d", traceJobs+9))); got != 1 {
		t.Fatalf("newest trace has %d events", got)
	}
}

func TestSubscribeCloseConcurrentWithPublish(t *testing.T) {
	b := NewBus(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			b.Publish(Event{Type: EvJobStage, Job: "j"})
		}
	}()
	for i := 0; i < 100; i++ {
		sub := b.Subscribe(SubOptions{Buffer: 2})
		drain(sub)
		sub.Close()
	}
	wg.Wait()
	if st := b.Stats(); st.Subscribers != 0 {
		t.Fatalf("%d subscribers left registered", st.Subscribers)
	}
}
