package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keep cardinality bounded: label values
// are priority classes, pipeline stages, fault points, shard addresses —
// never job or request ids.
type Label struct{ Name, Value string }

// L is shorthand for a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one scrape-time measurement emitted by a Collector. Type is
// "counter" or "gauge" (histograms are native instruments only).
type Sample struct {
	Name   string
	Help   string
	Type   string
	Labels []Label
	Value  float64
}

// Collector emits samples at scrape time. The service and router register
// one each, absorbing their existing stats counters into /metrics without
// double bookkeeping.
type Collector func(emit func(Sample))

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Observe is
// lock-free; buckets are cumulative at exposition time.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	} else {
		h.buckets[len(h.bounds)].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// DurationBuckets is the default latency bucket ladder (seconds): 100µs to
// 30s, wide enough for sub-ms stage hops and multi-second cold solves.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

type familyMeta struct {
	help string
	typ  string
}

type instrument struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry is a metrics registry with Prometheus text exposition. All
// methods are safe for concurrent use; instrument getters are
// get-or-create and panic on a name/type conflict (programmer error,
// caught by the first scrape test).
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*familyMeta
	instr      map[string]*instrument // name + rendered labels
	names      []string               // family registration order (sorted at scrape)
	collectors []Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*familyMeta), instr: make(map[string]*instrument)}
}

// Collect registers a scrape-time sample source.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup returns the instrument for (name, labels), creating it (and the
// family) on first use. Caller must hold no registry lock.
func (r *Registry) lookup(name, help, typ string, labels []Label) *instrument {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l.Name) || strings.Contains(l.Name, ":") {
			panic("obs: invalid label name " + strconv.Quote(l.Name) + " on " + name)
		}
	}
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if fam, ok := r.fams[name]; ok {
		if fam.typ != typ {
			panic("obs: metric " + name + " registered as " + fam.typ + ", requested " + typ)
		}
	} else {
		r.fams[name] = &familyMeta{help: help, typ: typ}
		r.names = append(r.names, name)
	}
	in, ok := r.instr[key]
	if !ok {
		in = &instrument{labels: append([]Label(nil), labels...)}
		switch typ {
		case "counter":
			in.ctr = &Counter{}
		case "gauge":
			in.gauge = &Gauge{}
		}
		r.instr[key] = in
	}
	return in
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", labels).ctr
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", labels).gauge
}

// Histogram returns the histogram named name with the given labels and
// bucket upper bounds (nil selects DurationBuckets). Bounds must match on
// every lookup of the same family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	in := r.lookup(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.hist == nil {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
		in.hist = h
	}
	return in.hist
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry — native instruments plus every
// collector's samples — in Prometheus text exposition format v0.0.4.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type line struct {
		name  string // series name (may carry _bucket/_sum/_count suffix)
		lbls  string
		value float64
	}
	fams := make(map[string]*familyMeta)
	series := make(map[string][]line) // family name -> lines
	var order []string

	addFam := func(name, help, typ string) {
		if _, ok := fams[name]; !ok {
			fams[name] = &familyMeta{help: help, typ: typ}
			order = append(order, name)
		}
	}

	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	for _, name := range r.names {
		addFam(name, r.fams[name].help, r.fams[name].typ)
	}
	for key, in := range r.instr {
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
		}
		lbls := renderLabels(in.labels)
		switch {
		case in.ctr != nil:
			series[name] = append(series[name], line{name, lbls, in.ctr.Value()})
		case in.gauge != nil:
			series[name] = append(series[name], line{name, lbls, in.gauge.Value()})
		case in.hist != nil:
			h := in.hist
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.buckets[i].Load()
				bl := append(append([]Label(nil), in.labels...), L("le", formatValue(b)))
				series[name] = append(series[name], line{name + "_bucket", renderLabels(bl), float64(cum)})
			}
			count := h.count.Load()
			bl := append(append([]Label(nil), in.labels...), L("le", "+Inf"))
			series[name] = append(series[name], line{name + "_bucket", renderLabels(bl), float64(count)})
			series[name] = append(series[name], line{name + "_sum", lbls, math.Float64frombits(h.sumBits.Load())})
			series[name] = append(series[name], line{name + "_count", lbls, float64(count)})
		}
	}
	r.mu.Unlock()

	for _, c := range collectors {
		c(func(s Sample) {
			if !validName(s.Name) {
				return // a collector bug must not corrupt the exposition
			}
			typ := s.Type
			if typ != "counter" && typ != "gauge" {
				typ = "gauge"
			}
			addFam(s.Name, s.Help, typ)
			series[s.Name] = append(series[s.Name], line{s.Name, renderLabels(s.Labels), s.Value})
		})
	}

	sort.Strings(order)
	for _, name := range order {
		fam := fams[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ); err != nil {
			return err
		}
		ls := series[name]
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].name != ls[j].name {
				return ls[i].name < ls[j].name
			}
			return ls[i].lbls < ls[j].lbls
		})
		for _, l := range ls {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", l.name, l.lbls, formatValue(l.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
