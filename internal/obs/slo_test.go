package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSLOBurnRateWindows(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "solve-latency", 0.99, 5*time.Minute, time.Hour)
	now := time.Unix(1_700_000_000, 0)
	s.nowFunc = func() time.Time { return now }

	// 99 good + 1 bad: the error ratio equals the budget, burn rate 1.
	for i := 0; i < 99; i++ {
		s.Observe(true)
	}
	s.Observe(false)
	if br := s.BurnRate(5 * time.Minute); math.Abs(br-1.0) > 1e-9 {
		t.Fatalf("burn rate %.4f, want 1.0", br)
	}

	// An all-bad burst burns at 1/budget = 100x.
	for i := 0; i < 100; i++ {
		s.Observe(false)
	}
	if br := s.BurnRate(5 * time.Minute); math.Abs(br-50.5) > 1e-9 {
		t.Fatalf("burn rate after burst %.4f, want 50.5", br)
	}

	// Ten minutes later the 5m window has forgotten the burst; the 1h
	// window still remembers it.
	now = now.Add(10 * time.Minute)
	s.Observe(true)
	if br := s.BurnRate(5 * time.Minute); br != 0 {
		t.Fatalf("5m burn rate %.4f after quiet period, want 0", br)
	}
	if br := s.BurnRate(time.Hour); br < 25 {
		t.Fatalf("1h burn rate %.4f, want the burst still visible (>=25)", br)
	}

	// An hour later both windows are clean.
	now = now.Add(time.Hour)
	if br := s.BurnRate(time.Hour); br != 0 {
		t.Fatalf("1h burn rate %.4f after expiry, want 0", br)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		`ecss_slo_objective{slo="solve-latency"} 0.99`,
		`ecss_slo_events_total{outcome="bad",slo="solve-latency"} 101`,
		`ecss_slo_events_total{outcome="good",slo="solve-latency"} 100`,
		`ecss_slo_burn_rate{slo="solve-latency",window="5m"}`,
		`ecss_slo_burn_rate{slo="solve-latency",window="1h"}`,
		`ecss_slo_error_ratio{slo="solve-latency",window="1h"}`,
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("exposition missing %q:\n%s", want, doc)
		}
	}
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("SLO exposition does not validate: %v", err)
	}
}

func TestSLOObserveLatencyAndClamp(t *testing.T) {
	s := NewSLO(nil, "lat", 1.5) // invalid objective clamps to 0.999
	if s.Objective() != 0.999 {
		t.Fatalf("objective %.3f, want clamped 0.999", s.Objective())
	}
	now := time.Unix(1_700_000_000, 0)
	s.nowFunc = func() time.Time { return now }
	s.ObserveLatency(10*time.Millisecond, 100*time.Millisecond) // good
	s.ObserveLatency(200*time.Millisecond, 100*time.Millisecond)
	s.ObserveLatency(300*time.Millisecond, 100*time.Millisecond)
	ratio := 2.0 / 3.0
	want := ratio / (1 - 0.999)
	if br := s.BurnRate(5 * time.Minute); math.Abs(br-want) > 1e-9 {
		t.Fatalf("burn rate %.2f, want %.2f", br, want)
	}
}

func TestWindowLabel(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:  "5m",
		30 * time.Minute: "30m",
		6 * time.Hour:    "6h",
		time.Hour:        "1h",
		90 * time.Second: "1m30s",
	}
	for d, want := range cases {
		if got := windowLabel(d); got != want {
			t.Fatalf("windowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestSumSeriesAndExpoSeriesNames(t *testing.T) {
	doc := []byte(strings.Join([]string{
		`# HELP ecss_engine_rounds_total engine rounds`,
		`# TYPE ecss_engine_rounds_total counter`,
		`ecss_engine_rounds_total{kind="simulated",shard="a"} 120`,
		`ecss_engine_rounds_total{kind="simulated",shard="b"} 30`,
		`ecss_engine_rounds_total{kind="charged",shard="a"} 7`,
		`# TYPE ecss_solve_seconds histogram`,
		`ecss_solve_seconds_bucket{le="+Inf"} 4`,
		`ecss_solve_seconds_sum 2.5`,
		`ecss_solve_seconds_count 4`,
		``,
	}, "\n"))
	sum, found := SumSeries(doc, "ecss_engine_rounds_total")
	if !found || sum != 157 {
		t.Fatalf("SumSeries = %.0f found=%v, want 157 true", sum, found)
	}
	if _, found := SumSeries(doc, "ecss_engine_rounds"); found {
		t.Fatal("SumSeries matched a non-existent series name")
	}
	if sum, _ := SumSeries(doc, "ecss_solve_seconds_count"); sum != 4 {
		t.Fatalf("histogram count sum %.0f, want 4", sum)
	}
	names := ExpoSeriesNames(doc)
	for _, want := range []string{
		"ecss_engine_rounds_total", "ecss_solve_seconds",
		"ecss_solve_seconds_bucket", "ecss_solve_seconds_sum", "ecss_solve_seconds_count",
	} {
		if !names[want] {
			t.Fatalf("ExpoSeriesNames missing %q (got %v)", want, names)
		}
	}
}
