package store

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"twoecss/internal/faults"
)

// bigPayload builds size deterministic pseudorandom bytes (a chained SHA-256
// stream), so multi-megabyte entries are cheap to mint and compare.
func bigPayload(seed byte, size int) []byte {
	out := make([]byte, 0, size+32)
	block := sha256.Sum256([]byte{seed})
	for len(out) < size {
		out = append(out, block[:]...)
		block = sha256.Sum256(block[:])
	}
	return out[:size]
}

func putOne(t *testing.T, s *Store, i int, payload []byte) Key {
	t.Helper()
	k, gh, op := mkKey(i)
	if err := s.Put(k, gh, op, payload); err != nil {
		t.Fatalf("Put %d: %v", i, err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return k
}

func TestGetViewWarmZeroCopy(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	payload := bigPayload(1, 1<<20)
	k := putOne(t, s, 1, payload)

	v1, ok := s.GetView(k)
	if !ok {
		t.Fatal("GetView miss on a live entry")
	}
	v2, ok := s.GetView(k)
	if !ok {
		t.Fatal("warm GetView miss")
	}
	if !bytes.Equal(v1.Bytes(), payload) || !bytes.Equal(v2.Bytes(), payload) {
		t.Fatal("view payload mismatch")
	}
	if !v1.Mapped() || !v2.Mapped() {
		t.Skip("mmap unavailable on this platform: fallback path covered elsewhere")
	}
	// Zero-copy means both views alias one mapped image.
	if &v1.Bytes()[0] != &v2.Bytes()[0] {
		t.Fatal("warm view does not alias the first view's mapping")
	}
	st := s.Stats()
	if st.Mmap.Maps != 1 || st.Mmap.Pins != 2 || st.Mmap.ActiveMaps != 1 {
		t.Fatalf("mmap stats %+v, want 1 map / 2 pins / 1 active", st.Mmap)
	}
	if st.Mmap.MappedBytes != int64(HeaderSize+len(payload)) {
		t.Fatalf("mapped bytes %d, want %d", st.Mmap.MappedBytes, HeaderSize+len(payload))
	}
	v1.Release()
	v2.Release()
	if st := s.Stats(); st.Mmap.Unpins != 2 || st.Mmap.ActiveMaps != 1 {
		t.Fatalf("after release: %+v, want 2 unpins and the warm mapping retained", st.Mmap)
	}
}

// TestWarmGetViewAllocs is the acceptance gate: a warm hit of a multi-MB
// entry on the mmap path performs zero heap allocations — in particular
// nothing payload-sized. It uses the non-serving getView so the off-goroutine
// writer (touch appends) cannot perturb the process-wide malloc counter.
func TestWarmGetViewAllocs(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	k := putOne(t, s, 2, bigPayload(2, 4<<20))
	v, ok := s.GetView(k)
	if !ok {
		t.Fatal("GetView miss")
	}
	if !v.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	v.Release()
	allocs := testing.AllocsPerRun(200, func() {
		w, ok := s.getView(k, false)
		if !ok {
			t.Fatal("warm getView miss")
		}
		if len(w.Bytes()) != 4<<20 {
			t.Fatal("short view")
		}
		w.Release()
	})
	if allocs > 0 {
		t.Fatalf("warm mmap GetView allocates %.1f objects/op, want 0", allocs)
	}
}

func TestViewSurvivesEviction(t *testing.T) {
	const mb = 1 << 20
	s := mustOpen(t, t.TempDir(), int64(mb)+(mb/2))
	defer s.Close()
	payload := bigPayload(3, mb)
	kA := putOne(t, s, 30, payload)
	v, ok := s.GetView(kA)
	if !ok {
		t.Fatal("GetView miss")
	}
	if !v.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	// Two more megabyte entries blow the budget: A (oldest access after the
	// puts) is evicted and its file unlinked while the view is pinned.
	putOne(t, s, 31, bigPayload(4, mb))
	putOne(t, s, 32, bigPayload(5, mb))
	if s.Contains(kA) {
		t.Fatal("A still live: eviction did not run")
	}
	if _, err := os.Stat(s.objPath(kA)); !os.IsNotExist(err) {
		t.Fatalf("A's file not unlinked after eviction: %v", err)
	}
	// The pages outlive the unlink: the pinned view still reads the full
	// verified payload.
	if !bytes.Equal(v.Bytes(), payload) {
		t.Fatal("pinned view corrupted by eviction")
	}
	st := s.Stats()
	if st.Mmap.UnmapDeferred < 1 {
		t.Fatalf("UnmapDeferred %d, want >= 1 (mapping was pinned at eviction)", st.Mmap.UnmapDeferred)
	}
	v.Release()
	if st := s.Stats(); st.Mmap.ActiveMaps != 0 {
		t.Fatalf("ActiveMaps %d after last release of a doomed mapping, want 0", st.Mmap.ActiveMaps)
	}
	if _, ok := s.GetView(kA); ok {
		t.Fatal("evicted key still served")
	}
}

// TestFallbackPinDefersUnlink drives the ReadFile path (Options.NoMmap) with
// an injected slow read while eviction removes the entry mid-flight: the pin
// must keep the file on disk until the read completes, then perform the
// deferred unlink.
func TestFallbackPinDefersUnlink(t *testing.T) {
	const kb256 = 256 << 10
	s, err := OpenWith(t.TempDir(), Options{MaxBytes: kb256 + kb256/2, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := bigPayload(6, kb256)
	kA := putOne(t, s, 40, payload)

	armFaults(t, "store.read:delay=250ms")
	type res struct {
		b  []byte
		ok bool
	}
	ch := make(chan res, 1)
	go func() {
		b, ok := s.Get(kA)
		ch <- res{b, ok}
	}()
	time.Sleep(60 * time.Millisecond) // reader is pinned, sleeping in the injected delay
	putOne(t, s, 41, bigPayload(7, kb256))
	putOne(t, s, 42, bigPayload(8, kb256))
	if s.Contains(kA) {
		t.Fatal("A still live: eviction did not run")
	}
	if _, err := os.Stat(s.objPath(kA)); err != nil {
		t.Fatalf("A's file unlinked while a read was pinned: %v", err)
	}
	r := <-ch
	if !r.ok || !bytes.Equal(r.b, payload) {
		t.Fatalf("pinned fallback read failed (ok=%v)", r.ok)
	}
	if _, err := os.Stat(s.objPath(kA)); !os.IsNotExist(err) {
		t.Fatalf("deferred unlink never happened: %v", err)
	}
	st := s.Stats()
	if st.Mmap.Fallbacks < 1 {
		t.Fatalf("Fallbacks %d, want >= 1 on a NoMmap store", st.Mmap.Fallbacks)
	}
	if st.Mmap.UnmapDeferred < 1 {
		t.Fatalf("UnmapDeferred %d, want >= 1 (unlink was deferred by the pin)", st.Mmap.UnmapDeferred)
	}
}

// TestGetDoesNotBlockPutOrStats is the lock-contention regression test for
// the old hold-s.mu-across-ReadFile bug: while one Get is stuck in a slow
// (injected) 400ms read of a large entry, Put, Flush, Stats, and Contains
// must all complete promptly.
func TestGetDoesNotBlockPutOrStats(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	kA := putOne(t, s, 50, bigPayload(9, 1<<20))

	armFaults(t, "store.read:delay=400ms")
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Get(kA)
		done <- ok
	}()
	time.Sleep(50 * time.Millisecond) // the reader is inside its slow load
	start := time.Now()
	k, gh, op := mkKey(51)
	if err := s.Put(k, gh, op, payloadFor(51)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	_ = s.Stats()
	if !s.Contains(k) {
		t.Fatal("freshly flushed entry missing")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("Put/Flush/Stats took %v behind a slow Get, want well under the 400ms read", elapsed)
	}
	if ok := <-done; !ok {
		t.Fatal("slow Get failed")
	}
}

// TestMultiMBRoundTripAndCrashWindows covers the payloads the old
// "entry payloads are small canonical JSON" comment assumed away: multi-MB
// entries round-trip on both read paths, survive a stray temp file from a
// crash mid-write, and are re-adopted from the objects directory when the
// crash landed between rename and index append.
func TestMultiMBRoundTripAndCrashWindows(t *testing.T) {
	dir := t.TempDir()
	p3 := bigPayload(10, 3<<20)
	p7 := bigPayload(11, 7<<20)
	s := mustOpen(t, dir, 0)
	k3 := putOne(t, s, 60, p3)
	k7 := putOne(t, s, 61, p7)
	for _, c := range []struct {
		k    Key
		want []byte
	}{{k3, p3}, {k7, p7}} {
		v, ok := s.GetView(c.k)
		if !ok || !bytes.Equal(v.Bytes(), c.want) {
			t.Fatalf("GetView mismatch (ok=%v)", ok)
		}
		v.Release()
		b, ok := s.Get(c.k)
		if !ok || !bytes.Equal(b, c.want) {
			t.Fatalf("Get copy mismatch (ok=%v)", ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window 1: a temp file stranded mid-write must be swept, not
	// adopted. Crash window 2: losing the index entirely (torn before any
	// append survived) must re-adopt both multi-MB objects byte-identically.
	stray := filepath.Join(dir, "put-stranded.tmp")
	if err := os.WriteFile(stray, bigPayload(12, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.log")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	defer s2.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stranded temp file survived reopen")
	}
	st := s2.Stats()
	if st.Entries != 2 || st.Corruptions != 0 {
		t.Fatalf("reopen stats %+v, want 2 adopted entries, 0 corruptions", st)
	}
	v, ok := s2.GetView(k7)
	if !ok || !bytes.Equal(v.Bytes(), p7) {
		t.Fatalf("7MB orphan not re-adopted byte-identically (ok=%v)", ok)
	}
	v.Release()
	if b, ok := s2.Get(k3); !ok || !bytes.Equal(b, p3) {
		t.Fatalf("3MB orphan not re-adopted byte-identically (ok=%v)", ok)
	}
}

func TestReadOnlySharedStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	putN(t, s, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	indexBefore, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Two read-only openers share the warm directory concurrently.
	ro1, err := OpenWith(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro1.Close()
	ro2, err := OpenWith(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro2.Close()
	for i := 0; i < 6; i++ {
		k, _, _ := mkKey(i)
		for name, ro := range map[string]*Store{"ro1": ro1, "ro2": ro2} {
			b, ok := ro.Get(k)
			if !ok || !bytes.Equal(b, payloadFor(i)) {
				t.Fatalf("%s: entry %d not served byte-identically (ok=%v)", name, i, ok)
			}
		}
	}
	k, gh, op := mkKey(99)
	if err := ro1.Put(k, gh, op, payloadFor(99)); err != ErrReadOnly {
		t.Fatalf("Put on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro1.Flush(); err != nil {
		t.Fatalf("Flush on read-only store: %v, want nil no-op", err)
	}
	if r, d := ro1.Reverify(); r != 0 || d != 0 {
		t.Fatalf("Reverify on read-only store did work: %d restored, %d deleted", r, d)
	}
	if after, err := os.ReadFile(filepath.Join(dir, "index.log")); err != nil || !bytes.Equal(indexBefore, after) {
		t.Fatalf("read-only openers mutated the index (err=%v)", err)
	}

	// A damaged entry is dropped from the read-only opener's live set but
	// the file is left in place for the writable owner to quarantine.
	k0, _, _ := mkKey(0)
	objPath := ro1.objPath(k0)
	if err := os.WriteFile(objPath, []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	ro3, err := OpenWith(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro3.Close()
	if _, ok := ro3.Get(k0); ok {
		t.Fatal("read-only opener served a damaged entry")
	}
	if st := ro3.Stats(); st.Corruptions != 1 || st.Quarantined != 0 || st.Entries != 5 {
		t.Fatalf("read-only scan stats %+v, want 1 corruption counted, 0 quarantined, 5 live", st)
	}
	if _, err := os.Stat(objPath); err != nil {
		t.Fatalf("read-only opener moved or deleted the damaged file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", objName(k0))); !os.IsNotExist(err) {
		t.Fatal("read-only opener quarantined a file")
	}
}

// TestTouchDropsCounted saturates the writer queue (the writer is parked in
// an injected slow index append) and checks that Get's dropped atime record
// is counted instead of vanishing.
func TestTouchDropsCounted(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	putN(t, s, 1)
	k0, _, _ := mkKey(0)

	armFaults(t, "store.index:delay=300ms")
	k1, gh, op := mkKey(1)
	if err := s.Put(k1, gh, op, payloadFor(1)); err != nil { // parks the writer in applyPut
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Stuff the queue with advisory touches for an absent key; the parked
	// writer drains none of them, so the channel fills.
	kX, _, _ := mkKey(77)
	for i := 0; i < 2*cap(s.writeCh); i++ {
		select {
		case s.writeCh <- writeOp{key: kX, atime: 1}:
		default:
		}
	}
	if _, ok := s.Get(k0); !ok {
		t.Fatal("Get miss on a live entry")
	}
	if st := s.Stats(); st.TouchDrops < 1 {
		t.Fatalf("TouchDrops %d, want >= 1 with a saturated writer", st.TouchDrops)
	}
	faults.Disarm()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTortureConcurrentMultiMB is the -race gate from the acceptance
// criteria: concurrent GetView/Get, re-Puts, evictions (tight byte budget),
// Recent scans, and Reverify passes over multi-megabyte entries.
func TestTortureConcurrentMultiMB(t *testing.T) {
	const mb = 1 << 20
	s, err := OpenWith(t.TempDir(), Options{MaxBytes: 4 * mb})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const nKeys = 6
	payloads := make([][]byte, nKeys)
	keys := make([]Key, nKeys)
	for i := 0; i < nKeys; i++ {
		payloads[i] = bigPayload(byte(100+i), mb+i*(mb/4))
		keys[i] = putOne(t, s, 100+i, payloads[i])
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // readers: pinned views held across other goroutines' evictions
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (g + i) % nKeys
				if v, ok := s.GetView(keys[idx]); ok {
					if !bytes.Equal(v.Bytes(), payloads[idx]) {
						t.Error("view payload mismatch under torture")
					}
					v.Release()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // re-putter: keeps eviction pressure on
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := i % nKeys
			k, gh, op := mkKey(100 + idx)
			_ = s.Put(k, gh, op, payloads[idx])
			if i%nKeys == 0 {
				_ = s.Flush()
			}
		}
	}()
	wg.Add(1)
	go func() { // scanner + reverifier
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range s.Recent(nKeys) {
				e.View.Release()
			}
			s.Reverify()
		}
	}()
	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Corruptions != 0 {
		t.Fatalf("torture produced %d corruptions", st.Corruptions)
	}
	if st.Bytes > 6*mb+HeaderSize { // budget + one oversized-entry slack
		t.Fatalf("bytes %d never converged toward the 4MB budget", st.Bytes)
	}
}

// BenchmarkGetViewWarm is the before/after row for the bench trajectory:
// bytes/op and allocs/op of a warm 1MB store hit on the zero-copy path.
func BenchmarkGetViewWarm(b *testing.B) {
	benchWarmGet(b, false, func(s *Store, k Key) {
		v, ok := s.GetView(k)
		if !ok {
			b.Fatal("miss")
		}
		_ = v.Bytes()[0]
		v.Release()
	})
}

// BenchmarkGetCopyWarm measures the same warm hit through the copying Get —
// the fallback-equivalent cost the mmap path removes.
func BenchmarkGetCopyWarm(b *testing.B) {
	benchWarmGet(b, true, func(s *Store, k Key) {
		p, ok := s.Get(k)
		if !ok {
			b.Fatal("miss")
		}
		_ = p[0]
	})
}

func benchWarmGet(b *testing.B, noMmap bool, get func(*Store, Key)) {
	s, err := OpenWith(b.TempDir(), Options{NoMmap: noMmap})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	k, gh, op := mkKey(1)
	payload := bigPayload(1, 1<<20)
	if err := s.Put(k, gh, op, payload); err != nil {
		b.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	get(s, k) // warm the mapping
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		get(s, k)
	}
}
