//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps the whole file at path read-only. MAP_SHARED keeps the pages
// backed by the page cache, so N processes serving one store directory
// (read-only shards) share a single physical copy of every warm entry. The
// descriptor is closed immediately: the mapping outlives it.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size > int64(int(^uint(0)>>1)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
