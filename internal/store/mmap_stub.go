//go:build !unix

package store

import "errors"

// errMmapUnsupported routes every read through the heap fallback on
// platforms without a usable mmap; the store works identically, one copy
// slower, and the Fallbacks counter says so.
var errMmapUnsupported = errors.New("store: mmap unsupported on this platform")

func mapFile(path string) ([]byte, error) { return nil, errMmapUnsupported }

func unmapFile(data []byte) error { return nil }
