package store

import (
	"bufio"
	"cmp"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"twoecss/internal/faults"
	"twoecss/internal/obs"
)

// Stats counts store traffic. It is embedded in the service's /v1/stats
// payload, so the field set is part of the operational API.
type Stats struct {
	// Hits and Misses count Get lookups (pre-warm reads via Recent are not
	// counted: they are not serving decisions).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts entries accepted for write; DupPuts counts writes skipped
	// because the content address was already stored.
	Puts    int64 `json:"puts"`
	DupPuts int64 `json:"dup_puts"`
	// Evictions counts entries removed to keep Bytes under the budget.
	Evictions int64 `json:"evictions"`
	// Corruptions counts quarantined files and dropped index records:
	// truncated or checksum-mismatched entries, undecodable headers, stale
	// index lines pointing at missing files, and malformed index lines.
	Corruptions int64 `json:"corruptions"`
	// WriteErrors counts puts the writer could not persist (ENOSPC,
	// permissions): the entry is simply absent after a restart. Distinct
	// from Corruptions, which reports damaged data, not failed writes.
	WriteErrors int64 `json:"write_errors"`
	// Quarantined counts entry files actually moved into quarantine/;
	// QuarantineFails counts quarantine renames that failed with the file
	// still present (permissions, crossed mounts) — the damaged file then
	// stays in objects/ for the next restart to re-examine. A rename that
	// finds no file (stale index line) is neither.
	Quarantined     int64 `json:"quarantined"`
	QuarantineFails int64 `json:"quarantine_fails"`
	// Restored counts quarantined entries the background reverifier proved
	// intact end-to-end (returned to objects/, or discarded as a redundant
	// copy of an already-relived key); ReverifyDeleted counts quarantined
	// files deleted after failing verification reverifyStrikes times.
	Restored        int64 `json:"restored"`
	ReverifyDeleted int64 `json:"reverify_deleted"`
	// TouchDrops counts atime touch records dropped because the writer
	// queue was saturated: reads never block behind the writer, at the cost
	// of eviction-order fidelity. A rising rate means LRU decisions are
	// running on stale access times.
	TouchDrops int64 `json:"touch_drops"`
	// Entries and Bytes describe the live on-disk set.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Mmap counts the zero-copy read path (mmap.go).
	Mmap MmapStats `json:"mmap"`
}

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

type entry struct {
	key   Key
	size  int64 // header + payload bytes on disk
	atime int64 // unix nanoseconds of last recorded access
	el    *list.Element
	// pins counts off-lock loads of this entry's file in flight; eviction
	// of a pinned entry sets doomed and defers the unlink to the last
	// unpin instead of yanking the file out from under the read.
	pins   int
	doomed bool
}

// writeOp is one unit of work for the background writer: a put (payload
// non-nil), a touch (atime record), or a flush barrier (ack non-nil).
type writeOp struct {
	key       Key
	graphHash [32]byte
	options   [32]byte
	payload   []byte
	atime     int64
	ack       chan struct{}
	stop      bool
}

// Store is the disk-backed result store. Create with Open; all methods are
// safe for concurrent use. Writes are asynchronous: Put enqueues to a
// single background writer that performs the atomic file write, the fsync'd
// index append, and budget eviction. Flush (or Close) waits for every
// enqueued write to be durable.
type Store struct {
	dir      string
	maxBytes int64
	bus      *obs.Bus // nil: events disabled
	// ro marks a read-only store (Options.ReadOnly): no writer, no index
	// mutation, no eviction, no quarantine renames — N daemons can serve
	// one warm directory. noMmap forces the heap fallback on every read.
	ro     bool
	noMmap bool

	mu        sync.Mutex
	entries   map[Key]*entry
	ll        *list.List // front = most recently used
	bytes     int64
	stats     Stats
	indexF    *os.File
	lastStamp int64 // high-water access-time stamp (see stampLocked)
	// maps holds the live mmapped file images serving warm zero-copy hits;
	// nil once the store is closed (later loads then map one-shot).
	maps map[Key]*mapping
	// strikes counts consecutive failed reverifications per quarantined
	// key; at reverifyStrikes the file is deleted for good.
	strikes map[Key]int

	closeMu sync.RWMutex
	closed  bool
	writeCh chan writeOp
	done    chan struct{}
	// revStop/revDone bracket the background reverifier goroutine's
	// lifetime; nil when ReverifyEvery is 0.
	revStop chan struct{}
	revDone chan struct{}
}

// Options configures OpenWith beyond the directory.
type Options struct {
	// MaxBytes bounds the on-disk entry bytes via LRU eviction (<=0:
	// unbounded).
	MaxBytes int64
	// ReverifyEvery, when positive, starts a background goroutine running a
	// Reverify pass over the quarantine directory at this interval, so
	// entries quarantined by transient failures (injected read faults, EIO)
	// are restored while the process lives instead of lingering until an
	// operator looks.
	ReverifyEvery time.Duration
	// Bus, when non-nil, receives store.* lifecycle events (writes, write
	// errors, evictions, quarantines, restores, reverify deletions). Pass
	// the process bus so store events interleave with job events on one
	// firehose.
	Bus *obs.Bus
	// ReadOnly opens the store without mutating the directory in any way:
	// no temp sweep, no index compaction or appends, no eviction, no
	// quarantine renames, and Put/Reverify are rejected with ErrReadOnly.
	// Several read-only stores (in one process or many) can serve a single
	// warm directory concurrently; MaxBytes and ReverifyEvery are ignored.
	ReadOnly bool
	// NoMmap forces every read through the portable heap-copy path even
	// where mmap is available — the fallback matrix knob for tests and
	// benchmarks.
	NoMmap bool
}

// Open creates or reopens the store rooted at dir, bounded to maxBytes of
// entry bytes on disk (<=0: unbounded). It replays the index log, verifies
// every referenced entry's header and payload checksum — quarantining
// corrupt, truncated, or unreadable files and dropping stale index records
// — adopts orphaned entry files the log does not mention (a crash window
// between rename and index append), rewrites a compact index, and evicts
// down to the byte budget. Corruption is counted, never fatal: a damaged
// store opens with whatever survives.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenWith(dir, Options{MaxBytes: maxBytes})
}

// OpenWith is Open with the full option set.
func OpenWith(dir string, o Options) (*Store, error) {
	if !o.ReadOnly {
		for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "quarantine")} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
		}
		// Sweep temp files stranded by crashes mid-write; they live outside
		// the byte budget and would otherwise accumulate across crash loops.
		if strays, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
			for _, p := range strays {
				os.Remove(p)
			}
		}
	}
	s := &Store{
		dir:      dir,
		maxBytes: o.MaxBytes,
		bus:      o.Bus,
		ro:       o.ReadOnly,
		noMmap:   o.NoMmap,
		entries:  make(map[Key]*entry),
		ll:       list.New(),
		maps:     make(map[Key]*mapping),
		strikes:  make(map[Key]int),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	if s.ro {
		// A read-only opener owns nothing on disk: no writer goroutine, no
		// index handle, no eviction — it serves whatever the scan verified.
		return s, nil
	}
	s.writeCh = make(chan writeOp, 256)
	s.done = make(chan struct{})
	// Evict down to budget before compacting the index so the rewritten
	// log lists exactly the surviving entries.
	ev := s.evictLocked(nil)
	for _, k := range ev.victims {
		os.Remove(s.objPath(k))
	}
	if ev.count > 0 {
		s.emitEvictPressure(ev)
	}
	if err := s.rewriteIndex(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open index: %w", err)
	}
	s.indexF = f
	go s.writer()
	if o.ReverifyEvery > 0 {
		s.revStop = make(chan struct{})
		s.revDone = make(chan struct{})
		go s.reverifyLoop(o.ReverifyEvery)
	}
	return s, nil
}

func (s *Store) indexPath() string  { return filepath.Join(s.dir, "index.log") }
func (s *Store) objPath(k Key) string {
	return filepath.Join(s.dir, "objects", hex.EncodeToString(k[:])+".res")
}
func (s *Store) quarantinePath(k Key) string {
	return filepath.Join(s.dir, "quarantine", hex.EncodeToString(k[:])+".res")
}

// scan replays the index log and reconciles it against the objects
// directory, leaving s.entries/s.ll/s.bytes describing the verified live
// set and a freshly compacted index on disk.
func (s *Store) scan() error {
	type rec struct {
		atime int64
		live  bool
	}
	replay := make(map[Key]*rec)
	if f, err := os.Open(s.indexPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			key, op, atime, ok := parseIndexLine(line)
			if !ok {
				// Malformed or torn line (crash mid-append): skip it. Torn
				// final lines are expected under crash, so they are not
				// counted as corruption; full reconciliation below decides
				// what actually survives.
				continue
			}
			switch op {
			case "del":
				replay[key] = &rec{live: false}
			default: // put, touch
				r := replay[key]
				if r == nil {
					r = &rec{}
					replay[key] = r
				}
				r.live = true
				if atime > r.atime {
					r.atime = atime
				}
			}
		}
		if sc.Err() != nil {
			// Replay stopped early (read error or an over-long corrupt
			// line): records past this point are lost. Count it so a
			// damaged index is distinguishable from a clean replay; full
			// file reconciliation below still bounds the blast radius.
			s.stats.Corruptions++
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: read index: %w", err)
	}

	// Adopt entry files the index does not mention as live: a crash between
	// the object rename and the index append leaves exactly this state, and
	// the file is self-describing enough to re-index.
	if names, err := os.ReadDir(filepath.Join(s.dir, "objects")); err == nil {
		for _, de := range names {
			name := de.Name()
			if !strings.HasSuffix(name, ".res") {
				continue
			}
			raw, err := hex.DecodeString(strings.TrimSuffix(name, ".res"))
			if err != nil || len(raw) != 32 {
				continue
			}
			var k Key
			copy(k[:], raw)
			if r, ok := replay[k]; ok && r.live {
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			replay[k] = &rec{live: true, atime: info.ModTime().UnixNano()}
		}
	}

	type liveEnt struct {
		k     Key
		size  int64
		atime int64
	}
	var live []liveEnt
	for k, r := range replay {
		if !r.live {
			continue
		}
		size, err := verifyEntryFile(s.objPath(k), k)
		if err != nil {
			s.stats.Corruptions++
			s.quarantineLocked(k)
			continue
		}
		live = append(live, liveEnt{k: k, size: size, atime: r.atime})
	}
	// One sort, then append in order: the replay map iterates randomly and
	// a per-entry sorted insert would make reopening a large store O(n^2).
	slices.SortFunc(live, func(a, b liveEnt) int {
		return cmp.Compare(b.atime, a.atime) // most recent first
	})
	for _, le := range live {
		e := &entry{key: le.k, size: le.size, atime: le.atime}
		e.el = s.ll.PushBack(e)
		s.entries[le.k] = e
		s.bytes += le.size
		if le.atime > s.lastStamp {
			s.lastStamp = le.atime
		}
	}
	return nil
}

// verifyEntryFile checks that the file at path is a well-formed entry for
// key: decodable current-version header, matching stored key, exact length,
// and payload SHA-256 equal to the header checksum.
func verifyEntryFile(path string, key Key) (size int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return verifyBytes(b, key)
}

// emit publishes a store event when a bus is configured. Safe under s.mu:
// the bus takes only its own lock and never calls back into the store.
func (s *Store) emit(typ string, k Key, errStr string) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(obs.Event{Type: typ, Key: hex.EncodeToString(k[:6]), Err: errStr})
}

// quarantineLocked moves the entry file for k aside for the reverifier to
// re-examine. A missing source file — the stale-index-line case — has
// nothing to move and is not a failure; any other rename error is counted
// in QuarantineFails (the damaged file then stays in objects/, where the
// next restart's scan re-examines it) instead of being silently dropped.
// Caller holds s.mu (or is the single-threaded Open scan).
func (s *Store) quarantineLocked(k Key) {
	if s.ro {
		// A read-only opener must not mutate a directory another daemon
		// owns: the damaged entry is dropped from this opener's live set
		// and left in place for the writable owner to quarantine.
		return
	}
	switch err := os.Rename(s.objPath(k), s.quarantinePath(k)); {
	case err == nil:
		s.stats.Quarantined++
		s.emit(obs.EvStoreQuarantine, k, "")
	case os.IsNotExist(err):
	default:
		s.stats.QuarantineFails++
	}
}

// stampLocked returns a strictly increasing access-time stamp: wall-clock
// nanoseconds, bumped past the previous stamp when the clock is too coarse
// (or stepped backwards) to distinguish two accesses. Strict ordering keeps
// LRU eviction deterministic. Caller holds s.mu.
func (s *Store) stampLocked() int64 {
	now := time.Now().UnixNano()
	if now <= s.lastStamp {
		now = s.lastStamp + 1
	}
	s.lastStamp = now
	return now
}

// rewriteIndex atomically replaces the index log with one "put" line per
// live entry, dropping the replay history.
func (s *Store) rewriteIndex() error {
	tmp, err := os.CreateTemp(s.dir, "index-*.tmp")
	if err != nil {
		return fmt.Errorf("store: compact index: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for el := s.ll.Back(); el != nil; el = el.Prev() { // oldest first
		e := el.Value.(*entry)
		fmt.Fprintf(w, "put %x %d %d\n", e.key[:], e.size, e.atime)
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: compact index: %w", err)
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: compact index: %w", err)
	}
	return syncDir(s.dir)
}

func parseIndexLine(line string) (k Key, op string, atime int64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return k, "", 0, false
	}
	op = fields[0]
	switch op {
	case "put":
		if len(fields) != 4 {
			return k, "", 0, false
		}
	case "touch":
		if len(fields) != 3 {
			return k, "", 0, false
		}
	case "del":
		if len(fields) != 2 {
			return k, "", 0, false
		}
	default:
		return k, "", 0, false
	}
	raw, err := hex.DecodeString(fields[1])
	if err != nil || len(raw) != 32 {
		return k, "", 0, false
	}
	copy(k[:], raw)
	if op != "del" {
		atime, err = strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			return k, "", 0, false
		}
	}
	return k, op, atime, true
}

// Get returns the stored payload for key as a private copy, or ok=false on
// a miss — GetView semantics with a payload-sized allocation on the mmap
// path. Callers that can serve and release should prefer GetView.
func (s *Store) Get(key Key) (payload []byte, ok bool) {
	v, ok := s.GetView(key)
	if !ok {
		return nil, false
	}
	if !v.Mapped() {
		return v.Bytes(), true
	}
	b := slices.Clone(v.Bytes())
	v.Release()
	return b, true
}

// verifyBytes is verifyEntryFile over an already-read file image.
func verifyBytes(b []byte, key Key) (int64, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return 0, err
	}
	if h.Key != key {
		return 0, errors.New("store: key mismatch")
	}
	if uint64(len(b)-HeaderSize) != h.PayloadLen {
		return 0, errors.New("store: length mismatch")
	}
	if sha256.Sum256(b[HeaderSize:]) != h.Checksum {
		return 0, errors.New("store: checksum mismatch")
	}
	return int64(len(b)), nil
}

func (s *Store) dropLocked(e *entry) {
	s.ll.Remove(e.el)
	delete(s.entries, e.key)
	s.bytes -= e.size
}

// Contains reports whether key is currently live without touching the file
// or the access order.
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put schedules the payload for durable storage under key. The write —
// atomic temp+rename object file, fsync'd index append, budget eviction —
// happens on the background writer; Flush or Close waits for it. The caller
// must not mutate payload afterwards. A key already stored is recorded as a
// duplicate and not rewritten (content addressing: same key, same bytes).
func (s *Store) Put(key Key, graphHash, options [32]byte, payload []byte) error {
	if s.ro {
		return ErrReadOnly
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.writeCh <- writeOp{
		key:       key,
		graphHash: graphHash,
		options:   options,
		payload:   payload,
	}
	return nil
}

// Flush blocks until every Put enqueued before the call is durable on
// disk (or the store is closed). On a read-only store nothing is ever
// pending, so Flush is a successful no-op.
func (s *Store) Flush() error {
	if s.ro {
		return nil
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	ack := make(chan struct{})
	s.writeCh <- writeOp{ack: ack}
	s.closeMu.RUnlock()
	<-ack
	return nil
}

// Close flushes pending writes, stops the writer, and syncs and closes the
// index log. Further Puts fail with ErrClosed; Gets keep working off the
// in-memory index (reads are lock-protected, not writer-dependent).
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.closeMu.Unlock()
	// Stop the reverifier before the writer: a mid-pass restore enqueues an
	// index record (dropped once closed is set, but the goroutine should be
	// gone before the index file is).
	if s.revStop != nil {
		close(s.revStop)
		<-s.revDone
	}
	// All Put/Flush senders finished before closed was set (they hold the
	// read lock across their send), so stop is the final op.
	if !s.ro {
		s.writeCh <- writeOp{stop: true}
		<-s.done
	}
	s.mu.Lock()
	// Unmap whatever no reader still pins; pinned mappings are doomed and
	// munmapped by their last Release. Nil-ing the table makes later loads
	// serve one-shot doomed mappings instead of rewarming a closed store.
	var unmaps [][]byte
	for k := range s.maps {
		if d, _ := s.doomMappingLocked(k); d != nil {
			unmaps = append(unmaps, d)
		}
	}
	s.maps = nil
	var err error
	if s.indexF != nil {
		err = s.indexF.Sync()
		if cerr := s.indexF.Close(); err == nil {
			err = cerr
		}
	}
	s.mu.Unlock()
	for _, d := range unmaps {
		_ = unmapFile(d)
	}
	return err
}

// writer is the single goroutine applying mutations: object writes, index
// appends, eviction. Serializing here keeps every filesystem mutation
// ordered and lets Flush be a simple FIFO barrier.
func (s *Store) writer() {
	defer close(s.done)
	for op := range s.writeCh {
		switch {
		case op.stop:
			return
		case op.ack != nil:
			close(op.ack)
		case op.payload == nil:
			s.applyTouch(op)
		default:
			s.applyPut(op)
		}
	}
}

func (s *Store) applyTouch(op writeOp) {
	s.mu.Lock()
	_, ok := s.entries[op.key]
	s.mu.Unlock()
	if !ok {
		return
	}
	// Touch lines are advisory (eviction ordering), appended without fsync:
	// losing them in a crash only ages the entry. Index appends happen only
	// on this writer goroutine, so no lock is held across the write.
	fmt.Fprintf(s.indexF, "touch %x %d\n", op.key[:], op.atime)
}

func (s *Store) applyPut(op writeOp) {
	s.mu.Lock()
	if e, ok := s.entries[op.key]; ok {
		s.stats.DupPuts++
		e.atime = s.stampLocked()
		s.ll.MoveToFront(e.el)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	size, err := s.writeObject(op)
	if err != nil {
		// Disk trouble (ENOSPC, permissions) degrades the store to a
		// cache miss on restart; serving must not fail because
		// persistence did.
		s.mu.Lock()
		s.stats.WriteErrors++
		s.mu.Unlock()
		s.emit(obs.EvStoreWriteError, op.key, err.Error())
		return
	}

	var lines strings.Builder
	s.mu.Lock()
	e := &entry{key: op.key, size: size, atime: s.stampLocked()}
	e.el = s.ll.PushFront(e)
	s.entries[op.key] = e
	s.bytes += size
	s.stats.Puts++
	fmt.Fprintf(&lines, "put %x %d %d\n", op.key[:], size, e.atime)
	ev := s.evictLocked(&lines)
	s.mu.Unlock()
	// Index append + fsync run outside s.mu (writer-goroutine-only I/O) so
	// readers never wait on the disk. One fsync covers the put and any
	// eviction records it caused. Victim files are unlinked after the index
	// is durable: a crash in between resurrects an orphan (re-adopted and
	// re-evicted on reopen) rather than leaving a dangling index line.
	// store.index simulates exactly that crash window — a put whose index
	// record was lost — which orphan adoption repairs on the next Open.
	if faults.Point("store.index") == nil {
		fmt.Fprint(s.indexF, lines.String())
		_ = s.indexF.Sync()
	}
	s.emit(obs.EvStoreWrite, op.key, "")
	for _, k := range ev.evicted {
		s.emit(obs.EvStoreEvict, k, "")
	}
	for _, k := range ev.victims {
		os.Remove(s.objPath(k))
	}
	for _, d := range ev.unmaps {
		_ = unmapFile(d)
	}
	if ev.count > 0 {
		s.emitEvictPressure(ev)
	}
}

// writeObject writes the entry file atomically: temp file in the store
// root, full write + fsync, rename into objects/, directory fsync. A crash
// at any point leaves either no visible file or a complete one.
func (s *Store) writeObject(op writeOp) (int64, error) {
	h := EncodeHeader(headerFor(op.key, op.graphHash, op.options, op.payload))
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return 0, err
	}
	_, err = tmp.Write(h[:])
	if err == nil {
		_, err = tmp.Write(op.payload)
	}
	if err == nil {
		// store.fsync models a durability failure (ENOSPC at sync, dying
		// disk): the put degrades to a WriteError and the entry is simply
		// absent after a restart.
		err = faults.Point("store.fsync")
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = faults.Point("store.rename")
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.objPath(op.key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	// The rename made the object visible; a directory-fsync failure only
	// widens its durability window. Reporting failure here would leave a
	// live file untracked and uncounted, so tolerate it.
	_ = syncDir(filepath.Join(s.dir, "objects"))
	return int64(HeaderSize + len(op.payload)), nil
}

// evictResult is one eviction pass's outcome: evicted lists every removed
// key (for per-key events), victims the subset whose files the caller must
// unlink outside the lock (unpinned entries only — pinned ones defer the
// unlink to their last unpin), unmaps the mapped regions to munmap outside
// the lock, reclaimed/count the pressure-summary numbers.
type evictResult struct {
	evicted   []Key
	victims   []Key
	unmaps    [][]byte
	reclaimed int64
	count     int
}

// evictLocked removes oldest-access entries until the byte budget holds,
// keeping at least one entry (a single oversized result may exceed the
// budget rather than thrash). Deletion records are appended to lines when
// non-nil (runtime path); the Open path compacts the index right after
// instead. An entry pinned by an in-flight read is dropped from the live
// set but its file survives until the last unpin; a mapped entry's region
// likewise survives until its last view releases. Caller holds s.mu (or is
// single-threaded Open).
func (s *Store) evictLocked(lines *strings.Builder) evictResult {
	var r evictResult
	if s.maxBytes <= 0 || s.ro {
		return r
	}
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		e := s.ll.Back().Value.(*entry)
		s.dropLocked(e)
		s.stats.Evictions++
		r.evicted = append(r.evicted, e.key)
		r.reclaimed += e.size
		r.count++
		unmap, mapDeferred := s.doomMappingLocked(e.key)
		if unmap != nil {
			r.unmaps = append(r.unmaps, unmap)
		}
		pinDeferred := e.pins > 0
		if pinDeferred {
			e.doomed = true
		} else {
			r.victims = append(r.victims, e.key)
		}
		if mapDeferred || pinDeferred {
			s.stats.Mmap.UnmapDeferred++
		}
		if lines != nil {
			fmt.Fprintf(lines, "del %x\n", e.key[:])
		}
	}
	return r
}

// emitEvictPressure publishes one summary event per eviction pass — bytes
// reclaimed, entries removed, and the budget being enforced — the firehose
// signal that the store is cycling under byte pressure (per-key
// store.evict events say who, this says how hard).
func (s *Store) emitEvictPressure(ev evictResult) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(obs.Event{Type: obs.EvStoreEvictPressure,
		Bytes: ev.reclaimed, Count: ev.count, Budget: s.maxBytes})
}

// Entry is one live record surfaced by Recent for cache pre-warming.
type Entry struct {
	Key       Key
	GraphHash [32]byte
	// Payload aliases View.Bytes(): valid until the view is released.
	Payload []byte
	// View is the pinned verified read the payload came from. The caller
	// owns it and must Release it (directly, or by handing the view on to
	// whoever retains the payload).
	View View
}

// Recent returns up to n live entries, most recently used first, each with
// a pinned verified view (corrupt files are quarantined and skipped,
// exactly as on Get, but without hit/miss or access-time accounting: a
// pre-warm read is not a serving decision). The service uses it to pre-warm
// its in-memory cache on startup.
func (s *Store) Recent(n int) []Entry {
	s.mu.Lock()
	keys := make([]Key, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil && len(keys) < n; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	s.mu.Unlock()
	// Reads run key-by-key with no lock held; a key evicted or quarantined
	// since the snapshot simply misses and is skipped.
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		v, ok := s.getView(k, false)
		if !ok {
			continue
		}
		h, err := DecodeHeader(v.img)
		if err != nil { // unreachable: the view is verified
			v.Release()
			continue
		}
		out = append(out, Entry{Key: k, GraphHash: h.GraphHash, Payload: v.Bytes(), View: v})
	}
	return out
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// reverifyStrikes is how many consecutive failed re-verifications doom a
// quarantined file: "fail twice and you are gone" keeps genuinely corrupt
// bytes from haunting the quarantine directory forever, while a single
// fluke (a read racing an unlink, an injected fault during the pass) gets a
// second look.
const reverifyStrikes = 2

// Reverify runs one pass over the quarantine directory, re-checking every
// entry end-to-end against its header checksum — the same verification a
// Get performs. A file that proves intact is restored: renamed back into
// objects/ and re-indexed as live (or, when its key was re-solved and is
// live again meanwhile, discarded as a redundant verified copy). A file
// that fails collects a strike and is deleted at reverifyStrikes. The
// background loop armed by Options.ReverifyEvery calls this periodically;
// tests and operators can call it directly. Returns the restored and
// deleted counts of this pass.
func (s *Store) Reverify() (restored, deleted int) {
	if s.ro {
		// Restores rename files and append index records: the writable
		// owner's reverifier does that; a read-only opener just serves.
		return 0, 0
	}
	names, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0, 0
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, ".res") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".res"))
		if err != nil || len(raw) != 32 {
			continue
		}
		var k Key
		copy(k[:], raw)
		qpath := s.quarantinePath(k)
		// Verify outside s.mu (file reads must not stall Gets); the entry
		// table mutation below re-checks liveness under the lock.
		size, verr := verifyEntryFile(qpath, k)
		if os.IsNotExist(verr) {
			continue // raced with a concurrent restore/delete
		}
		s.mu.Lock()
		if verr != nil {
			s.strikes[k]++
			if s.strikes[k] >= reverifyStrikes {
				delete(s.strikes, k)
				if os.Remove(qpath) == nil {
					s.stats.ReverifyDeleted++
					deleted++
					s.emit(obs.EvStoreReverifyDrop, k, verr.Error())
				}
			}
			s.mu.Unlock()
			continue
		}
		delete(s.strikes, k)
		if _, live := s.entries[k]; live {
			// The key was re-solved (or re-stored) while quarantined; the
			// live object wins and the verified copy is redundant.
			os.Remove(qpath)
			s.stats.Restored++
			restored++
			s.emit(obs.EvStoreRestore, k, "")
			s.mu.Unlock()
			continue
		}
		if os.Rename(qpath, s.objPath(k)) != nil {
			s.mu.Unlock()
			continue
		}
		e := &entry{key: k, size: size, atime: s.stampLocked()}
		e.el = s.ll.PushFront(e)
		s.entries[k] = e
		s.bytes += size
		s.stats.Restored++
		restored++
		s.emit(obs.EvStoreRestore, k, "")
		atime := e.atime
		s.mu.Unlock()
		// Best-effort index record (appends happen only on the writer
		// goroutine, so route through it like Get's touch records); a lost
		// line only means orphan adoption re-indexes the file on restart.
		// Byte-budget overshoot from restores is reconciled by the next
		// put's eviction pass rather than here.
		s.recordTouch(k, atime)
	}
	return restored, deleted
}

func (s *Store) reverifyLoop(every time.Duration) {
	defer close(s.revDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.revStop:
			return
		case <-t.C:
			s.Reverify()
		}
	}
}

// syncDir fsyncs a directory so a preceding rename is durable. Filesystems
// that reject directory fsync (some CI overlays) are tolerated: the rename
// itself is still atomic, only its durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}
