package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"twoecss/internal/faults"
)

func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faults.Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	names, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestReverifyRestoresSpuriousQuarantine is the self-healing core: a
// transient read failure (injected) quarantines an intact file; a Reverify
// pass must prove it clean, restore it to the live set, and serve it again.
func TestReverifyRestoresSpuriousQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	putN(t, s, 2)

	armFaults(t, "store.read:error,count=1")
	k, _, _ := mkKey(0)
	if _, ok := s.Get(k); ok {
		t.Fatal("read with injected fault reported a hit")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 1 || st.Corruptions != 1 {
		t.Fatalf("post-fault stats %+v, want 1 quarantined / 1 survivor", st)
	}
	if quarantineCount(t, dir) != 1 {
		t.Fatal("quarantine dir does not hold the file")
	}

	restored, deleted := s.Reverify()
	if restored != 1 || deleted != 0 {
		t.Fatalf("Reverify = (%d, %d), want (1, 0)", restored, deleted)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payloadFor(0)) {
		t.Fatalf("restored entry not served (ok=%v)", ok)
	}
	st = s.Stats()
	if st.Restored != 1 || st.Entries != 2 || quarantineCount(t, dir) != 0 {
		t.Fatalf("post-restore stats %+v, quarantine %d", st, quarantineCount(t, dir))
	}

	// The restore survives a restart (index record or orphan adoption).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, 0)
	defer re.Close()
	if got, ok := re.Get(k); !ok || !bytes.Equal(got, payloadFor(0)) {
		t.Fatalf("restored entry lost across restart (ok=%v)", ok)
	}
}

// TestReverifyDeletesCorruptAfterTwoStrikes: genuinely damaged bytes get
// two chances, then the quarantined file is removed for good.
func TestReverifyDeletesCorruptAfterTwoStrikes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	putN(t, s, 1)

	k, _, _ := mkKey(0)
	path := filepath.Join(dir, "objects", fmt.Sprintf("%x.res", k[:]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	if quarantineCount(t, dir) != 1 {
		t.Fatal("corrupt file not quarantined")
	}

	if restored, deleted := s.Reverify(); restored != 0 || deleted != 0 {
		t.Fatalf("first pass = (%d, %d), want strike only", restored, deleted)
	}
	if quarantineCount(t, dir) != 1 {
		t.Fatal("file deleted on first strike")
	}
	if restored, deleted := s.Reverify(); restored != 0 || deleted != 1 {
		t.Fatalf("second pass = (%d, %d), want (0, 1)", restored, deleted)
	}
	st := s.Stats()
	if st.ReverifyDeleted != 1 || quarantineCount(t, dir) != 0 {
		t.Fatalf("stats %+v, quarantine %d", st, quarantineCount(t, dir))
	}
}

// TestReverifyDiscardsRedundantCopy: a key re-stored while its old file sat
// in quarantine keeps the live object; the verified quarantine copy is
// counted restored and removed rather than clobbering the newer write.
func TestReverifyDiscardsRedundantCopy(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	putN(t, s, 1)

	armFaults(t, "store.read:error,count=1")
	k, gh, op := mkKey(0)
	if _, ok := s.Get(k); ok {
		t.Fatal("faulted read hit")
	}
	faults.Disarm()
	// Re-store the key (the service's re-solve write-through does this).
	if err := s.Put(k, gh, op, payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	restored, deleted := s.Reverify()
	if restored != 1 || deleted != 0 {
		t.Fatalf("Reverify = (%d, %d), want (1, 0)", restored, deleted)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want exactly one live entry", st)
	}
	if quarantineCount(t, dir) != 0 {
		t.Fatal("redundant quarantine copy not removed")
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, payloadFor(0)) {
		t.Fatal("live entry damaged by reverify")
	}
}

// TestQuarantineFailureCounted: when the quarantine rename itself fails
// with the damaged file still present, the failure must be counted, not
// silently ignored.
func TestQuarantineFailureCounted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	putN(t, s, 1)

	// Replace the quarantine directory with a plain file: the rename into
	// it now fails with ENOTDIR, which is not a missing-source error.
	qdir := filepath.Join(dir, "quarantine")
	if err := os.Remove(qdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qdir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	k, _, _ := mkKey(0)
	path := filepath.Join(dir, "objects", fmt.Sprintf("%x.res", k[:]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	st := s.Stats()
	if st.QuarantineFails != 1 || st.Quarantined != 0 || st.Corruptions != 1 {
		t.Fatalf("stats %+v, want the failed quarantine counted", st)
	}
}

// TestBackgroundReverifierRestores: the OpenWith-armed loop restores a
// spuriously quarantined entry without anyone calling Reverify.
func TestBackgroundReverifierRestores(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{ReverifyEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putN(t, s, 1)

	armFaults(t, "store.read:error,count=1")
	k, _, _ := mkKey(0)
	s.Get(k)
	faults.Disarm()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Restored >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background reverifier never restored (stats %+v)", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, payloadFor(0)) {
		t.Fatal("restored entry not served")
	}
}
