package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mkKey derives a deterministic key and distinct graph-hash/options blobs
// from a small integer so tests can mint instances cheaply.
func mkKey(i int) (key Key, ghash, opts [32]byte) {
	key = sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	ghash = sha256.Sum256([]byte(fmt.Sprintf("ghash-%d", i)))
	opts[0] = byte(i)
	return
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"edges":[[0,%d,1]],"weight":%d}`, i, i))
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func putN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k, gh, op := mkKey(i)
		if err := s.Put(k, gh, op, payloadFor(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	putN(t, s, 4)
	for i := 0; i < 4; i++ {
		k, _, _ := mkKey(i)
		got, ok := s.Get(k)
		if !ok {
			t.Fatalf("entry %d missing", i)
		}
		if !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("entry %d payload mismatch: %q", i, got)
		}
	}
	if k, _, _ := mkKey(99); s.Contains(k) {
		t.Fatal("Contains reports an absent key")
	}
	st := s.Stats()
	if st.Puts != 4 || st.Hits != 4 || st.Entries != 4 || st.Corruptions != 0 {
		t.Fatalf("stats %+v, want 4 puts / 4 hits / 4 entries / 0 corruptions", st)
	}
	wantBytes := int64(0)
	for i := 0; i < 4; i++ {
		wantBytes += int64(HeaderSize + len(payloadFor(i)))
	}
	if st.Bytes != wantBytes {
		t.Fatalf("bytes %d, want %d", st.Bytes, wantBytes)
	}
}

func TestDuplicatePutNotRewritten(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	k, gh, op := mkKey(1)
	for i := 0; i < 3; i++ {
		if err := s.Put(k, gh, op, payloadFor(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.DupPuts != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 put / 2 dup puts / 1 entry", st)
	}
}

func TestReopenServesIdenticalPayloads(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	putN(t, s, 6)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, 0)
	defer r.Close()
	st := r.Stats()
	if st.Entries != 6 || st.Corruptions != 0 {
		t.Fatalf("reopened stats %+v, want 6 entries / 0 corruptions", st)
	}
	for i := 0; i < 6; i++ {
		k, _, _ := mkKey(i)
		got, ok := r.Get(k)
		if !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("entry %d after reopen: ok=%v payload=%q", i, ok, got)
		}
	}
}

func TestRecentOrderAndHeaderFields(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	putN(t, s, 3)
	// Touch entry 0 so it becomes most recent.
	k0, gh0, _ := mkKey(0)
	if _, ok := s.Get(k0); !ok {
		t.Fatal("entry 0 missing")
	}
	got := s.Recent(2)
	if len(got) != 2 {
		t.Fatalf("Recent(2) returned %d entries", len(got))
	}
	for _, e := range got {
		defer e.View.Release()
	}
	if got[0].Key != k0 || got[0].GraphHash != gh0 {
		t.Fatalf("most recent entry is %x (ghash %x), want entry 0", got[0].Key[:4], got[0].GraphHash[:4])
	}
	if !bytes.Equal(got[0].Payload, payloadFor(0)) {
		t.Fatal("Recent payload mismatch")
	}
	// Recent reads must not count as serving hits (putN made no Gets, the
	// touch above made one).
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("hits %d after Recent, want 1", st.Hits)
	}
}

func TestEvictionKeepsBudgetAndLRUOrder(t *testing.T) {
	entrySize := int64(HeaderSize + len(payloadFor(0)))
	budget := 3 * entrySize
	s := mustOpen(t, t.TempDir(), budget)
	defer s.Close()
	// Insert 0..2 (fills budget), then touch 0 so 1 is oldest, then insert
	// 3 and 4: evictions must take 1 then 2, never the touched 0.
	putN(t, s, 3)
	k0, _, _ := mkKey(0)
	if _, ok := s.Get(k0); !ok {
		t.Fatal("entry 0 missing")
	}
	for i := 3; i < 5; i++ {
		k, gh, op := mkKey(i)
		if err := s.Put(k, gh, op, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 2 || st.Entries != 3 || st.Bytes > budget {
		t.Fatalf("stats %+v, want 2 evictions / 3 entries / bytes <= %d", st, budget)
	}
	for i, want := range map[int]bool{0: true, 1: false, 2: false, 3: true, 4: true} {
		k, _, _ := mkKey(i)
		if got := s.Contains(k); got != want {
			t.Fatalf("entry %d present=%v, want %v", i, got, want)
		}
	}
	// Evicted files are gone from disk, not quarantined (they were valid).
	k1, _, _ := mkKey(1)
	if _, err := os.Stat(s.objPath(k1)); !os.IsNotExist(err) {
		t.Fatalf("evicted object still on disk (err=%v)", err)
	}
}

func TestReopenAppliesBudget(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	putN(t, s, 5)
	s.Close()
	entrySize := int64(HeaderSize + len(payloadFor(0)))
	r := mustOpen(t, dir, 2*entrySize)
	defer r.Close()
	st := r.Stats()
	if st.Entries != 2 || st.Bytes > 2*entrySize || st.Evictions != 3 {
		t.Fatalf("stats %+v, want 2 entries within budget after 3 evictions", st)
	}
	// The survivors are the most recently written (3 and 4).
	for _, i := range []int{3, 4} {
		k, _, _ := mkKey(i)
		if !r.Contains(k) {
			t.Fatalf("most-recent entry %d evicted on reopen", i)
		}
	}
}

func TestOrphanObjectAdopted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	putN(t, s, 2)
	s.Close()
	// Simulate a crash between object rename and index append: the object
	// exists but no index line mentions it.
	if err := os.Remove(filepath.Join(dir, "index.log")); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, 0)
	defer r.Close()
	if st := r.Stats(); st.Entries != 2 || st.Corruptions != 0 {
		t.Fatalf("stats %+v, want both orphans adopted", st)
	}
	for i := 0; i < 2; i++ {
		k, _, _ := mkKey(i)
		if got, ok := r.Get(k); !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("orphan %d not served: ok=%v", i, ok)
		}
	}
}

// TestCorruptionQuarantine is the satellite corruption-recovery matrix:
// a truncated file, a flipped payload byte, and a stale index line must
// each be quarantined on startup while every healthy entry keeps serving.
func TestCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	putN(t, s, 5)
	kTrunc, _, _ := mkKey(1)
	kFlip, _, _ := mkKey(3)
	s.Close()

	// Truncate entry 1 mid-payload.
	if err := os.Truncate(filepath.Join(dir, "objects", objName(kTrunc)), int64(HeaderSize+3)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of entry 3.
	flipPath := filepath.Join(dir, "objects", objName(kFlip))
	b, err := os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	b[HeaderSize] ^= 0x01
	if err := os.WriteFile(flipPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Append a stale index line for a key with no file, plus a torn line.
	staleKey, _, _ := mkKey(77)
	f, err := os.OpenFile(filepath.Join(dir, "index.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "put %x 160 999\n", staleKey[:])
	fmt.Fprint(f, "put deadbeef") // torn final append, no newline
	f.Close()

	r := mustOpen(t, dir, 0)
	defer r.Close()
	st := r.Stats()
	if st.Corruptions != 3 {
		t.Fatalf("corruptions %d, want exactly 3 (truncated, flipped, stale)", st.Corruptions)
	}
	if st.Entries != 3 {
		t.Fatalf("entries %d, want the 3 healthy survivors", st.Entries)
	}
	for _, i := range []int{0, 2, 4} {
		k, _, _ := mkKey(i)
		got, ok := r.Get(k)
		if !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("healthy entry %d not served after quarantine: ok=%v", i, ok)
		}
	}
	for _, k := range []Key{kTrunc, kFlip} {
		if _, err := os.Stat(filepath.Join(dir, "quarantine", objName(k))); err != nil {
			t.Fatalf("corrupt entry %x not quarantined: %v", k[:4], err)
		}
		if _, ok := r.Get(k); ok {
			t.Fatalf("corrupt entry %x still served", k[:4])
		}
	}
}

// TestGetQuarantinesRuntimeCorruption covers corruption that appears while
// the store is open: the damaged read is a miss, the file is quarantined,
// and subsequent lookups miss cleanly.
func TestGetQuarantinesRuntimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	defer s.Close()
	putN(t, s, 2)
	k, _, _ := mkKey(0)
	path := filepath.Join(dir, "objects", objName(k))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 corruption / 1 surviving entry", st)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	putN(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	k, gh, op := mkKey(9)
	if err := s.Put(k, gh, op, payloadFor(9)); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	// Reads still work off the in-memory index.
	k0, _, _ := mkKey(0)
	if _, ok := s.Get(k0); !ok {
		t.Fatal("Get after Close lost the entry")
	}
}

func objName(k Key) string { return fmt.Sprintf("%x.res", k[:]) }
