package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeHeader is the satellite fuzz target for the on-disk format:
// DecodeHeader must never panic on arbitrary bytes (Open feeds it raw file
// prefixes during startup verification), and any input it accepts must
// round-trip through EncodeHeader field-for-field.
func FuzzDecodeHeader(f *testing.F) {
	valid := EncodeHeader(headerFor(
		Key{1, 2, 3}, [32]byte{4, 5}, [32]byte{6}, []byte(`{"edges":[]}`)))
	f.Add(valid[:])
	f.Add(valid[:HeaderSize-1]) // one byte short
	f.Add([]byte{})
	f.Add([]byte("2ECR"))
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	wrongVersion := valid
	wrongVersion[4] = 99
	f.Add(wrongVersion[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		re := EncodeHeader(h)
		if got, err2 := DecodeHeader(re[:]); err2 != nil || got != h {
			t.Fatalf("accepted header does not round-trip: %+v / %v", got, err2)
		}
		// The canonical fields must match the accepted input byte-for-byte
		// (reserved bytes excepted: Encode zeroes them).
		if !bytes.Equal(re[8:HeaderSize], data[8:HeaderSize]) {
			t.Fatalf("re-encoded field bytes differ from accepted input")
		}
	})
}

// FuzzVerifyBytes drives the full file verifier with arbitrary images: it
// must reject without panicking, and must accept a well-formed image built
// from any payload.
func FuzzVerifyBytes(f *testing.F) {
	f.Add([]byte{}, []byte(`{"w":1}`))
	f.Add(bytes.Repeat([]byte{0x41}, HeaderSize+8), []byte{})
	f.Fuzz(func(t *testing.T, image, payload []byte) {
		var key Key
		key[0] = 7
		if _, err := verifyBytes(image, key); err == nil {
			// Arbitrary images that verify must really be well-formed:
			// re-verify the payload length claim.
			h, _ := DecodeHeader(image)
			if uint64(len(image)-HeaderSize) != h.PayloadLen {
				t.Fatal("verifier accepted a length-inconsistent image")
			}
		}
		h := EncodeHeader(headerFor(key, [32]byte{}, [32]byte{}, payload))
		good := append(h[:], payload...)
		if _, err := verifyBytes(good, key); err != nil {
			t.Fatalf("verifier rejected a well-formed image: %v", err)
		}
	})
}
