package store

// This file is the zero-copy read path (DESIGN.md §8.2): object files are
// mapped into memory once, verified end-to-end at map time, and served as
// refcounted pinned views whose bytes alias the page cache directly. The
// store lock brackets only the refcount and table bookkeeping — never the
// map, read, or hash — so a slow disk stalls one reader, not the store.
// Platforms without mmap (and stores opened with Options.NoMmap) degrade to
// a per-read heap copy via os.ReadFile, verified on every call; both paths
// pin the entry across the off-lock I/O so eviction defers its unlink to
// the last reader.

import (
	"errors"
	"os"

	"twoecss/internal/faults"
)

// ErrReadOnly reports a mutating operation on a store opened with
// Options.ReadOnly.
var ErrReadOnly = errors.New("store: read-only")

// MmapStats counts the zero-copy read path. Embedded in Stats, so the
// field set is part of the operational API.
type MmapStats struct {
	// Maps counts object files mapped (and checksum-verified) into memory;
	// Fallbacks counts reads served by a private heap copy instead (mmap
	// unsupported, disabled, or failed for that file).
	Maps      int64 `json:"maps"`
	Fallbacks int64 `json:"fallbacks"`
	// Pins and Unpins count view references taken and released on mapped
	// entries; their difference is the number of live pinned views.
	Pins   int64 `json:"pins"`
	Unpins int64 `json:"unpins"`
	// UnmapDeferred counts evictions that found the entry still pinned —
	// a mapped view outstanding, or a fallback read mid-flight — and
	// deferred the munmap/unlink to the last reader's release.
	UnmapDeferred int64 `json:"unmap_deferred"`
	// ActiveMaps and MappedBytes describe the currently mapped set,
	// including doomed mappings kept alive by outstanding pins.
	ActiveMaps  int   `json:"active_maps"`
	MappedBytes int64 `json:"mapped_bytes"`
}

// mapping is one mmapped object file image shared by every warm view of its
// key. refs and doomed are guarded by the owning store's mutex; data is
// immutable for the mapping's lifetime and read without the lock.
type mapping struct {
	s    *Store
	key  Key
	data []byte // full file image: header + payload
	refs int    // outstanding View pins
	// doomed marks a mapping removed from the warm table (evicted,
	// quarantined, store closed): the region is munmapped when the last
	// pin drops instead of being rewarmed.
	doomed bool
}

// View is a pinned read of one stored entry. On the mmap path Bytes aliases
// the mapped file image — zero copies between disk and the response writer —
// and stays valid until Release even if the entry is evicted or quarantined
// meanwhile. On the fallback path the bytes are a private heap copy and the
// pin is a no-op. The zero View is valid: Bytes returns nil and
// Retain/Release do nothing, so `defer v.Release()` is always safe.
type View struct {
	m   *mapping
	img []byte // full file image (header + payload)
}

// Bytes returns the entry payload. The slice must not be mutated, and for
// mapped views must not be used after the final Release.
func (v View) Bytes() []byte {
	if len(v.img) < HeaderSize {
		return nil
	}
	return v.img[HeaderSize:]
}

// Mapped reports whether the view aliases an mmapped region (and therefore
// must be released) rather than owning a private heap copy.
func (v View) Mapped() bool { return v.m != nil }

// Retain adds another pin, so a holder can hand the bytes to a second
// consumer (an HTTP response writer, say) that releases independently.
func (v View) Retain() {
	if v.m == nil {
		return
	}
	s := v.m.s
	s.mu.Lock()
	v.m.refs++
	s.stats.Mmap.Pins++
	s.mu.Unlock()
}

// Release drops one pin; call it exactly once per pinned view. When the
// last pin on a doomed mapping drops, the region is munmapped outside the
// store lock.
func (v View) Release() {
	if v.m == nil {
		return
	}
	s := v.m.s
	s.mu.Lock()
	v.m.refs--
	s.stats.Mmap.Unpins++
	var unmap []byte
	if v.m.refs == 0 && v.m.doomed {
		unmap = v.m.data
		s.stats.Mmap.ActiveMaps--
		s.stats.Mmap.MappedBytes -= int64(len(v.m.data))
	}
	s.mu.Unlock()
	if unmap != nil {
		_ = unmapFile(unmap)
	}
}

// GetView returns a pinned zero-copy view of the payload stored under key,
// or ok=false on a miss. The file is verified end-to-end against the header
// checksum when first mapped (the fallback path re-verifies on every read);
// a file that fails verification is quarantined and reported as a miss. The
// access time of a hit feeds LRU eviction. No lock is held across file I/O
// or hashing, and a warm hit performs no I/O and no payload allocation at
// all — it is a refcount bump on the existing mapping.
func (s *Store) GetView(key Key) (View, bool) { return s.getView(key, true) }

// getView implements GetView; Recent passes serving=false to skip the
// hit/miss and access-time accounting (pre-warm reads are not serving
// decisions).
func (s *Store) getView(key Key, serving bool) (View, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		if serving {
			s.stats.Misses++
		}
		s.mu.Unlock()
		return View{}, false
	}
	if m, ok := s.maps[key]; ok {
		// Warm path: already mapped and verified; pinning is bookkeeping.
		m.refs++
		s.stats.Mmap.Pins++
		var now int64
		if serving {
			now = s.stampLocked()
			e.atime = now
			s.ll.MoveToFront(e.el)
			s.stats.Hits++
		}
		s.mu.Unlock()
		if now != 0 {
			s.recordTouch(key, now)
		}
		return View{m: m, img: m.data}, true
	}
	// Cold path: pin the entry so eviction defers the unlink to us, then
	// map (or read) and verify with no store lock held.
	e.pins++
	s.mu.Unlock()

	m, img, err := s.loadFile(key)

	s.mu.Lock()
	e.pins--
	cur, live := s.entries[key]
	sameEntry := live && cur == e
	// If eviction doomed this entry while we held the pin, the unlink was
	// deferred to the last pin — perform it only when no newer entry for
	// the same key owns the path meanwhile (a re-put after the eviction).
	var unlink string
	if e.doomed && e.pins == 0 && !live {
		unlink = s.objPath(key)
	}
	var unmap []byte
	if err != nil {
		if serving {
			s.stats.Misses++
		}
		if sameEntry {
			// Same transient-vs-real ambiguity as any failed read:
			// quarantine for the reverifier to adjudicate.
			s.stats.Corruptions++
			s.dropLocked(e)
			if d, _ := s.doomMappingLocked(key); d != nil {
				unmap = d // a racing load installed a map before our failure
			}
			s.quarantineLocked(key)
		}
		s.mu.Unlock()
		if unlink != "" {
			os.Remove(unlink)
		}
		if unmap != nil {
			_ = unmapFile(unmap)
		}
		return View{}, false
	}
	v := View{img: img}
	if m != nil {
		s.stats.Mmap.Maps++
		s.stats.Mmap.Pins++
		s.stats.Mmap.ActiveMaps++
		s.stats.Mmap.MappedBytes += int64(len(img))
		m.refs = 1
		v.m = m
		if sameEntry && s.maps != nil && s.maps[key] == nil {
			s.maps[key] = m
		} else {
			// Evicted while loading, store closed, or a concurrent load won
			// the table slot: serve this verified mapping one-shot and
			// munmap on its last Release.
			m.doomed = true
		}
	} else {
		s.stats.Mmap.Fallbacks++
	}
	var now int64
	if serving {
		s.stats.Hits++
		if sameEntry {
			now = s.stampLocked()
			e.atime = now
			s.ll.MoveToFront(e.el)
		}
	}
	s.mu.Unlock()
	if unlink != "" {
		os.Remove(unlink)
	}
	if now != 0 {
		s.recordTouch(key, now)
	}
	return v, true
}

// loadFile maps (or, when mmap is disabled or unavailable, reads) the
// object file for key and verifies it end-to-end. A non-nil mapping means
// img aliases a mapped region the caller owns; nil means img is a private
// heap copy. Called with no lock held; callers pin the entry around it.
func (s *Store) loadFile(key Key) (*mapping, []byte, error) {
	// store.read simulates a transient read failure (EIO): the entry is
	// quarantined exactly as a real one would be, and — since the file
	// itself is intact — the reverifier later proves it clean and restores
	// it. That loop is what the chaos smoke gates on.
	if err := faults.Point("store.read"); err != nil {
		return nil, nil, err
	}
	path := s.objPath(key)
	if !s.noMmap {
		img, err := mapFile(path)
		switch {
		case err == nil:
			if _, verr := verifyBytes(img, key); verr != nil {
				_ = unmapFile(img)
				return nil, nil, verr
			}
			return &mapping{s: s, key: key, data: img}, img, nil
		case os.IsNotExist(err):
			// A missing file fails identically on the heap path; don't
			// mask it as a fallback.
			return nil, nil, err
		}
		// Any other map failure (unsupported platform, zero-length corrupt
		// file, exotic filesystem) degrades to the heap path below.
	}
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if _, verr := verifyBytes(img, key); verr != nil {
		return nil, nil, verr
	}
	return nil, img, nil
}

// doomMappingLocked removes key's mapping from the warm table. If no view
// pins it, the region is returned for the caller to munmap outside s.mu;
// otherwise the munmap is deferred to the last Release. Caller holds s.mu.
func (s *Store) doomMappingLocked(key Key) (unmap []byte, deferred bool) {
	m, ok := s.maps[key]
	if !ok {
		return nil, false
	}
	delete(s.maps, key)
	m.doomed = true
	if m.refs == 0 {
		s.stats.Mmap.ActiveMaps--
		s.stats.Mmap.MappedBytes -= int64(len(m.data))
		return m.data, false
	}
	return nil, true
}

// recordTouch enqueues a best-effort persistent atime record: drop it —
// counted, so eviction-order degradation is observable — rather than block
// a read behind a saturated writer.
func (s *Store) recordTouch(key Key, atime int64) {
	if s.ro {
		return
	}
	s.closeMu.RLock()
	if !s.closed {
		select {
		case s.writeCh <- writeOp{key: key, atime: atime}:
		default:
			s.mu.Lock()
			s.stats.TouchDrops++
			s.mu.Unlock()
		}
	}
	s.closeMu.RUnlock()
}
