// Package store is the disk-backed, content-addressed result store behind
// the solver service's in-memory LRU (DESIGN.md §8). Each entry is one file
// holding a fixed-width versioned header — content key, canonical graph
// hash, the result-relevant options blob, and a SHA-256 payload checksum —
// followed by the canonical wire payload. Files are written atomically
// (temp file + rename + directory fsync) and recorded in an fsync'd
// append-only index log that Open replays for a fast startup scan; corrupt
// or truncated entries are quarantined, never fatal. On-disk size is
// bounded by LRU eviction on the access times recorded in the index.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Key is the 32-byte content address of an entry. The service layer uses
// its cache key (SHA-256 over graph hash + options); the store treats it as
// an opaque identifier.
type Key = [32]byte

// Format constants. Version bumps when the header layout changes; Open
// quarantines entries whose version it does not understand rather than
// guessing at their layout.
const (
	magic         = "2ECR"
	formatVersion = 1
	// HeaderSize is the fixed byte length of an encoded header.
	HeaderSize = 4 + 2 + 2 + 32 + 32 + 32 + 8 + 32
	// MaxPayload bounds a single entry's payload so a corrupt length field
	// cannot drive a huge allocation during startup verification.
	MaxPayload = 1 << 30
)

// Header is the per-file metadata written ahead of the payload.
type Header struct {
	// Version is the format version the file was written with.
	Version uint16
	// Key is the content address the entry is stored under.
	Key Key
	// GraphHash is the canonical digest of the solved instance
	// (graph.Hash), kept so an operator can map files back to instances
	// without the service's key derivation.
	GraphHash [32]byte
	// Options is the fixed-width encoding of the result-relevant solve
	// options, exactly the blob the service hashes into Key.
	Options [32]byte
	// PayloadLen is the byte length of the payload following the header.
	PayloadLen uint64
	// Checksum is the SHA-256 of the payload bytes.
	Checksum [32]byte
}

// EncodeHeader renders h into its fixed-width on-disk form.
func EncodeHeader(h Header) [HeaderSize]byte {
	var b [HeaderSize]byte
	copy(b[0:4], magic)
	binary.LittleEndian.PutUint16(b[4:6], h.Version)
	// b[6:8] reserved, zero.
	copy(b[8:40], h.Key[:])
	copy(b[40:72], h.GraphHash[:])
	copy(b[72:104], h.Options[:])
	binary.LittleEndian.PutUint64(b[104:112], h.PayloadLen)
	copy(b[112:144], h.Checksum[:])
	return b
}

// Errors returned by DecodeHeader, distinguishable for tests; every decode
// failure is handled by quarantining the file, never by panicking.
var (
	ErrShortHeader = errors.New("store: short header")
	ErrBadMagic    = errors.New("store: bad magic")
	ErrBadVersion  = errors.New("store: unsupported format version")
	ErrBadLength   = errors.New("store: implausible payload length")
)

// DecodeHeader parses the first HeaderSize bytes of b. It never panics on
// arbitrary input (fuzzed in fuzz_test.go): every malformed prefix yields a
// descriptive error instead.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("%w: %d bytes, need %d", ErrShortHeader, len(b), HeaderSize)
	}
	if string(b[0:4]) != magic {
		return h, fmt.Errorf("%w: % x", ErrBadMagic, b[0:4])
	}
	h.Version = binary.LittleEndian.Uint16(b[4:6])
	if h.Version != formatVersion {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	copy(h.Key[:], b[8:40])
	copy(h.GraphHash[:], b[40:72])
	copy(h.Options[:], b[72:104])
	h.PayloadLen = binary.LittleEndian.Uint64(b[104:112])
	if h.PayloadLen > MaxPayload {
		return h, fmt.Errorf("%w: %d", ErrBadLength, h.PayloadLen)
	}
	copy(h.Checksum[:], b[112:144])
	return h, nil
}

// headerFor builds the version-current header for a payload.
func headerFor(key Key, graphHash, options [32]byte, payload []byte) Header {
	return Header{
		Version:    formatVersion,
		Key:        key,
		GraphHash:  graphHash,
		Options:    options,
		PayloadLen: uint64(len(payload)),
		Checksum:   sha256.Sum256(payload),
	}
}
