package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tb.Render()
	for _, want := range []string{"== X: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFamilies(t *testing.T) {
	for _, fam := range []string{"er", "grid", "ring", "treeleafcycle", "random"} {
		g, err := family(fam, 40, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !g.TwoEdgeConnected() {
			t.Fatalf("%s instance not 2EC", fam)
		}
	}
	if _, err := family("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestE1Small(t *testing.T) {
	tb, err := E1([]int{32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("E1 rows = %d", len(tb.Rows))
	}
}

func TestE2Small(t *testing.T) {
	tb, err := E2([]int{24}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("E2 rows = %d", len(tb.Rows))
	}
}

func TestE5E9Small(t *testing.T) {
	if _, err := E5([]int{32}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := E9(60, 3); err != nil {
		t.Fatal(err)
	}
}

func TestE7E10Small(t *testing.T) {
	tb, err := E7([]int{24}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("E7 rows = %d", len(tb.Rows))
	}
	tb, err = E10([]int{24}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[3] != "true" || r[4] != "true" {
			t.Fatalf("Lemma 4.18 violated: %v", r)
		}
	}
}

func TestE12Small(t *testing.T) {
	tb, err := E12(2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[3] != "0" || r[4] != "0" {
			t.Fatalf("lemma 5.4/5.5 errors: %v", r)
		}
	}
}
