package experiments

// Parallel cell runner: every experiment is a list of independent cells
// (family × size × seed), each producing a few table rows. Cells are
// evaluated on a worker pool; results are collected by cell index, so the
// rendered table is byte-identical for any pool size. Cells must derive all
// randomness from their own parameters, never from state shared with other
// cells.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
)

// Workers is the size of the worker pool used to evaluate experiment cells;
// <=0 means GOMAXPROCS. cmd/bench exposes it as -workers.
var Workers = 0

// newNetwork returns the network for one experiment cell. The engine
// always runs sequentially inside the harness: cell-level parallelism is
// the only parallelism here, so trajectory numbers are comparable across
// -workers settings and nested engine pools never oversubscribe the
// machine. Engine parallelism is measured separately by the
// internal/congest microbenchmarks. Workers == 1 also means these
// networks never spawn a worker pool, so no Close is needed per cell.
func newNetwork(g *graph.Graph) *congest.Network {
	net := congest.NewNetwork(g)
	net.Workers = 1
	return net
}

func poolSize(cells int) int {
	w := Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellOut is what one experiment cell contributes to its table: rows plus
// the engine statistics of every network the cell ran (for the benchmark
// trajectory recorded by cmd/bench -json).
type cellOut struct {
	rows     [][]string
	rounds   int64
	messages int64
}

// addStats folds a finished network's statistics into the cell result.
func (c *cellOut) addStats(net *congest.Network) {
	st := net.Stats()
	c.rounds += st.TotalRounds()
	c.messages += st.Messages
}

// forEachCell evaluates fn(i) for every cell index on the pool and returns
// the results in index order. On failure it reports the error of the
// lowest-indexed failing cell, making errors deterministic too.
func forEachCell(cells int, fn func(i int) (cellOut, error)) ([]cellOut, error) {
	out := make([]cellOut, cells)
	errs := make([]error, cells)
	w := poolSize(cells)
	if w == 1 {
		for i := 0; i < cells; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runCells evaluates all cells of t in parallel and appends their rows and
// statistics to the table in deterministic cell order.
func runCells(t *Table, cells int, fn func(i int) (cellOut, error)) error {
	outs, err := forEachCell(cells, fn)
	if err != nil {
		return err
	}
	for _, c := range outs {
		t.Rows = append(t.Rows, c.rows...)
		t.Rounds += c.rounds
		t.Messages += c.messages
	}
	return nil
}
