// Package experiments defines the reproduction experiments E1-E12 (see
// DESIGN.md): each one turns a theorem or claim of the paper into a
// measurable run and renders a table row set. Every experiment is a list of
// independent cells (family × size × seed) evaluated on a worker pool (see
// parallel.go) with deterministic row order. The same runners back
// cmd/bench and the root-level testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"twoecss/internal/baseline"
	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/layering"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/setcover"
	"twoecss/internal/shortcuts"
	"twoecss/internal/tap"
	"twoecss/internal/tree"
)

// Table is a rendered experiment result.
type Table struct {
	ID, Title string
	Columns   []string
	Rows      [][]string
	Notes     []string
	// Rounds and Messages accumulate the engine statistics of every
	// network the experiment ran; cmd/bench -json records them as the
	// benchmark trajectory.
	Rounds, Messages int64
}

// Render prints the table in a fixed-width layout.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// cellSeed derives an independent seed for cell i of an experiment, so
// cells share no random state and can run on any worker.
func cellSeed(seed int64, i int) int64 { return seed + int64(i+1)*1000003 }

// family generates one instance of the named graph family.
func family(name string, n int, seed int64) (*graph.Graph, error) {
	cfg := graph.DefaultGenConfig(seed)
	switch name {
	case "er":
		p := 4 * math.Log(float64(n)) / float64(n)
		g := graph.ErdosRenyi(n, p, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		return g, nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return graph.Grid(side, side, cfg), nil
	case "ring":
		return graph.RingWithChords(n, n/4, cfg), nil
	case "treeleafcycle":
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return graph.TreeLeafCycle(depth, cfg), nil
	case "random":
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		return g, nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", name)
	}
}

// E1 — Theorem 1.1: certified approximation of the (5+eps) 2-ECSS
// algorithm across graph families.
func E1(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 1.1 — (5+eps)-approx 2-ECSS, certified ratios",
		Columns: []string{"family", "n", "m", "weight", "lower-bound",
			"certified-ratio", "bound(5+eps)", "rounds"},
		Notes: []string{"certified-ratio = weight / max(w(MST), dualLB/2); OPT-relative ratio is lower"},
	}
	fams := []string{"er", "grid", "ring", "treeleafcycle"}
	err := runCells(t, len(fams)*len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		fam, n := fams[i/len(sizes)], sizes[i%len(sizes)]
		g, err := family(fam, n, seed)
		if err != nil {
			return c, err
		}
		opt := ecss.DefaultOptions()
		opt.Workers = 1 // cell-level parallelism only; see parallel.go
		res, net, err := ecss.Solve(g, opt)
		if err != nil {
			return c, err
		}
		if err := ecss.Verify(g, res); err != nil {
			return c, err
		}
		c.addStats(net)
		c.rows = [][]string{{
			fam, f("%d", g.N), f("%d", g.M()), f("%d", res.Weight),
			f("%.1f", res.LowerBound), f("%.3f", res.CertifiedRatio),
			f("%.2f", 5+opt.Eps), f("%d", net.Stats().TotalRounds()),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E2 — Theorem 4.19: (4+eps)-approx TAP against the exact optimum on path
// instances (weighted interval covering) and the exact G' optimum
// (arborescence) on random instances.
func E2(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 4.19 — (4+eps)-approx weighted TAP vs exact optima",
		Columns: []string{"instance", "n", "tap-weight", "opt", "ratio",
			"bound", "virt-weight", "opt(G')", "ratio(G')", "bound(G')"},
	}
	eps := 0.25
	err := runCells(t, len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		n := sizes[i]
		cfg := graph.DefaultGenConfig(seed + int64(n))
		g := graph.PathWithIntervals(n, n, cfg)
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		// The tree is the path itself.
		treeIDs := make([]int, 0, n-1)
		var ivs []baseline.Interval
		for id, e := range g.Edges {
			if (e.U+1 == e.V || e.V+1 == e.U) && len(treeIDs) < n-1 && isPathEdge(treeIDs, id, e) {
				treeIDs = append(treeIDs, id)
			}
		}
		rt, err := tree.NewFromEdgeSet(g, 0, treeIDs)
		if err != nil {
			return c, err
		}
		inTree := map[int]bool{}
		for _, id := range treeIDs {
			inTree[id] = true
		}
		for id, e := range g.Edges {
			if inTree[id] {
				continue
			}
			l, r := e.U, e.V
			if l > r {
				l, r = r, l
			}
			ivs = append(ivs, baseline.Interval{L: l, R: r, W: int64(e.W)})
		}
		opt, _, err := baseline.ExactPathTAP(n, ivs)
		if err != nil {
			return c, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return c, err
		}
		res, err := solver.SolveWeighted(eps, tap.Cover2)
		if err != nil {
			return c, err
		}
		_, _, optVirt, err := baseline.KhullerThurimella(rt)
		if err != nil {
			return c, err
		}
		c.addStats(net)
		c.rows = [][]string{{
			f("path+intervals"), f("%d", n), f("%d", res.Weight), f("%d", opt),
			f("%.3f", float64(res.Weight)/float64(opt)), f("%.2f", 4+2*eps),
			f("%d", res.VirtWeight), f("%d", optVirt),
			f("%.3f", float64(res.VirtWeight)/float64(optVirt)),
			f("%.2f", 2*(1+eps)*(1+eps)),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// isPathEdge keeps the first copy of each consecutive pair.
func isPathEdge(have []int, id int, e graph.Edge) bool {
	lo := e.U
	if e.V < lo {
		lo = e.V
	}
	return lo == len(have)
}

// E3 — Theorem 1.1 round bound: rounds normalized by (D+sqrt n)log^2(n)/eps.
func E3(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 1.1 — round complexity scaling",
		Columns: []string{"n", "m", "D", "simulated", "charged", "total", "normalized"},
		Notes:   []string{"normalized = total / ((D+sqrt n) * log2(n)^2 / eps); flat = matches bound"},
	}
	eps := 0.25
	err := runCells(t, len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		n := sizes[i]
		g, err := family("er", n, seed)
		if err != nil {
			return c, err
		}
		diam, err := g.DiameterApprox()
		if err != nil {
			return c, err
		}
		opt := ecss.DefaultOptions()
		opt.Eps = eps
		opt.Workers = 1 // cell-level parallelism only; see parallel.go
		_, net, err := ecss.Solve(g, opt)
		if err != nil {
			return c, err
		}
		st := net.Stats()
		lg := math.Log2(float64(n))
		norm := float64(st.TotalRounds()) / ((float64(diam) + math.Sqrt(float64(n))) * lg * lg / eps)
		c.addStats(net)
		c.rows = [][]string{{
			f("%d", n), f("%d", g.M()), f("%d", diam), f("%d", st.SimulatedRounds),
			f("%d", st.ChargedRounds), f("%d", st.TotalRounds()), f("%.3f", norm),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E4 — Theorem 1.2: the shortcut-based O(log n) algorithm; quality and
// rounds on a low-diameter planar-like family vs a worst-case-style family.
func E4(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 1.2 — O(log n)-approx TAP in O~(SC+D) rounds",
		Columns: []string{"family", "builder", "n", "D", "weight", "greedy",
			"alpha+beta", "D+sqrt(n)", "rounds"},
		Notes: []string{"alpha+beta below D+sqrt(n) on the nice family shows the shortcut advantage"},
	}
	fams := []string{"treeleafcycle", "er"}
	err := runCells(t, len(sizes)*len(fams), func(i int) (cellOut, error) {
		var c cellOut
		n, fam := sizes[i/len(fams)], fams[i%len(fams)]
		g, err := family(fam, n, seed)
		if err != nil {
			return c, err
		}
		diam, err := g.DiameterApprox()
		if err != nil {
			return c, err
		}
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return c, err
		}
		var b shortcuts.Builder
		if fam == "treeleafcycle" {
			b = &shortcuts.SteinerBuilder{G: g, BFS: bfs}
		} else {
			b = &shortcuts.GlobalBFSBuilder{G: g, BFS: bfs}
		}
		solver, err := setcover.NewSolver(net, bfs, rt, b)
		if err != nil {
			return c, err
		}
		rng := rand.New(rand.NewSource(seed))
		res, err := solver.Solve(setcover.DefaultOptions(g.N, rng))
		if err != nil {
			return c, err
		}
		gw, _, err := baseline.GreedyTAP(rt)
		if err != nil {
			return c, err
		}
		c.addStats(net)
		c.rows = [][]string{{
			fam, b.Name(), f("%d", g.N), f("%d", diam), f("%d", res.Weight),
			f("%d", gw), f("%d", res.MaxShortcutQuality),
			f("%.0f", float64(diam)+math.Sqrt(float64(g.N))),
			f("%d", net.Stats().TotalRounds()),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E5 — Claim 4.7: layer counts stay under log2(#leaves)+1.
func E5(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Claim 4.7 — number of layers is O(log n)",
		Columns: []string{"family", "n", "leaves", "layers", "log2-bound", "paths"},
	}
	fams := []struct {
		name string
		gen  func(n int, s int64) *graph.Graph
	}{
		{"path", func(n int, s int64) *graph.Graph {
			g := graph.New(n)
			for v := 1; v < n; v++ {
				g.MustAddEdge(v-1, v, 1)
			}
			return g
		}},
		{"star", func(n int, s int64) *graph.Graph {
			g := graph.New(n)
			for v := 1; v < n; v++ {
				g.MustAddEdge(0, v, 1)
			}
			return g
		}},
		{"randomtree", func(n int, s int64) *graph.Graph {
			cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rand.New(rand.NewSource(s))}
			return graph.RandomSpanningTreePlus(n, 0, cfg)
		}},
		{"caterpillar", func(n int, s int64) *graph.Graph {
			return graph.Caterpillar(n/4+1, 3, graph.DefaultGenConfig(s))
		}},
	}
	err := runCells(t, len(fams)*len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		fam, n := fams[i/len(sizes)], sizes[i%len(sizes)]
		g := fam.gen(n, cellSeed(seed, i))
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			return c, err
		}
		l, err := layering.Build(rt)
		if err != nil {
			return c, err
		}
		leaves := 0
		for v := 0; v < g.N; v++ {
			if len(rt.Children[v]) == 0 {
				leaves++
			}
		}
		bound := 1
		for 1<<bound < leaves {
			bound++
		}
		c.rows = [][]string{{
			fam.name, f("%d", g.N), f("%d", leaves), f("%d", l.NumLayers),
			f("%d", bound+1), f("%d", len(l.Paths)),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6 — Section 3.6.1: unweighted TAP 2-approximation on G' via MIS+petals.
func E6(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Section 3.6.1 — unweighted TAP: |aug| <= 2*MIS on G'",
		Columns: []string{"n", "m", "aug-size", "mis-size", "ratio<=2", "opt", "vs-opt<=4"},
	}
	err := runCells(t, len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		n := sizes[i]
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1,
			Rng: rand.New(rand.NewSource(seed + int64(n)))}
		g := graph.RandomSpanningTreePlus(n, n/2, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return c, err
		}
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return c, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return c, err
		}
		res, err := solver.SolveUnweighted()
		if err != nil {
			return c, err
		}
		optStr, vsOpt := "-", "-"
		if len(rt.NonTreeEdgeIDs()) <= 18 {
			opt, _, err := baseline.BruteForceTAP(rt, 18)
			if err == nil {
				optStr = f("%d", opt)
				vsOpt = f("%.2f", float64(len(res.OrigEdges))/float64(opt))
			}
		}
		c.addStats(net)
		c.rows = [][]string{{
			f("%d", g.N), f("%d", g.M()), f("%d", len(res.VEdges)), f("%d", res.MISSize),
			f("%.2f", float64(len(res.VEdges))/float64(res.MISSize)), optStr, vsOpt,
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E7 — ablation: reverse-delete variants Cover4 vs Cover2.
func E7(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Ablation — reverse-delete c=4 (Sec 3.5) vs c=2 (Sec 4.6)",
		Columns: []string{"n", "variant", "weight", "max-cover-Rk", "certified-ratio(G')", "rounds"},
	}
	eps := 0.25
	err := runCells(t, len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		n := sizes[i]
		g, err := family("random", n, seed)
		if err != nil {
			return c, err
		}
		for _, variant := range []tap.Variant{tap.Cover4, tap.Cover2} {
			net := newNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return c, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return c, err
			}
			solver, err := tap.NewSolver(net, bfs, rt)
			if err != nil {
				return c, err
			}
			res, err := solver.SolveWeighted(eps, variant)
			if err != nil {
				return c, err
			}
			ratio := 0.0
			if res.DualLB > 0 {
				ratio = float64(res.VirtWeight) / res.DualLB
			}
			c.addStats(net)
			c.rows = append(c.rows, []string{
				f("%d", n), variant.String(), f("%d", res.Weight),
				f("%d", res.MaxCoverRk), f("%.3f", ratio),
				f("%d", net.Stats().TotalRounds()),
			})
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E8 — comparison against baselines on instances with known optimum.
func E8(count int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Baselines — ours vs greedy vs Khuller-Thurimella vs exact (TAP)",
		Columns: []string{"instance", "n", "opt", "ours", "greedy", "kt", "ours/opt", "greedy/opt", "kt/opt"},
	}
	err := runCells(t, count, func(i int) (cellOut, error) {
		var c cellOut
		rng := rand.New(rand.NewSource(cellSeed(seed, i)))
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 200, Rng: rng}
		g := graph.RandomSpanningTreePlus(9+rng.Intn(6), 4+rng.Intn(4), cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return c, err
		}
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return c, err
		}
		if len(rt.NonTreeEdgeIDs()) > 16 {
			return c, nil // no exact optimum in reach; skip this instance
		}
		opt, _, err := baseline.BruteForceTAP(rt, 16)
		if err != nil {
			return c, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return c, err
		}
		res, err := solver.SolveWeighted(0.25, tap.Cover2)
		if err != nil {
			return c, err
		}
		gw, _, err := baseline.GreedyTAP(rt)
		if err != nil {
			return c, err
		}
		kw, _, _, err := baseline.KhullerThurimella(rt)
		if err != nil {
			return c, err
		}
		c.addStats(net)
		c.rows = [][]string{{
			f("random-%d", i), f("%d", g.N), f("%d", opt), f("%d", res.Weight),
			f("%d", gw), f("%d", kw),
			f("%.3f", float64(res.Weight)/float64(opt)),
			f("%.3f", float64(gw)/float64(opt)),
			f("%.3f", float64(kw)/float64(opt)),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E9 — Figures 1-2 content: layering path structure statistics.
func E9(n int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Figures 1-2 — layering structure of a random tree",
		Columns: []string{"layer", "paths", "edges", "avg-path-len", "max-path-len"},
	}
	cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rand.New(rand.NewSource(seed))}
	g := graph.RandomSpanningTreePlus(n, 0, cfg)
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}
	l, err := layering.Build(rt)
	if err != nil {
		return nil, err
	}
	for layer := 1; layer <= l.NumLayers; layer++ {
		paths, edges, maxLen := 0, 0, 0
		for _, p := range l.Paths {
			if p.Layer != layer {
				continue
			}
			paths++
			edges += len(p.Edges)
			if len(p.Edges) > maxLen {
				maxLen = len(p.Edges)
			}
		}
		avg := 0.0
		if paths > 0 {
			avg = float64(edges) / float64(paths)
		}
		t.Rows = append(t.Rows, []string{
			f("%d", layer), f("%d", paths), f("%d", edges), f("%.1f", avg), f("%d", maxLen),
		})
	}
	return t, nil
}

// E10 — Lemma 4.18: coverage multiplicity of R_k edges under both variants.
func E10(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 4.18 — max coverage of R_k edges (<=2 improved, <=4 basic)",
		Columns: []string{"n", "cover2-max", "cover4-max", "cover2-ok", "cover4-ok"},
	}
	err := runCells(t, len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		n := sizes[i]
		g, err := family("random", n, seed+int64(n))
		if err != nil {
			return c, err
		}
		maxOf := func(variant tap.Variant) (int, error) {
			net := newNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return 0, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return 0, err
			}
			solver, err := tap.NewSolver(net, bfs, rt)
			if err != nil {
				return 0, err
			}
			res, err := solver.SolveWeighted(0.25, variant)
			if err != nil {
				return 0, err
			}
			c.addStats(net)
			return res.MaxCoverRk, nil
		}
		c2, err := maxOf(tap.Cover2)
		if err != nil {
			return c, err
		}
		c4, err := maxOf(tap.Cover4)
		if err != nil {
			return c, err
		}
		c.rows = [][]string{{
			f("%d", n), f("%d", c2), f("%d", c4), f("%v", c2 <= 2), f("%v", c4 <= 4),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E11 — Theorems 5.1-5.3: tool correctness plus realized shortcut quality.
func E11(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Theorems 5.1-5.3 — tree tools over shortcuts",
		Columns: []string{"family", "n", "hierarchy-levels", "max-alpha+beta", "rounds"},
	}
	fams := []string{"treeleafcycle", "grid"}
	err := runCells(t, len(fams)*len(sizes), func(i int) (cellOut, error) {
		var c cellOut
		fam, n := fams[i/len(sizes)], sizes[i%len(sizes)]
		g, err := family(fam, n, seed)
		if err != nil {
			return c, err
		}
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return c, err
		}
		tl, err := shortcuts.NewTools(net, rt, &shortcuts.SteinerBuilder{G: g, BFS: bfs})
		if err != nil {
			return c, err
		}
		if _, err := tl.HeavyLightLabels(); err != nil {
			return c, err
		}
		c.addStats(net)
		c.rows = [][]string{{
			fam, f("%d", g.N), f("%d", tl.H.Depth()), f("%d", tl.MaxQuality),
			f("%d", net.Stats().TotalRounds()),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E12 — Lemmas 5.4-5.5: XOR coverage detector accuracy and cover counts.
func E12(trials int, n int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Lemmas 5.4-5.5 — XOR coverage detection and cover counting",
		Columns: []string{"trial", "n", "tree-edges", "detector-errors", "count-errors"},
	}
	err := runCells(t, trials, func(trial int) (cellOut, error) {
		var c cellOut
		rng := rand.New(rand.NewSource(cellSeed(seed, trial)))
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 50, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		net := newNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return c, err
		}
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			return c, err
		}
		tl, err := shortcuts.NewTools(net, rt, &shortcuts.SteinerBuilder{G: g, BFS: bfs})
		if err != nil {
			return c, err
		}
		s := map[int]bool{}
		for _, id := range rt.NonTreeEdgeIDs() {
			if rng.Intn(2) == 0 {
				s[id] = true
			}
		}
		det, err := tl.CoveredDetection(s, rng)
		if err != nil {
			return c, err
		}
		detErr := 0
		for cv := 0; cv < g.N; cv++ {
			if cv == rt.Root {
				continue
			}
			want := false
			for id := range s {
				e := g.Edges[id]
				if rt.Covers(e.U, e.V, cv) {
					want = true
					break
				}
			}
			if det[cv] != want {
				detErr++
			}
		}
		marked := make([]bool, g.N)
		for v := range marked {
			marked[v] = v != rt.Root && rng.Intn(2) == 0
		}
		counts, err := tl.CoverCount(marked)
		if err != nil {
			return c, err
		}
		cntErr := 0
		for _, id := range rt.NonTreeEdgeIDs() {
			e := g.Edges[id]
			want := 0
			for cv := 0; cv < g.N; cv++ {
				if cv != rt.Root && marked[cv] && rt.Covers(e.U, e.V, cv) {
					want++
				}
			}
			if counts[id] != want {
				cntErr++
			}
		}
		c.addStats(net)
		c.rows = [][]string{{
			f("%d", trial), f("%d", g.N), f("%d", g.N-1), f("%d", detErr), f("%d", cntErr),
		}}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Spec names one experiment together with its default-size runner;
// cmd/bench iterates this registry.
type Spec struct {
	ID  string
	Run func(seed int64) (*Table, error)
}

// Specs returns the registry of all experiments with moderate default sizes.
func Specs() []Spec {
	return []Spec{
		{"E1", func(s int64) (*Table, error) { return E1([]int{64, 128, 256}, s) }},
		{"E2", func(s int64) (*Table, error) { return E2([]int{40, 80, 160}, s) }},
		{"E3", func(s int64) (*Table, error) { return E3([]int{64, 128, 256, 512}, s) }},
		{"E4", func(s int64) (*Table, error) { return E4([]int{63, 127}, s) }},
		{"E5", func(s int64) (*Table, error) { return E5([]int{64, 256, 1024}, s) }},
		{"E6", func(s int64) (*Table, error) { return E6([]int{32, 64, 128}, s) }},
		{"E7", func(s int64) (*Table, error) { return E7([]int{48, 96}, s) }},
		{"E8", func(s int64) (*Table, error) { return E8(8, s) }},
		{"E9", func(s int64) (*Table, error) { return E9(300, s) }},
		{"E10", func(s int64) (*Table, error) { return E10([]int{40, 80, 160}, s) }},
		{"E11", func(s int64) (*Table, error) { return E11([]int{63, 127}, s) }},
		{"E12", func(s int64) (*Table, error) { return E12(4, 60, s) }},
	}
}
