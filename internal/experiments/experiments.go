// Package experiments defines the reproduction experiments E1-E12 (see
// DESIGN.md): each one turns a theorem or claim of the paper into a
// measurable run and renders a table row set. The same runners back
// cmd/bench and the root-level testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"twoecss/internal/baseline"
	"twoecss/internal/congest"
	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/layering"
	"twoecss/internal/mst"
	"twoecss/internal/primitives"
	"twoecss/internal/setcover"
	"twoecss/internal/shortcuts"
	"twoecss/internal/tap"
	"twoecss/internal/tree"
)

// Table is a rendered experiment result.
type Table struct {
	ID, Title string
	Columns   []string
	Rows      [][]string
	Notes     []string
}

// Render prints the table in a fixed-width layout.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// family generates one instance of the named graph family.
func family(name string, n int, seed int64) (*graph.Graph, error) {
	cfg := graph.DefaultGenConfig(seed)
	switch name {
	case "er":
		p := 4 * math.Log(float64(n)) / float64(n)
		g := graph.ErdosRenyi(n, p, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		return g, nil
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return graph.Grid(side, side, cfg), nil
	case "ring":
		return graph.RingWithChords(n, n/4, cfg), nil
	case "treeleafcycle":
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return graph.TreeLeafCycle(depth, cfg), nil
	case "random":
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		return g, nil
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", name)
	}
}

// E1 — Theorem 1.1: certified approximation of the (5+eps) 2-ECSS
// algorithm across graph families.
func E1(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 1.1 — (5+eps)-approx 2-ECSS, certified ratios",
		Columns: []string{"family", "n", "m", "weight", "lower-bound",
			"certified-ratio", "bound(5+eps)", "rounds"},
		Notes: []string{"certified-ratio = weight / max(w(MST), dualLB/2); OPT-relative ratio is lower"},
	}
	for _, fam := range []string{"er", "grid", "ring", "treeleafcycle"} {
		for _, n := range sizes {
			g, err := family(fam, n, seed)
			if err != nil {
				return nil, err
			}
			opt := ecss.DefaultOptions()
			res, net, err := ecss.Solve(g, opt)
			if err != nil {
				return nil, err
			}
			if err := ecss.Verify(g, res); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam, f("%d", g.N), f("%d", g.M()), f("%d", res.Weight),
				f("%.1f", res.LowerBound), f("%.3f", res.CertifiedRatio),
				f("%.2f", 5+opt.Eps), f("%d", net.Stats().TotalRounds()),
			})
		}
	}
	return t, nil
}

// E2 — Theorem 4.19: (4+eps)-approx TAP against the exact optimum on path
// instances (weighted interval covering) and the exact G' optimum
// (arborescence) on random instances.
func E2(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 4.19 — (4+eps)-approx weighted TAP vs exact optima",
		Columns: []string{"instance", "n", "tap-weight", "opt", "ratio",
			"bound", "virt-weight", "opt(G')", "ratio(G')", "bound(G')"},
	}
	eps := 0.25
	for _, n := range sizes {
		cfg := graph.DefaultGenConfig(seed + int64(n))
		g := graph.PathWithIntervals(n, n, cfg)
		net := congest.NewNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return nil, err
		}
		// The tree is the path itself.
		treeIDs := make([]int, 0, n-1)
		var ivs []baseline.Interval
		for id, e := range g.Edges {
			if (e.U+1 == e.V || e.V+1 == e.U) && len(treeIDs) < n-1 && isPathEdge(treeIDs, id, e) {
				treeIDs = append(treeIDs, id)
			}
		}
		rt, err := tree.NewFromEdgeSet(g, 0, treeIDs)
		if err != nil {
			return nil, err
		}
		inTree := map[int]bool{}
		for _, id := range treeIDs {
			inTree[id] = true
		}
		for id, e := range g.Edges {
			if inTree[id] {
				continue
			}
			l, r := e.U, e.V
			if l > r {
				l, r = r, l
			}
			ivs = append(ivs, baseline.Interval{L: l, R: r, W: int64(e.W)})
		}
		opt, _, err := baseline.ExactPathTAP(n, ivs)
		if err != nil {
			return nil, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return nil, err
		}
		res, err := solver.SolveWeighted(eps, tap.Cover2)
		if err != nil {
			return nil, err
		}
		_, _, optVirt, err := baseline.KhullerThurimella(rt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f("path+intervals"), f("%d", n), f("%d", res.Weight), f("%d", opt),
			f("%.3f", float64(res.Weight)/float64(opt)), f("%.2f", 4+2*eps),
			f("%d", res.VirtWeight), f("%d", optVirt),
			f("%.3f", float64(res.VirtWeight)/float64(optVirt)),
			f("%.2f", 2*(1+eps)*(1+eps)),
		})
	}
	return t, nil
}

// isPathEdge keeps the first copy of each consecutive pair.
func isPathEdge(have []int, id int, e graph.Edge) bool {
	lo := e.U
	if e.V < lo {
		lo = e.V
	}
	return lo == len(have)
}

// E3 — Theorem 1.1 round bound: rounds normalized by (D+sqrt n)log^2(n)/eps.
func E3(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 1.1 — round complexity scaling",
		Columns: []string{"n", "m", "D", "simulated", "charged", "total", "normalized"},
		Notes:   []string{"normalized = total / ((D+sqrt n) * log2(n)^2 / eps); flat = matches bound"},
	}
	eps := 0.25
	for _, n := range sizes {
		g, err := family("er", n, seed)
		if err != nil {
			return nil, err
		}
		diam, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		opt := ecss.DefaultOptions()
		opt.Eps = eps
		_, net, err := ecss.Solve(g, opt)
		if err != nil {
			return nil, err
		}
		st := net.Stats()
		lg := math.Log2(float64(n))
		norm := float64(st.TotalRounds()) / ((float64(diam) + math.Sqrt(float64(n))) * lg * lg / eps)
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", g.M()), f("%d", diam), f("%d", st.SimulatedRounds),
			f("%d", st.ChargedRounds), f("%d", st.TotalRounds()), f("%.3f", norm),
		})
	}
	return t, nil
}

// E4 — Theorem 1.2: the shortcut-based O(log n) algorithm; quality and
// rounds on a low-diameter planar-like family vs a worst-case-style family.
func E4(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 1.2 — O(log n)-approx TAP in O~(SC+D) rounds",
		Columns: []string{"family", "builder", "n", "D", "weight", "greedy",
			"alpha+beta", "D+sqrt(n)", "rounds"},
		Notes: []string{"alpha+beta below D+sqrt(n) on the nice family shows the shortcut advantage"},
	}
	for _, n := range sizes {
		for _, fam := range []string{"treeleafcycle", "er"} {
			g, err := family(fam, n, seed)
			if err != nil {
				return nil, err
			}
			diam, err := g.DiameterApprox()
			if err != nil {
				return nil, err
			}
			net := congest.NewNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return nil, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return nil, err
			}
			var b shortcuts.Builder
			if fam == "treeleafcycle" {
				b = &shortcuts.SteinerBuilder{G: g, BFS: bfs}
			} else {
				b = &shortcuts.GlobalBFSBuilder{G: g, BFS: bfs}
			}
			solver, err := setcover.NewSolver(net, bfs, rt, b)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			res, err := solver.Solve(setcover.DefaultOptions(g.N, rng))
			if err != nil {
				return nil, err
			}
			gw, _, err := baseline.GreedyTAP(rt)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam, b.Name(), f("%d", g.N), f("%d", diam), f("%d", res.Weight),
				f("%d", gw), f("%d", res.MaxShortcutQuality),
				f("%.0f", float64(diam)+math.Sqrt(float64(g.N))),
				f("%d", net.Stats().TotalRounds()),
			})
		}
	}
	return t, nil
}

// E5 — Claim 4.7: layer counts stay under log2(#leaves)+1.
func E5(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Claim 4.7 — number of layers is O(log n)",
		Columns: []string{"family", "n", "leaves", "layers", "log2-bound", "paths"},
	}
	rng := rand.New(rand.NewSource(seed))
	fams := []struct {
		name string
		gen  func(n int) *graph.Graph
	}{
		{"path", func(n int) *graph.Graph {
			g := graph.New(n)
			for v := 1; v < n; v++ {
				g.MustAddEdge(v-1, v, 1)
			}
			return g
		}},
		{"star", func(n int) *graph.Graph {
			g := graph.New(n)
			for v := 1; v < n; v++ {
				g.MustAddEdge(0, v, 1)
			}
			return g
		}},
		{"randomtree", func(n int) *graph.Graph {
			cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rng}
			return graph.RandomSpanningTreePlus(n, 0, cfg)
		}},
		{"caterpillar", func(n int) *graph.Graph {
			return graph.Caterpillar(n/4+1, 3, graph.DefaultGenConfig(seed))
		}},
	}
	for _, fam := range fams {
		for _, n := range sizes {
			g := fam.gen(n)
			rt, err := tree.BFSTree(g, 0)
			if err != nil {
				return nil, err
			}
			l, err := layering.Build(rt)
			if err != nil {
				return nil, err
			}
			leaves := 0
			for v := 0; v < g.N; v++ {
				if len(rt.Children[v]) == 0 {
					leaves++
				}
			}
			bound := 1
			for 1<<bound < leaves {
				bound++
			}
			t.Rows = append(t.Rows, []string{
				fam.name, f("%d", g.N), f("%d", leaves), f("%d", l.NumLayers),
				f("%d", bound+1), f("%d", len(l.Paths)),
			})
		}
	}
	return t, nil
}

// E6 — Section 3.6.1: unweighted TAP 2-approximation on G' via MIS+petals.
func E6(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Section 3.6.1 — unweighted TAP: |aug| <= 2*MIS on G'",
		Columns: []string{"n", "m", "aug-size", "mis-size", "ratio<=2", "opt", "vs-opt<=4"},
	}
	for _, n := range sizes {
		cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1,
			Rng: rand.New(rand.NewSource(seed + int64(n)))}
		g := graph.RandomSpanningTreePlus(n, n/2, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		net := congest.NewNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return nil, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return nil, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return nil, err
		}
		res, err := solver.SolveUnweighted()
		if err != nil {
			return nil, err
		}
		optStr, vsOpt := "-", "-"
		if len(rt.NonTreeEdgeIDs()) <= 18 {
			opt, _, err := baseline.BruteForceTAP(rt, 18)
			if err == nil {
				optStr = f("%d", opt)
				vsOpt = f("%.2f", float64(len(res.OrigEdges))/float64(opt))
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%d", g.N), f("%d", g.M()), f("%d", len(res.VEdges)), f("%d", res.MISSize),
			f("%.2f", float64(len(res.VEdges))/float64(res.MISSize)), optStr, vsOpt,
		})
	}
	return t, nil
}

// E7 — ablation: reverse-delete variants Cover4 vs Cover2.
func E7(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Ablation — reverse-delete c=4 (Sec 3.5) vs c=2 (Sec 4.6)",
		Columns: []string{"n", "variant", "weight", "max-cover-Rk", "certified-ratio(G')", "rounds"},
	}
	eps := 0.25
	for _, n := range sizes {
		g, err := family("random", n, seed)
		if err != nil {
			return nil, err
		}
		for _, variant := range []tap.Variant{tap.Cover4, tap.Cover2} {
			net := congest.NewNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return nil, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return nil, err
			}
			solver, err := tap.NewSolver(net, bfs, rt)
			if err != nil {
				return nil, err
			}
			res, err := solver.SolveWeighted(eps, variant)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if res.DualLB > 0 {
				ratio = float64(res.VirtWeight) / res.DualLB
			}
			t.Rows = append(t.Rows, []string{
				f("%d", n), variant.String(), f("%d", res.Weight),
				f("%d", res.MaxCoverRk), f("%.3f", ratio),
				f("%d", net.Stats().TotalRounds()),
			})
		}
	}
	return t, nil
}

// E8 — comparison against baselines on instances with known optimum.
func E8(count int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Baselines — ours vs greedy vs Khuller-Thurimella vs exact (TAP)",
		Columns: []string{"instance", "n", "opt", "ours", "greedy", "kt", "ours/opt", "greedy/opt", "kt/opt"},
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < count; i++ {
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 200, Rng: rng}
		g := graph.RandomSpanningTreePlus(9+rng.Intn(6), 4+rng.Intn(4), cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return nil, err
		}
		net := congest.NewNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return nil, err
		}
		rt, err := mst.KruskalTree(g, 0, net)
		if err != nil {
			return nil, err
		}
		if len(rt.NonTreeEdgeIDs()) > 16 {
			continue
		}
		opt, _, err := baseline.BruteForceTAP(rt, 16)
		if err != nil {
			return nil, err
		}
		solver, err := tap.NewSolver(net, bfs, rt)
		if err != nil {
			return nil, err
		}
		res, err := solver.SolveWeighted(0.25, tap.Cover2)
		if err != nil {
			return nil, err
		}
		gw, _, err := baseline.GreedyTAP(rt)
		if err != nil {
			return nil, err
		}
		kw, _, _, err := baseline.KhullerThurimella(rt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f("random-%d", i), f("%d", g.N), f("%d", opt), f("%d", res.Weight),
			f("%d", gw), f("%d", kw),
			f("%.3f", float64(res.Weight)/float64(opt)),
			f("%.3f", float64(gw)/float64(opt)),
			f("%.3f", float64(kw)/float64(opt)),
		})
	}
	return t, nil
}

// E9 — Figures 1-2 content: layering path structure statistics.
func E9(n int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Figures 1-2 — layering structure of a random tree",
		Columns: []string{"layer", "paths", "edges", "avg-path-len", "max-path-len"},
	}
	cfg := graph.GenConfig{Mode: graph.WeightUnit, MaxW: 1, Rng: rand.New(rand.NewSource(seed))}
	g := graph.RandomSpanningTreePlus(n, 0, cfg)
	rt, err := tree.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}
	l, err := layering.Build(rt)
	if err != nil {
		return nil, err
	}
	for layer := 1; layer <= l.NumLayers; layer++ {
		paths, edges, maxLen := 0, 0, 0
		for _, p := range l.Paths {
			if p.Layer != layer {
				continue
			}
			paths++
			edges += len(p.Edges)
			if len(p.Edges) > maxLen {
				maxLen = len(p.Edges)
			}
		}
		avg := 0.0
		if paths > 0 {
			avg = float64(edges) / float64(paths)
		}
		t.Rows = append(t.Rows, []string{
			f("%d", layer), f("%d", paths), f("%d", edges), f("%.1f", avg), f("%d", maxLen),
		})
	}
	return t, nil
}

// E10 — Lemma 4.18: coverage multiplicity of R_k edges under both variants.
func E10(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 4.18 — max coverage of R_k edges (<=2 improved, <=4 basic)",
		Columns: []string{"n", "cover2-max", "cover4-max", "cover2-ok", "cover4-ok"},
	}
	for _, n := range sizes {
		g, err := family("random", n, seed+int64(n))
		if err != nil {
			return nil, err
		}
		maxOf := func(variant tap.Variant) (int, error) {
			net := congest.NewNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return 0, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return 0, err
			}
			solver, err := tap.NewSolver(net, bfs, rt)
			if err != nil {
				return 0, err
			}
			res, err := solver.SolveWeighted(0.25, variant)
			if err != nil {
				return 0, err
			}
			return res.MaxCoverRk, nil
		}
		c2, err := maxOf(tap.Cover2)
		if err != nil {
			return nil, err
		}
		c4, err := maxOf(tap.Cover4)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", c2), f("%d", c4), f("%v", c2 <= 2), f("%v", c4 <= 4),
		})
	}
	return t, nil
}

// E11 — Theorems 5.1-5.3: tool correctness plus realized shortcut quality.
func E11(sizes []int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Theorems 5.1-5.3 — tree tools over shortcuts",
		Columns: []string{"family", "n", "hierarchy-levels", "max-alpha+beta", "rounds"},
	}
	for _, fam := range []string{"treeleafcycle", "grid"} {
		for _, n := range sizes {
			g, err := family(fam, n, seed)
			if err != nil {
				return nil, err
			}
			net := congest.NewNetwork(g)
			bfs, err := primitives.BuildBFS(net, 0)
			if err != nil {
				return nil, err
			}
			rt, err := mst.KruskalTree(g, 0, net)
			if err != nil {
				return nil, err
			}
			tl, err := shortcuts.NewTools(net, rt, &shortcuts.SteinerBuilder{G: g, BFS: bfs})
			if err != nil {
				return nil, err
			}
			if _, err := tl.HeavyLightLabels(); err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam, f("%d", g.N), f("%d", tl.H.Depth()), f("%d", tl.MaxQuality),
				f("%d", net.Stats().TotalRounds()),
			})
		}
	}
	return t, nil
}

// E12 — Lemmas 5.4-5.5: XOR coverage detector accuracy and cover counts.
func E12(trials int, n int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Lemmas 5.4-5.5 — XOR coverage detection and cover counting",
		Columns: []string{"trial", "n", "tree-edges", "detector-errors", "count-errors"},
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		cfg := graph.GenConfig{Mode: graph.WeightUniform, MaxW: 50, Rng: rng}
		g := graph.RandomSpanningTreePlus(n, n, cfg)
		net := congest.NewNetwork(g)
		bfs, err := primitives.BuildBFS(net, 0)
		if err != nil {
			return nil, err
		}
		rt, err := tree.BFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		tl, err := shortcuts.NewTools(net, rt, &shortcuts.SteinerBuilder{G: g, BFS: bfs})
		if err != nil {
			return nil, err
		}
		s := map[int]bool{}
		for _, id := range rt.NonTreeEdgeIDs() {
			if rng.Intn(2) == 0 {
				s[id] = true
			}
		}
		det, err := tl.CoveredDetection(s, rng)
		if err != nil {
			return nil, err
		}
		detErr := 0
		for c := 0; c < g.N; c++ {
			if c == rt.Root {
				continue
			}
			want := false
			for id := range s {
				e := g.Edges[id]
				if rt.Covers(e.U, e.V, c) {
					want = true
					break
				}
			}
			if det[c] != want {
				detErr++
			}
		}
		marked := make([]bool, g.N)
		for v := range marked {
			marked[v] = v != rt.Root && rng.Intn(2) == 0
		}
		counts, err := tl.CoverCount(marked)
		if err != nil {
			return nil, err
		}
		cntErr := 0
		for _, id := range rt.NonTreeEdgeIDs() {
			e := g.Edges[id]
			want := 0
			for c := 0; c < g.N; c++ {
				if c != rt.Root && marked[c] && rt.Covers(e.U, e.V, c) {
					want++
				}
			}
			if counts[id] != want {
				cntErr++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%d", trial), f("%d", g.N), f("%d", g.N-1), f("%d", detErr), f("%d", cntErr),
		})
	}
	return t, nil
}

// All runs every experiment with moderate default sizes.
func All(seed int64) ([]*Table, error) {
	var tables []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	if err := add(E1([]int{64, 128, 256}, seed)); err != nil {
		return nil, err
	}
	if err := add(E2([]int{40, 80, 160}, seed)); err != nil {
		return nil, err
	}
	if err := add(E3([]int{64, 128, 256, 512}, seed)); err != nil {
		return nil, err
	}
	if err := add(E4([]int{63, 127}, seed)); err != nil {
		return nil, err
	}
	if err := add(E5([]int{64, 256, 1024}, seed)); err != nil {
		return nil, err
	}
	if err := add(E6([]int{32, 64, 128}, seed)); err != nil {
		return nil, err
	}
	if err := add(E7([]int{48, 96}, seed)); err != nil {
		return nil, err
	}
	if err := add(E8(8, seed)); err != nil {
		return nil, err
	}
	if err := add(E9(300, seed)); err != nil {
		return nil, err
	}
	if err := add(E10([]int{40, 80, 160}, seed)); err != nil {
		return nil, err
	}
	if err := add(E11([]int{63, 127}, seed)); err != nil {
		return nil, err
	}
	if err := add(E12(4, 60, seed)); err != nil {
		return nil, err
	}
	sort.SliceStable(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
	return tables, nil
}
