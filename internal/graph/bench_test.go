package graph

import "testing"

// The microbenchmarks compare the CSR hot paths against the legacy
// [][]int-adjacency formulation (kept here, in test code only, as the
// baseline) on a 256x256 grid — the layout-sensitive workload named in the
// acceptance criteria of the CSR refactor. CI runs them with -benchtime=1x
// as a smoke test so layout regressions fail loudly.

func benchGrid(b *testing.B) *Graph {
	b.Helper()
	g := Grid(256, 256, DefaultGenConfig(1))
	g.ensureCSR()
	return g
}

// legacyScratch is the seed's BFSScratch: vertex-indexed []int buffers.
type legacyScratch struct {
	parentEdge, dist, queue []int
}

// legacyBFSInto is the pre-CSR BFS inner loop: per neighbor visit it loads
// the inner adjacency slice and then Edges[id] to resolve the far endpoint.
func legacyBFSInto(g *Graph, src int, s *legacyScratch) (parentEdge, dist []int) {
	if cap(s.parentEdge) < g.N {
		s.parentEdge = make([]int, g.N)
		s.dist = make([]int, g.N)
		s.queue = make([]int, 0, g.N)
	}
	parentEdge, dist = s.parentEdge[:g.N], s.dist[:g.N]
	for i := range dist {
		dist[i] = -1
		parentEdge[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.adj[v] {
			u := g.Edges[id].Other(v)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				parentEdge[u] = id
				queue = append(queue, u)
			}
		}
	}
	s.queue = queue[:0]
	return parentEdge, dist
}

func BenchmarkBFS(b *testing.B) {
	g := benchGrid(b)
	// csr is the pass Diameter actually runs per vertex now (distance-only
	// over the 4-byte neighbor stream); csr-tree is the full parent-edge
	// BFS; legacy is the seed's inner pass ([][]int adjacency + Edge.Other
	// + parent bookkeeping), which is what Diameter paid per vertex at seed.
	b.Run("csr", func(b *testing.B) {
		var s BFSScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.DistancesInto(i%g.N, &s)
		}
	})
	b.Run("csr-tree", func(b *testing.B) {
		var s BFSScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.BFSInto(i%g.N, &s)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		var s legacyScratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyBFSInto(g, i%g.N, &s)
		}
	})
}

// legacyBridges is the pre-CSR bridge pass (modulo the final sort, which is
// identical in both): adjacency via g.adj plus Edges[id].Other.
func legacyBridges(g *Graph) []int {
	disc := make([]int, g.N)
	low := make([]int, g.N)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0
	type frame struct {
		v, parentEdge, idx int
	}
	stack := make([]frame, 0, g.N)
	for s := 0; s < g.N; s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], frame{v: s, parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.v]) {
				id := g.adj[f.v][f.idx]
				f.idx++
				if id == f.parentEdge {
					continue
				}
				u := g.Edges[id].Other(f.v)
				if disc[u] < 0 {
					disc[u], low[u] = timer, timer
					timer++
					stack = append(stack, frame{v: u, parentEdge: id})
				} else if disc[u] < low[f.v] {
					low[f.v] = disc[u]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[f.v] < low[p.v] {
						low[p.v] = low[f.v]
					}
					if low[f.v] > disc[p.v] {
						bridges = append(bridges, f.parentEdge)
					}
				}
			}
		}
	}
	return bridges
}

func BenchmarkBridges(b *testing.B) {
	g := benchGrid(b)
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Bridges()
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyBridges(g)
		}
	})
}

func BenchmarkDiameter(b *testing.B) {
	g := Grid(64, 64, DefaultGenConfig(1))
	g.ensureCSR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Diameter(); err != nil {
			b.Fatal(err)
		}
	}
}
