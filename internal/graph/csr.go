package graph

// Compressed-sparse-row adjacency. The per-vertex edge lists in Graph.adj
// ([][]int) cost two dependent loads per neighbor visit: the inner slice
// header, then Edges[id] (a 24-byte struct) to resolve the far endpoint.
// Every hot loop in the repository — BFS, bridge finding, the engine's
// routing and incidence validation, the shortcut part scans — walks
// neighbors, so the graph also maintains a CSR view: one flat array of
// 8-byte (neighbor, edge id) pairs indexed by per-vertex offsets. A
// neighbor scan is then a single contiguous stream with zero pointer
// chasing.
//
// The CSR view is built lazily and invalidated by AddEdge (a dirty flag);
// the first accessor call after a mutation rebuilds it in O(N + M). Building
// is NOT safe to race with other accessors, so parallel consumers (Diameter,
// the congest engine) force the build once, from a single goroutine, before
// fanning out. Vertex and edge counts must fit in int32; the generators top
// out far below that.

// HalfEdge is one CSR incidence of a vertex v: the far endpoint of an edge
// incident to v, and that edge's id.
type HalfEdge struct {
	To, ID int32
}

type csr struct {
	// off has N+1 entries; vertex v's incidences occupy ent[off[v]:off[v+1]].
	off []int32
	ent []HalfEdge
	// nbr mirrors ent's To fields: distance-only traversals (Diameter's
	// eccentricity passes, connectivity checks) stream 4 bytes per
	// incidence instead of 8.
	nbr []int32
	// us/vs are the flat endpoint arrays: us[id], vs[id] are Edges[id].U/V.
	// Hot edge-indexed loops (engine validation, routing) use these instead
	// of the 24-byte Edge struct, tripling cache density.
	us, vs []int32
}

// ensureCSR (re)builds the CSR view if a mutation invalidated it.
// Not safe to call concurrently with itself or any CSR accessor.
func (g *Graph) ensureCSR() {
	if !g.csrDirty {
		return
	}
	g.buildCSR()
}

func (g *Graph) buildCSR() {
	n, m := g.N, len(g.Edges)
	c := &g.csr
	if cap(c.off) < n+1 {
		c.off = make([]int32, n+1)
	}
	c.off = c.off[:n+1]
	for i := range c.off {
		c.off[i] = 0
	}
	if cap(c.ent) < 2*m {
		c.ent = make([]HalfEdge, 2*m)
		c.nbr = make([]int32, 2*m)
	}
	c.ent, c.nbr = c.ent[:2*m], c.nbr[:2*m]
	if cap(c.us) < m {
		c.us = make([]int32, m)
		c.vs = make([]int32, m)
	}
	c.us, c.vs = c.us[:m], c.vs[:m]
	// Counting sort by endpoint. Iterating edges in id order reproduces the
	// adjacency order of AddEdge exactly: per vertex, incident edge ids
	// appear in increasing id order, which is the order they were appended
	// to adj. TestCSRMatchesAdjacency pins this equivalence.
	for id, e := range g.Edges {
		c.us[id], c.vs[id] = int32(e.U), int32(e.V)
		c.off[e.U+1]++
		c.off[e.V+1]++
	}
	for v := 0; v < n; v++ {
		c.off[v+1] += c.off[v]
	}
	// cur[v] = next free slot for v.
	cur := append([]int32(nil), c.off[:n]...)
	for id, e := range g.Edges {
		c.ent[cur[e.U]] = HalfEdge{To: int32(e.V), ID: int32(id)}
		c.nbr[cur[e.U]] = int32(e.V)
		cur[e.U]++
		c.ent[cur[e.V]] = HalfEdge{To: int32(e.U), ID: int32(id)}
		c.nbr[cur[e.V]] = int32(e.U)
		cur[e.V]++
	}
	g.csrDirty = false
}

// Row returns vertex v's CSR incidence row, in the same order as
// Incident(v): Row(v)[i].ID == Incident(v)[i] and Row(v)[i].To is the far
// endpoint. The slice aliases the graph's CSR arrays: it is invalidated by
// AddEdge and must not be mutated.
func (g *Graph) Row(v int) []HalfEdge {
	g.ensureCSR()
	return g.csr.ent[g.csr.off[v]:g.csr.off[v+1]]
}

// CSRView returns the raw CSR arrays for loops that want to iterate rows
// without per-vertex accessor calls: vertex v's incidences are
// ent[off[v]:off[v+1]]. Same aliasing and invalidation rules as Row.
func (g *Graph) CSRView() (off []int32, ent []HalfEdge) {
	g.ensureCSR()
	return g.csr.off, g.csr.ent
}

// Endpoints returns the flat edge-endpoint arrays: us[id] and vs[id] are the
// two endpoints of edge id (Edges[id].U and .V). Same aliasing and
// invalidation rules as Row.
func (g *Graph) Endpoints() (us, vs []int32) {
	g.ensureCSR()
	return g.csr.us, g.csr.vs
}
