package graph

import (
	"fmt"
	"math"
)

// Families lists the named 2-edge-connected instance families understood by
// ByFamily, in the order they are documented in command usage strings.
func Families() []string {
	return []string{"er", "grid", "ring", "treeleafcycle", "random", "ba"}
}

// ByFamily generates a 2-edge-connected instance of the named family with
// roughly n vertices, deterministically from seed. It is the single source
// of family dispatch shared by cmd/ecss, cmd/gengraph, and cmd/loadgen, so
// equal (family, n, seed) triples produce the identical graph everywhere —
// which is what makes a replayed workload hit the service's
// content-addressed cache.
func ByFamily(family string, n int, seed int64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: family %q needs n >= 3, got %d", family, n)
	}
	cfg := DefaultGenConfig(seed)
	switch family {
	case "er":
		p := 4 * math.Log(float64(n)) / float64(n)
		g := ErdosRenyi(n, p, cfg)
		_, err := Ensure2EC(g, cfg)
		return g, err
	case "grid":
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			side = 2
		}
		return Grid(side, side, cfg), nil
	case "ring":
		return RingWithChords(n, n/4, cfg), nil
	case "treeleafcycle":
		depth := 1
		for (1<<(depth+2))-1 <= n {
			depth++
		}
		return TreeLeafCycle(depth, cfg), nil
	case "random":
		g := RandomSpanningTreePlus(n, n, cfg)
		_, err := Ensure2EC(g, cfg)
		return g, err
	case "ba":
		g := BarabasiAlbert(n, 3, cfg)
		_, err := Ensure2EC(g, cfg)
		return g, err
	default:
		return nil, fmt.Errorf("graph: unknown family %q (known: %v)", family, Families())
	}
}
