package graph

import "testing"

func TestHashIgnoresInsertionOrderAndOrientation(t *testing.T) {
	a := New(5)
	a.MustAddEdge(0, 1, 7)
	a.MustAddEdge(1, 2, 3)
	a.MustAddEdge(2, 3, 3)
	a.MustAddEdge(3, 4, 9)
	a.MustAddEdge(4, 0, 1)

	b := New(5)
	b.MustAddEdge(3, 2, 3) // flipped orientation
	b.MustAddEdge(0, 4, 1)
	b.MustAddEdge(1, 0, 7)
	b.MustAddEdge(4, 3, 9)
	b.MustAddEdge(2, 1, 3)

	if a.Hash() != b.Hash() {
		t.Fatal("hash differs across insertion order / orientation of the same edge multiset")
	}
}

func TestHashDistinguishesContent(t *testing.T) {
	base := New(4)
	base.MustAddEdge(0, 1, 1)
	base.MustAddEdge(1, 2, 1)
	base.MustAddEdge(2, 0, 1)

	weight := base.Clone()
	weight.Edges[1].W = 2
	if base.Hash() == weight.Hash() {
		t.Fatal("hash ignores edge weights")
	}

	extra := base.Clone()
	extra.MustAddEdge(2, 3, 1)
	if base.Hash() == extra.Hash() {
		t.Fatal("hash ignores an added edge")
	}

	// Parallel edges change the multiset even with identical triples.
	dup := base.Clone()
	dup.MustAddEdge(0, 1, 1)
	if base.Hash() == dup.Hash() {
		t.Fatal("hash ignores edge multiplicity")
	}

	bigger := New(5)
	bigger.MustAddEdge(0, 1, 1)
	bigger.MustAddEdge(1, 2, 1)
	bigger.MustAddEdge(2, 0, 1)
	if base.Hash() == bigger.Hash() {
		t.Fatal("hash ignores vertex count")
	}
}

func TestHashStableAcrossCalls(t *testing.T) {
	g, err := ByFamily("er", 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hash() != g.Hash() {
		t.Fatal("hash not deterministic on one graph")
	}
	h, err := ByFamily("er", 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.Hash() != h.Hash() {
		t.Fatal("same (family, n, seed) generated different graphs")
	}
}
