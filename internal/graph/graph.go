// Package graph provides the weighted undirected graph substrate used by all
// algorithms in this repository: adjacency representation, basic traversals,
// bridge finding / 2-edge-connectivity testing, diameter computation, and a
// set of instance generators matching the graph families discussed in the
// paper (Erdős–Rényi, grids, rings with chords, low-diameter planar-like
// families, and assorted trees).
package graph

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Weight is the edge-weight type. The paper assumes polynomially bounded
// integer weights so that a weight fits in an O(log n)-bit message.
type Weight = int64

// Edge is an undirected weighted edge. U < V is not required; the pair is
// unordered but stored in a fixed orientation for determinism.
type Edge struct {
	U, V int
	W    Weight
}

// Other returns the endpoint of e that is not v.
func (e Edge) Other(v int) int {
	if e.U == v {
		return e.V
	}
	return e.U
}

// Graph is a weighted undirected multigraph stored as an edge list plus an
// adjacency index. Vertices are 0..N-1; edges are identified by their dense
// index into Edges. The zero value is an empty graph with no vertices.
type Graph struct {
	N     int
	Edges []Edge
	// adj[v] lists the incident edge ids of v.
	adj [][]int
	// csr is the flat adjacency view (see csr.go), rebuilt lazily when
	// csrDirty after a mutation.
	csr      csr
	csrDirty bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n), csrDirty: true}
}

// AddEdge inserts the undirected edge {u,v} with weight w and returns its id.
// Self-loops are rejected because no algorithm here tolerates them.
func (g *Graph) AddEdge(u, v int, w Weight) (int, error) {
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return -1, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.N)
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	g.csrDirty = true
	return id, nil
}

// MustAddEdge is AddEdge for generator code where inputs are known valid.
// It panics on invalid input; library callers should use AddEdge.
func (g *Graph) MustAddEdge(u, v int, w Weight) int {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Incident returns the edge ids incident to v. The returned slice is owned
// by the graph and must not be mutated.
func (g *Graph) Incident(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the neighbor vertices of v (with multiplicity for
// parallel edges), in incident-edge order. It allocates the result; it is a
// convenience for call sites outside hot loops. Hot loops should use
// NeighborsInto or walk Row/CSRView directly.
func (g *Graph) Neighbors(v int) []int {
	return g.NeighborsInto(v, nil)
}

// NeighborsInto appends the neighbor vertices of v (with multiplicity, in
// incident-edge order) to buf[:0] and returns it, reusing buf's backing
// array when it is large enough.
func (g *Graph) NeighborsInto(v int, buf []int) []int {
	row := g.Row(v)
	buf = buf[:0]
	if cap(buf) < len(row) {
		buf = make([]int, 0, len(row))
	}
	for _, h := range row {
		buf = append(buf, int(h.To))
	}
	return buf
}

// TotalWeight sums the weights of the edge ids in set.
func (g *Graph) TotalWeight(set []int) Weight {
	var s Weight
	for _, id := range set {
		s += g.Edges[id].W
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.N)
	h.Edges = append([]Edge(nil), g.Edges...)
	for v := range g.adj {
		h.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return h
}

// Subgraph returns the spanning subgraph of g containing exactly the edges
// whose ids are in keep (vertex set unchanged).
func (g *Graph) Subgraph(keep []int) *Graph {
	h := New(g.N)
	for _, id := range keep {
		e := g.Edges[id]
		h.MustAddEdge(e.U, e.V, e.W)
	}
	return h
}

// ErrDisconnected reports that an operation requiring connectivity was
// invoked on a disconnected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// BFS runs a breadth-first search from src and returns (parentEdge, dist)
// where parentEdge[v] is the edge id used to reach v (-1 for src and for
// unreachable vertices) and dist[v] is the hop distance (-1 if unreachable).
func (g *Graph) BFS(src int) (parentEdge, dist []int) {
	pe32, d32 := g.BFSInto(src, &BFSScratch{})
	parentEdge = make([]int, len(pe32))
	dist = make([]int, len(d32))
	for i := range pe32 {
		parentEdge[i] = int(pe32[i])
		dist[i] = int(d32[i])
	}
	return parentEdge, dist
}

// BFSScratch holds reusable buffers for repeated BFS passes (Diameter runs
// one per vertex). The zero value is ready to use. Buffers are int32 to
// halve the traversal working set; vertex and edge counts fit int32 by the
// CSR contract (see csr.go).
type BFSScratch struct {
	parentEdge, dist, queue []int32
}

// BFSInto is BFS with buffers taken from s. The returned slices are owned
// by s and are only valid until the next call with the same scratch.
// The frontier is processed level by level, so the current distance is a
// register, dist doubles as the visited check, and parentEdge is written
// on first visit only (unreachable vertices are fixed up to the documented
// -1 in a tail pass that connected graphs skip).
func (g *Graph) BFSInto(src int, s *BFSScratch) (parentEdge, dist []int32) {
	if cap(s.parentEdge) < g.N {
		s.parentEdge = make([]int32, g.N)
		s.dist = make([]int32, g.N)
		s.queue = make([]int32, 0, g.N)
	}
	parentEdge, dist = s.parentEdge[:g.N], s.dist[:g.N]
	for i := range dist {
		dist[i] = -1
	}
	off, ent := g.CSRView()
	dist[src] = 0
	parentEdge[src] = -1
	queue := append(s.queue[:0], int32(src))
	lo := 0
	for d := int32(1); lo < len(queue); d++ {
		hi := len(queue)
		for _, v := range queue[lo:hi] {
			for _, h := range ent[off[v]:off[v+1]] {
				if dist[h.To] < 0 {
					dist[h.To] = d
					parentEdge[h.To] = h.ID
					queue = append(queue, h.To)
				}
			}
		}
		lo = hi
	}
	if len(queue) < g.N {
		for v := range dist {
			if dist[v] < 0 {
				parentEdge[v] = -1
			}
		}
	}
	s.queue = queue[:0]
	return parentEdge, dist
}

// DistancesInto is the distance-only BFS pass: like BFSInto but without
// parent-edge maintenance, streaming the 4-byte neighbor array instead of
// the 8-byte (neighbor, edge) pairs. This is the inner pass Diameter runs
// N times; at seed it paid for parent bookkeeping it never read.
// The returned slice is owned by s until the next call with the same
// scratch; dist[v] is -1 for unreachable vertices.
func (g *Graph) DistancesInto(src int, s *BFSScratch) (dist []int32) {
	if cap(s.dist) < g.N {
		s.dist = make([]int32, g.N)
		s.queue = make([]int32, 0, g.N)
	}
	dist = s.dist[:g.N]
	for i := range dist {
		dist[i] = -1
	}
	g.ensureCSR()
	off, nbr := g.csr.off, g.csr.nbr
	dist[src] = 0
	queue := s.queue[:g.N]
	queue[0] = int32(src)
	tail := 1
	lo := 0
	for d := int32(1); lo < tail; d++ {
		hi := tail
		for _, v := range queue[lo:hi] {
			b, e := off[v], off[v+1]
			for i := b; i < e; i++ {
				u := nbr[i]
				if dist[u] < 0 {
					dist[u] = d
					queue[tail] = u
					tail++
				}
			}
		}
		lo = hi
	}
	return dist
}

// Connected reports whether g is connected (true for the empty and
// single-vertex graph).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	dist := g.DistancesInto(0, &BFSScratch{})
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum hop distance from src, or an error if g
// is disconnected.
func (g *Graph) Eccentricity(src int) (int, error) {
	return g.eccentricityInto(src, &BFSScratch{})
}

func (g *Graph) eccentricityInto(src int, s *BFSScratch) (int, error) {
	dist := g.DistancesInto(src, s)
	ecc := int32(0)
	for _, d := range dist {
		if d < 0 {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc), nil
}

// Diameter computes the exact hop diameter by running a BFS from every
// vertex. The N independent BFS passes are split across a worker pool
// (GOMAXPROCS workers, each with its own scratch); the result is the max
// over all eccentricities, so it is identical for any worker count.
// Intended for instance preparation, not for inner loops.
func (g *Graph) Diameter() (int, error) {
	if g.N == 0 {
		return 0, nil
	}
	g.ensureCSR() // build once before the workers fan out
	workers := runtime.GOMAXPROCS(0)
	if workers > g.N {
		workers = g.N
	}
	if workers <= 1 {
		var s BFSScratch
		diam := 0
		for v := 0; v < g.N; v++ {
			ecc, err := g.eccentricityInto(v, &s)
			if err != nil {
				return 0, err
			}
			if ecc > diam {
				diam = ecc
			}
		}
		return diam, nil
	}
	var (
		next       atomic.Int64
		failed     atomic.Bool
		wg         sync.WaitGroup
		workerDiam = make([]int, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s BFSScratch
			diam := 0
			for !failed.Load() {
				v := int(next.Add(1)) - 1
				if v >= g.N {
					break
				}
				ecc, err := g.eccentricityInto(v, &s)
				if err != nil {
					// Disconnected from any source means disconnected
					// from all; stop the pool early.
					failed.Store(true)
					return
				}
				if ecc > diam {
					diam = ecc
				}
			}
			workerDiam[w] = diam
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		return 0, ErrDisconnected
	}
	diam := 0
	for _, d := range workerDiam {
		if d > diam {
			diam = d
		}
	}
	return diam, nil
}

// DiameterApprox returns a 2-approximation of the diameter using two BFS
// sweeps (cheap; used for round accounting on large instances).
func (g *Graph) DiameterApprox() (int, error) {
	if g.N == 0 {
		return 0, nil
	}
	var s BFSScratch
	dist := g.DistancesInto(0, &s)
	far, best := 0, int32(-1)
	for v, d := range dist {
		if d < 0 {
			return 0, ErrDisconnected
		}
		if d > best {
			best, far = d, v
		}
	}
	// dist aliases the scratch, so take what we need before the next pass.
	return g.eccentricityInto(far, &s)
}

// Bridges returns the ids of all bridge edges of g (edges whose removal
// disconnects their component), via an iterative Tarjan low-link DFS over
// the CSR view (int32 discovery/low-link arrays keep the working set half
// the size of the vertex-indexed []int formulation).
// Parallel edges are handled correctly: a duplicated edge is never a bridge.
func (g *Graph) Bridges() []int {
	// dl[v] packs (disc, low) of v in one 8-byte slot: discovery writes
	// both halves of one cache line entry, and the pop path reads the
	// parent's pair together.
	type discLow struct{ disc, low int32 }
	dl := make([]discLow, g.N)
	for i := range dl {
		dl[i].disc = -1
	}
	var bridges []int
	timer := int32(0)
	type frame struct {
		v, parentEdge, idx int32
	}
	off, ent := g.CSRView()
	stack := make([]frame, 0, g.N)
	for s := 0; s < g.N; s++ {
		if dl[s].disc >= 0 {
			continue
		}
		dl[s] = discLow{disc: timer, low: timer}
		timer++
		stack = append(stack[:0], frame{v: int32(s), parentEdge: -1, idx: off[s]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			// Keep the frame's cursor and low-link in locals for the whole
			// scan of v's row; write back only when pushing or popping.
			v, pe := f.v, f.parentEdge
			i, end := f.idx, off[v+1]
			lowv := dl[v].low
			pushed := false
			for i < end {
				h := ent[i]
				i++
				if h.ID == pe {
					continue
				}
				if d := dl[h.To].disc; d >= 0 {
					if d < lowv {
						lowv = d
					}
					continue
				}
				dl[h.To] = discLow{disc: timer, low: timer}
				timer++
				f.idx = i
				dl[v].low = lowv
				stack = append(stack, frame{v: h.To, parentEdge: h.ID, idx: off[h.To]})
				pushed = true
				break
			}
			if pushed {
				continue
			}
			dl[v].low = lowv
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if lowv < dl[p.v].low {
					dl[p.v].low = lowv
				}
				if lowv > dl[p.v].disc {
					bridges = append(bridges, int(pe))
				}
			}
		}
	}
	slices.Sort(bridges)
	return bridges
}

// TwoEdgeConnected reports whether g is connected, has at least 2 vertices'
// worth of structure (n<=1 counts as trivially 2-edge-connected), and has no
// bridges.
func (g *Graph) TwoEdgeConnected() bool {
	if g.N <= 1 {
		return true
	}
	if !g.Connected() {
		return false
	}
	return len(g.Bridges()) == 0
}

// MaxWeight returns the maximum edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() Weight {
	var mx Weight
	for _, e := range g.Edges {
		if e.W > mx {
			mx = e.W
		}
	}
	return mx
}
