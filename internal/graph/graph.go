// Package graph provides the weighted undirected graph substrate used by all
// algorithms in this repository: adjacency representation, basic traversals,
// bridge finding / 2-edge-connectivity testing, diameter computation, and a
// set of instance generators matching the graph families discussed in the
// paper (Erdős–Rényi, grids, rings with chords, low-diameter planar-like
// families, and assorted trees).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Weight is the edge-weight type. The paper assumes polynomially bounded
// integer weights so that a weight fits in an O(log n)-bit message.
type Weight = int64

// Edge is an undirected weighted edge. U < V is not required; the pair is
// unordered but stored in a fixed orientation for determinism.
type Edge struct {
	U, V int
	W    Weight
}

// Other returns the endpoint of e that is not v.
func (e Edge) Other(v int) int {
	if e.U == v {
		return e.V
	}
	return e.U
}

// Graph is a weighted undirected multigraph stored as an edge list plus an
// adjacency index. Vertices are 0..N-1; edges are identified by their dense
// index into Edges. The zero value is an empty graph with no vertices.
type Graph struct {
	N     int
	Edges []Edge
	// adj[v] lists the incident edge ids of v.
	adj [][]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge inserts the undirected edge {u,v} with weight w and returns its id.
// Self-loops are rejected because no algorithm here tolerates them.
func (g *Graph) AddEdge(u, v int, w Weight) (int, error) {
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return -1, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.N)
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id, nil
}

// MustAddEdge is AddEdge for generator code where inputs are known valid.
// It panics on invalid input; library callers should use AddEdge.
func (g *Graph) MustAddEdge(u, v int, w Weight) int {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Incident returns the edge ids incident to v. The returned slice is owned
// by the graph and must not be mutated.
func (g *Graph) Incident(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the neighbor vertices of v (with multiplicity for
// parallel edges), in incident-edge order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for _, id := range g.adj[v] {
		out = append(out, g.Edges[id].Other(v))
	}
	return out
}

// TotalWeight sums the weights of the edge ids in set.
func (g *Graph) TotalWeight(set []int) Weight {
	var s Weight
	for _, id := range set {
		s += g.Edges[id].W
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.N)
	h.Edges = append([]Edge(nil), g.Edges...)
	for v := range g.adj {
		h.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return h
}

// Subgraph returns the spanning subgraph of g containing exactly the edges
// whose ids are in keep (vertex set unchanged).
func (g *Graph) Subgraph(keep []int) *Graph {
	h := New(g.N)
	for _, id := range keep {
		e := g.Edges[id]
		h.MustAddEdge(e.U, e.V, e.W)
	}
	return h
}

// ErrDisconnected reports that an operation requiring connectivity was
// invoked on a disconnected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// BFS runs a breadth-first search from src and returns (parentEdge, dist)
// where parentEdge[v] is the edge id used to reach v (-1 for src and for
// unreachable vertices) and dist[v] is the hop distance (-1 if unreachable).
func (g *Graph) BFS(src int) (parentEdge, dist []int) {
	return g.BFSInto(src, &BFSScratch{})
}

// BFSScratch holds reusable buffers for repeated BFS passes (Diameter runs
// one per vertex). The zero value is ready to use.
type BFSScratch struct {
	parentEdge, dist, queue []int
}

// BFSInto is BFS with buffers taken from s. The returned slices are owned
// by s and are only valid until the next call with the same scratch.
func (g *Graph) BFSInto(src int, s *BFSScratch) (parentEdge, dist []int) {
	if cap(s.parentEdge) < g.N {
		s.parentEdge = make([]int, g.N)
		s.dist = make([]int, g.N)
		s.queue = make([]int, 0, g.N)
	}
	parentEdge, dist = s.parentEdge[:g.N], s.dist[:g.N]
	for i := range dist {
		dist[i] = -1
		parentEdge[i] = -1
	}
	dist[src] = 0
	queue := append(s.queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range g.adj[v] {
			u := g.Edges[id].Other(v)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				parentEdge[u] = id
				queue = append(queue, u)
			}
		}
	}
	s.queue = queue[:0]
	return parentEdge, dist
}

// Connected reports whether g is connected (true for the empty and
// single-vertex graph).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	_, dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum hop distance from src, or an error if g
// is disconnected.
func (g *Graph) Eccentricity(src int) (int, error) {
	return g.eccentricityInto(src, &BFSScratch{})
}

func (g *Graph) eccentricityInto(src int, s *BFSScratch) (int, error) {
	_, dist := g.BFSInto(src, s)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter computes the exact hop diameter by running a BFS from every
// vertex, reusing one scratch across all passes. Intended for instance
// preparation, not for inner loops.
func (g *Graph) Diameter() (int, error) {
	if g.N == 0 {
		return 0, nil
	}
	var s BFSScratch
	diam := 0
	for v := 0; v < g.N; v++ {
		ecc, err := g.eccentricityInto(v, &s)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// DiameterApprox returns a 2-approximation of the diameter using two BFS
// sweeps (cheap; used for round accounting on large instances).
func (g *Graph) DiameterApprox() (int, error) {
	if g.N == 0 {
		return 0, nil
	}
	var s BFSScratch
	_, dist := g.BFSInto(0, &s)
	far, best := 0, -1
	for v, d := range dist {
		if d < 0 {
			return 0, ErrDisconnected
		}
		if d > best {
			best, far = d, v
		}
	}
	// dist aliases the scratch, so take what we need before the next pass.
	return g.eccentricityInto(far, &s)
}

// Bridges returns the ids of all bridge edges of g (edges whose removal
// disconnects their component), via an iterative Tarjan low-link DFS.
// Parallel edges are handled correctly: a duplicated edge is never a bridge.
func (g *Graph) Bridges() []int {
	disc := make([]int, g.N)
	low := make([]int, g.N)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0
	type frame struct {
		v, parentEdge, idx int
	}
	stack := make([]frame, 0, g.N)
	for s := 0; s < g.N; s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], frame{v: s, parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.v]) {
				id := g.adj[f.v][f.idx]
				f.idx++
				if id == f.parentEdge {
					continue
				}
				u := g.Edges[id].Other(f.v)
				if disc[u] < 0 {
					disc[u], low[u] = timer, timer
					timer++
					stack = append(stack, frame{v: u, parentEdge: id})
				} else if disc[u] < low[f.v] {
					low[f.v] = disc[u]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[f.v] < low[p.v] {
						low[p.v] = low[f.v]
					}
					if low[f.v] > disc[p.v] {
						bridges = append(bridges, f.parentEdge)
					}
				}
			}
		}
	}
	sort.Ints(bridges)
	return bridges
}

// TwoEdgeConnected reports whether g is connected, has at least 2 vertices'
// worth of structure (n<=1 counts as trivially 2-edge-connected), and has no
// bridges.
func (g *Graph) TwoEdgeConnected() bool {
	if g.N <= 1 {
		return true
	}
	if !g.Connected() {
		return false
	}
	return len(g.Bridges()) == 0
}

// MaxWeight returns the maximum edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() Weight {
	var mx Weight
	for _, e := range g.Edges {
		if e.W > mx {
			mx = e.W
		}
	}
	return mx
}
