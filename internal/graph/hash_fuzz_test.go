package graph

import "testing"

// FuzzGraphHashCanonical asserts the content digest's canonicalization
// invariant under fuzzed instances: permuting the edge insertion order and
// swapping edge endpoint orientation never changes Hash, while changing the
// vertex count always does. The service layer's disk store and result cache
// are keyed on this digest (DESIGN.md §7.1, §8), so a canonicalization gap
// would silently split or alias cache entries.
func FuzzGraphHashCanonical(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 0, 5})
	f.Add([]byte{3, 0, 1, 9, 0, 1, 9, 1, 2, 1}) // parallel edges
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 3 + int(data[0])%61
		data = data[1:]

		type edge struct {
			u, v int
			w    Weight
		}
		var edges []edge
		for i := 0; i+3 <= len(data) && len(edges) < 512; i += 3 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			edges = append(edges, edge{u: u, v: v, w: Weight(data[i+2]) + 1})
		}

		a := New(n)
		for _, e := range edges {
			a.MustAddEdge(e.u, e.v, e.w)
		}

		// b holds the same edge multiset: insertion order rotated by a
		// data-derived offset and reversed, every other edge's endpoints
		// swapped.
		rot := 0
		if len(edges) > 0 {
			rot = int(data[len(data)-1]) % len(edges)
		}
		b := New(n)
		for i := len(edges) - 1; i >= 0; i-- {
			e := edges[(i+rot)%len(edges)]
			if i%2 == 0 {
				e.u, e.v = e.v, e.u
			}
			b.MustAddEdge(e.u, e.v, e.w)
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("hash differs across edge permutation/orientation (n=%d, %d edges)", n, len(edges))
		}

		// A different vertex count over the same edges is different content.
		c := New(n + 1)
		for _, e := range edges {
			c.MustAddEdge(e.u, e.v, e.w)
		}
		if a.Hash() == c.Hash() {
			t.Fatalf("hash ignores vertex count (n=%d)", n)
		}
	})
}
