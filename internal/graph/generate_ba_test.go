package graph

import "testing"

func TestBarabasiAlbertShapeAndDeterminism(t *testing.T) {
	const n, m = 200, 3
	g := BarabasiAlbert(n, m, DefaultGenConfig(5))
	if g.N != n {
		t.Fatalf("got %d vertices, want %d", g.N, n)
	}
	core := m + 1
	wantM := core + m*(n-core)
	if g.M() != wantM {
		t.Fatalf("got %d edges, want %d", g.M(), wantM)
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Preferential attachment must produce hubs: the max degree far exceeds
	// the mean (~2m) on 200 vertices for any seed that passes determinism.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 4*m {
		t.Fatalf("max degree %d shows no hub formation (mean ~%d)", maxDeg, 2*m)
	}

	// Same seed, same graph — byte-identical edge lists.
	h := BarabasiAlbert(n, m, DefaultGenConfig(5))
	if len(h.Edges) != len(g.Edges) {
		t.Fatalf("edge count differs across identical seeds: %d vs %d", len(h.Edges), len(g.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatalf("edge %d differs across identical seeds: %v vs %v", i, g.Edges[i], h.Edges[i])
		}
	}
	if g.Hash() != h.Hash() {
		t.Fatal("hash differs across identical seeds")
	}
	if g.Hash() == BarabasiAlbert(n, m, DefaultGenConfig(6)).Hash() {
		t.Fatal("different seeds produced the identical graph")
	}
}

func TestBarabasiAlbertEnsure2EC(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		cfg := DefaultGenConfig(int64(10 + m))
		g := BarabasiAlbert(120, m, cfg)
		if _, err := Ensure2EC(g, cfg); err != nil {
			t.Fatalf("m=%d: Ensure2EC: %v", m, err)
		}
		if !g.TwoEdgeConnected() {
			t.Fatalf("m=%d: not 2-edge-connected after Ensure2EC", m)
		}
	}
}

func TestByFamilyAllFamilies2EC(t *testing.T) {
	for _, fam := range Families() {
		g, err := ByFamily(fam, 80, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !g.TwoEdgeConnected() {
			t.Fatalf("%s: instance not 2-edge-connected", fam)
		}
	}
	if _, err := ByFamily("nope", 80, 3); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := ByFamily("er", 2, 3); err == nil {
		t.Fatal("n=2 accepted")
	}
}
