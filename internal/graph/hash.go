package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"slices"
)

// Hash returns a canonical content digest of g: two graphs hash equal iff
// they have the same vertex count and the same multiset of weighted
// undirected edges, independent of edge insertion order and of the stored
// orientation of each edge. The service layer uses it as the
// content-addressed cache and network-pool key (DESIGN.md §7), so the
// digest must be deterministic across processes: it is a SHA-256 over a
// fixed-width little-endian encoding of (N, M, sorted normalized edges).
//
// Note the digest identifies the edge *multiset*, not the edge numbering:
// two graphs with equal hash may assign different ids to the same edge.
// Consumers keying on Hash must therefore exchange results in a
// representation-independent form (endpoint triples, not edge ids).
func (g *Graph) Hash() [32]byte {
	type triple struct {
		u, v int32
		w    Weight
	}
	es := make([]triple, len(g.Edges))
	for i, e := range g.Edges {
		u, v := int32(e.U), int32(e.V)
		if u > v {
			u, v = v, u
		}
		es[i] = triple{u: u, v: v, w: e.W}
	}
	slices.SortFunc(es, func(a, b triple) int {
		if a.u != b.u {
			return int(a.u - b.u)
		}
		if a.v != b.v {
			return int(a.v - b.v)
		}
		switch {
		case a.w < b.w:
			return -1
		case a.w > b.w:
			return 1
		}
		return 0
	})
	h := sha256.New()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(g.N))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(es)))
	h.Write(buf[:])
	for _, t := range es {
		binary.LittleEndian.PutUint32(buf[:4], uint32(t.u))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(t.v))
		binary.LittleEndian.PutUint64(buf[8:], uint64(t.w))
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}
