package graph

import (
	"math/rand"
	"testing"
)

// randomMultigraph builds a connected-ish random multigraph with parallel
// edges (AddEdge permits them; algorithms must tolerate multiplicity).
func randomMultigraph(n, m int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, Weight(1+rng.Intn(9)))
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.MustAddEdge(u, v, Weight(1+rng.Intn(9)))
	}
	return g
}

// TestCSRMatchesAdjacency is the property test pinning the CSR contract:
// for every vertex, AdjRow yields exactly the edge ids of Incident and the
// neighbor vertices of Neighbors, in the same order, on random multigraphs —
// including after incremental AddEdge mutations (lazy rebuild).
func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		g := randomMultigraph(n, rng.Intn(3*n), rng)
		checkCSR(t, g)
		// Mutate after the CSR was built: the dirty flag must trigger a
		// rebuild that again matches the legacy adjacency.
		for i := 0; i < 5; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 1)
			}
		}
		checkCSR(t, g)
	}
}

func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	us, vs := g.Endpoints()
	if len(us) != g.M() || len(vs) != g.M() {
		t.Fatalf("endpoint arrays have length %d,%d, want %d", len(us), len(vs), g.M())
	}
	for id, e := range g.Edges {
		if int(us[id]) != e.U || int(vs[id]) != e.V {
			t.Fatalf("edge %d endpoints (%d,%d) != (%d,%d)", id, us[id], vs[id], e.U, e.V)
		}
	}
	total := 0
	for v := 0; v < g.N; v++ {
		row := g.Row(v)
		inc := g.Incident(v)
		if len(row) != len(inc) {
			t.Fatalf("vertex %d: CSR row length %d, Incident length %d", v, len(row), len(inc))
		}
		if g.Degree(v) != len(row) {
			t.Fatalf("vertex %d: Degree %d != row length %d", v, g.Degree(v), len(row))
		}
		for i, id := range inc {
			if int(row[i].ID) != id {
				t.Fatalf("vertex %d pos %d: CSR edge id %d, Incident %d", v, i, row[i].ID, id)
			}
			if want := g.Edges[id].Other(v); int(row[i].To) != want {
				t.Fatalf("vertex %d pos %d: CSR neighbor %d, want %d", v, i, row[i].To, want)
			}
		}
		legacy := g.Neighbors(v)
		into := g.NeighborsInto(v, nil)
		if len(legacy) != len(into) {
			t.Fatalf("vertex %d: Neighbors %v != NeighborsInto %v", v, legacy, into)
		}
		for i := range legacy {
			if legacy[i] != into[i] {
				t.Fatalf("vertex %d: Neighbors %v != NeighborsInto %v", v, legacy, into)
			}
		}
		total += len(row)
	}
	if total != 2*g.M() {
		t.Fatalf("CSR rows cover %d incidences, want %d", total, 2*g.M())
	}
}

func TestNeighborsIntoReusesBuffer(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 3, 1)
	buf := make([]int, 0, 8)
	out := g.NeighborsInto(0, buf)
	if &out[:1][0] != &buf[:1][0] {
		t.Fatalf("NeighborsInto did not reuse the provided buffer")
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if out[i] != v {
			t.Fatalf("NeighborsInto = %v, want %v", out, want)
		}
	}
}

// TestDiameterParallelMatchesSequential pins that the worker-pool Diameter
// equals the sequential per-vertex eccentricity max.
func TestDiameterParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		g := randomMultigraph(n, rng.Intn(2*n), rng)
		want := 0
		var s BFSScratch
		for v := 0; v < g.N; v++ {
			ecc, err := g.eccentricityInto(v, &s)
			if err != nil {
				t.Fatal(err)
			}
			if ecc > want {
				want = ecc
			}
		}
		got, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Diameter = %d, want %d", got, want)
		}
	}
	// Disconnected graphs must error from the pool too.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := g.Diameter(); err != ErrDisconnected {
		t.Fatalf("Diameter on disconnected graph: err = %v, want ErrDisconnected", err)
	}
}
