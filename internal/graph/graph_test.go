package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
	id, err := g.AddEdge(0, 1, 7)
	if err != nil || id != 0 {
		t.Fatalf("AddEdge = %d, %v", id, err)
	}
	if g.M() != 1 || g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("unexpected graph shape: m=%d", g.M())
	}
}

func TestBFSAndDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		diam int
	}{
		{"path5", pathGraph(5), 4},
		{"cycle6", RingWithChords(6, 0, DefaultGenConfig(1)), 3},
		{"grid3x4", Grid(3, 4, DefaultGenConfig(1)), 5},
		{"single", New(1), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.g.Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if d != tc.diam {
				t.Fatalf("diameter = %d, want %d", d, tc.diam)
			}
			da, err := tc.g.DiameterApprox()
			if err != nil {
				t.Fatal(err)
			}
			if da > tc.diam || 2*da < tc.diam {
				t.Fatalf("approx diameter %d not within [diam/2, diam] of %d", da, tc.diam)
			}
		})
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if _, err := g.Diameter(); err != ErrDisconnected {
		t.Fatalf("Diameter err = %v, want ErrDisconnected", err)
	}
	if g.TwoEdgeConnected() {
		t.Fatal("disconnected graph reported 2EC")
	}
}

func pathGraph(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	return g
}

func TestBridges(t *testing.T) {
	// Two triangles joined by a single edge: exactly that edge is a bridge.
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	bridge := g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	br := g.Bridges()
	if len(br) != 1 || br[0] != bridge {
		t.Fatalf("Bridges = %v, want [%d]", br, bridge)
	}
	if g.TwoEdgeConnected() {
		t.Fatal("bridge graph reported 2EC")
	}
}

func TestBridgesPath(t *testing.T) {
	g := pathGraph(5)
	if got := len(g.Bridges()); got != 4 {
		t.Fatalf("path bridges = %d, want 4", got)
	}
}

func TestBridgesParallel(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 2)
	if got := g.Bridges(); len(got) != 0 {
		t.Fatalf("parallel-edge pair reported bridges %v", got)
	}
	if !g.TwoEdgeConnected() {
		t.Fatal("doubled edge should be 2EC")
	}
}

// bridgesNaive is an O(m * (n+m)) reference: remove each edge and test
// connectivity.
func bridgesNaive(g *Graph) map[int]bool {
	out := map[int]bool{}
	for id := range g.Edges {
		keep := make([]int, 0, g.M()-1)
		for j := range g.Edges {
			if j != id {
				keep = append(keep, j)
			}
		}
		if !g.Subgraph(keep).Connected() {
			out[id] = true
		}
	}
	return out
}

func TestBridgesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(14)
		cfg := GenConfig{Mode: WeightUnit, MaxW: 1, Rng: rng}
		g := RandomSpanningTreePlus(n, rng.Intn(n), cfg)
		want := bridgesNaive(g)
		got := g.Bridges()
		if len(got) != len(want) {
			t.Fatalf("trial %d: bridges=%v want set %v", trial, got, want)
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("trial %d: edge %d wrongly reported as bridge", trial, id)
			}
		}
	}
}

func TestGenerators2EC(t *testing.T) {
	cfg := DefaultGenConfig(7)
	tests := []struct {
		name string
		g    *Graph
	}{
		{"ring", RingWithChords(20, 5, cfg)},
		{"grid", Grid(5, 7, cfg)},
		{"treeleafcycle", TreeLeafCycle(4, cfg)},
		{"dumbbell", Dumbbell(5, 4, cfg)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.TwoEdgeConnected() {
				t.Fatalf("%s should be 2-edge-connected", tc.name)
			}
		})
	}
}

func TestEnsure2EC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		cfg := GenConfig{Mode: WeightUniform, MaxW: 100, Rng: rng}
		g := RandomSpanningTreePlus(8+rng.Intn(40), rng.Intn(5), cfg)
		if _, err := Ensure2EC(g, cfg); err != nil {
			t.Fatal(err)
		}
		if !g.TwoEdgeConnected() {
			t.Fatal("Ensure2EC left a bridge")
		}
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	cfg := DefaultGenConfig(11)
	g := ErdosRenyi(64, 0.05, cfg)
	if !g.Connected() {
		t.Fatal("ER generator must produce connected graphs")
	}
}

func TestPathWithIntervalsFeasible(t *testing.T) {
	cfg := DefaultGenConfig(5)
	g := PathWithIntervals(40, 30, cfg)
	if _, err := Ensure2EC(g, cfg); err != nil {
		t.Fatal(err)
	}
	if !g.TwoEdgeConnected() {
		t.Fatal("path+intervals should be augmentable to 2EC")
	}
}

func TestCaterpillarShape(t *testing.T) {
	g := Caterpillar(5, 3, DefaultGenConfig(2))
	if g.N != 20 || g.M() != 19 {
		t.Fatalf("caterpillar n=%d m=%d", g.N, g.M())
	}
	if !g.Connected() {
		t.Fatal("caterpillar must be a tree (connected)")
	}
}

// Property: in any connected generated graph, the set of bridges equals the
// naive reference and removing a non-bridge keeps the graph connected.
func TestBridgePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := GenConfig{Mode: WeightUnit, MaxW: 1, Rng: rng}
		g := RandomSpanningTreePlus(3+rng.Intn(12), rng.Intn(8), cfg)
		isBridge := make(map[int]bool)
		for _, id := range g.Bridges() {
			isBridge[id] = true
		}
		for id := range g.Edges {
			keep := make([]int, 0, g.M()-1)
			for j := range g.Edges {
				if j != id {
					keep = append(keep, j)
				}
			}
			conn := g.Subgraph(keep).Connected()
			if conn == isBridge[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := pathGraph(4)
	h := g.Clone()
	h.MustAddEdge(0, 3, 9)
	if g.M() == h.M() {
		t.Fatal("clone shares edge storage")
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	a := g.MustAddEdge(0, 1, 5)
	b := g.MustAddEdge(1, 2, 7)
	if got := g.TotalWeight([]int{a, b}); got != 12 {
		t.Fatalf("TotalWeight = %d", got)
	}
}
