package graph

import (
	"fmt"
	"math/rand"
	"slices"
)

// WeightMode selects how generators assign edge weights.
type WeightMode int

const (
	// WeightUniform draws weights uniformly from [1, MaxW].
	WeightUniform WeightMode = iota + 1
	// WeightUnit assigns weight 1 to every edge (the unweighted case).
	WeightUnit
	// WeightSkewed draws weights as 1 + x^3-skewed values in [1, MaxW],
	// producing a few very expensive edges, which stresses the primal-dual
	// weighting logic.
	WeightSkewed
)

// GenConfig parametrizes the instance generators.
type GenConfig struct {
	Mode WeightMode
	MaxW Weight
	Rng  *rand.Rand
}

// DefaultGenConfig returns a uniform-weight config with the given seed and a
// polynomially bounded weight range, as assumed by the paper.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{Mode: WeightUniform, MaxW: 1 << 16, Rng: rand.New(rand.NewSource(seed))}
}

func (c GenConfig) weight() Weight {
	switch c.Mode {
	case WeightUnit:
		return 1
	case WeightSkewed:
		x := c.Rng.Float64()
		w := Weight(x*x*x*float64(c.MaxW)) + 1
		return w
	default:
		return Weight(c.Rng.Int63n(int64(c.MaxW))) + 1
	}
}

// RandomSpanningTreePlus generates a connected graph on n vertices: a random
// spanning tree (random-parent attachment) plus extra additional random
// chords. With extra >= n/2 the result is usually 2-edge-connected; callers
// needing guaranteed 2EC should use Ensure2EC.
func RandomSpanningTreePlus(n, extra int, cfg GenConfig) *Graph {
	g := New(n)
	perm := cfg.Rng.Perm(n)
	for i := 1; i < n; i++ {
		p := perm[cfg.Rng.Intn(i)]
		g.MustAddEdge(perm[i], p, cfg.weight())
	}
	seen := make(map[[2]int]bool, extra+n)
	for _, e := range g.Edges {
		seen[normPair(e.U, e.V)] = true
	}
	for added := 0; added < extra && len(seen) < n*(n-1)/2; {
		u, v := cfg.Rng.Intn(n), cfg.Rng.Intn(n)
		if u == v || seen[normPair(u, v)] {
			continue
		}
		seen[normPair(u, v)] = true
		g.MustAddEdge(u, v, cfg.weight())
		added++
	}
	return g
}

func normPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// ErdosRenyi generates G(n,p) with weights per cfg, conditioned on
// connectivity by adding a random spanning tree first (standard practice for
// benchmarking distributed algorithms above the connectivity threshold).
func ErdosRenyi(n int, p float64, cfg GenConfig) *Graph {
	g := New(n)
	perm := cfg.Rng.Perm(n)
	seen := make(map[[2]int]bool, n*4)
	for i := 1; i < n; i++ {
		q := perm[cfg.Rng.Intn(i)]
		g.MustAddEdge(perm[i], q, cfg.weight())
		seen[normPair(perm[i], q)] = true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if seen[normPair(u, v)] {
				continue
			}
			if cfg.Rng.Float64() < p {
				g.MustAddEdge(u, v, cfg.weight())
			}
		}
	}
	return g
}

// Grid generates an rows x cols grid graph (planar, diameter rows+cols-2).
// Grids are 2-edge-connected for rows,cols >= 2.
func Grid(rows, cols int, cfg GenConfig) *Graph {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1), cfg.weight())
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c), cfg.weight())
			}
		}
	}
	return g
}

// RingWithChords generates a cycle on n vertices plus chords random chords;
// always 2-edge-connected, diameter up to n/2.
func RingWithChords(n, chords int, cfg GenConfig) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, cfg.weight())
	}
	for i := 0; i < chords; i++ {
		u, v := cfg.Rng.Intn(n), cfg.Rng.Intn(n)
		if u == v || (u+1)%n == v || (v+1)%n == u {
			continue
		}
		g.MustAddEdge(u, v, cfg.weight())
	}
	return g
}

// TreeLeafCycle generates the low-diameter planar-like family used in the
// shortcut experiments: a complete binary tree of the given depth, plus
// edges connecting consecutive leaves (in DFS order) and an edge closing the
// leaf path into a cycle through the root side. The result is planar,
// 2-edge-connected, and has diameter O(depth) = O(log n).
func TreeLeafCycle(depth int, cfg GenConfig) *Graph {
	n := (1 << (depth + 1)) - 1
	g := New(n)
	// Heap-indexed complete binary tree: children of v are 2v+1, 2v+2.
	for v := 0; v < n; v++ {
		if 2*v+1 < n {
			g.MustAddEdge(v, 2*v+1, cfg.weight())
		}
		if 2*v+2 < n {
			g.MustAddEdge(v, 2*v+2, cfg.weight())
		}
	}
	firstLeaf := (1 << depth) - 1
	for v := firstLeaf; v < n-1; v++ {
		g.MustAddEdge(v, v+1, cfg.weight())
	}
	// Close the structure: connect the extreme leaves to the root so every
	// tree edge lies on a cycle.
	g.MustAddEdge(firstLeaf, 0, cfg.weight())
	if n-1 != firstLeaf {
		g.MustAddEdge(n-1, 0, cfg.weight())
	}
	return g
}

// Caterpillar generates a caterpillar tree (a path of spineLen vertices,
// each with legs pendant leaves) and returns it as a graph. Useful for
// layering tests: it has exactly 2 layers.
func Caterpillar(spineLen, legs int, cfg GenConfig) *Graph {
	n := spineLen * (legs + 1)
	g := New(n)
	for i := 1; i < spineLen; i++ {
		g.MustAddEdge(i-1, i, cfg.weight())
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next, cfg.weight())
			next++
		}
	}
	return g
}

// PathWithIntervals generates a path on n vertices (the tree) plus m
// interval chords {l, r} with l<r. TAP on a path is exactly weighted
// interval covering, for which the baseline package has an exact solver, so
// this family yields instances with known optimum.
func PathWithIntervals(n, m int, cfg GenConfig) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, cfg.weight())
	}
	// Guarantee feasibility: chords covering the whole path in overlapping
	// windows, then random ones.
	win := n/4 + 2
	for l := 0; l < n-1; l += win / 2 {
		r := l + win
		if r > n-1 {
			r = n - 1
		}
		if l < r {
			g.MustAddEdge(l, r, cfg.weight())
		}
	}
	for i := 0; i < m; i++ {
		l, r := cfg.Rng.Intn(n), cfg.Rng.Intn(n)
		if l == r {
			continue
		}
		if l > r {
			l, r = r, l
		}
		if r == l+1 && cfg.Rng.Intn(2) == 0 {
			continue // skew away from trivial chords parallel to tree edges
		}
		g.MustAddEdge(l, r, cfg.weight())
	}
	return g
}

// Dumbbell generates two cliques of size k joined by a path of length
// bridgeLen, then doubled so it is 2-edge-connected. High-diameter stress
// instance.
func Dumbbell(k, bridgeLen int, cfg GenConfig) *Graph {
	n := 2*k + bridgeLen
	g := New(n)
	clique := func(base int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.MustAddEdge(base+i, base+j, cfg.weight())
			}
		}
	}
	clique(0)
	clique(k + bridgeLen)
	prev := k - 1
	for i := 0; i < bridgeLen; i++ {
		g.MustAddEdge(prev, k+i, cfg.weight())
		g.MustAddEdge(prev, k+i, cfg.weight()) // parallel edge: keeps 2EC
		prev = k + i
	}
	g.MustAddEdge(prev, k+bridgeLen, cfg.weight())
	g.MustAddEdge(prev, k+bridgeLen, cfg.weight())
	return g
}

// BarabasiAlbert generates a Barabási–Albert preferential-attachment graph:
// a ring core on m+1 vertices (2-edge-connected seed), then each new vertex
// attaches to m distinct existing vertices sampled with probability
// proportional to their current degree via the standard repeated-endpoint
// urn. The result is hub-dominated (power-law degree tail) with diameter
// O(log n / log log n) — a scale-free low-diameter family complementing the
// existing geometric and random ones. With m >= 2 the graph is usually
// 2-edge-connected but not guaranteed; callers needing a guarantee run
// Ensure2EC afterwards (the "ba" family in ByFamily does).
func BarabasiAlbert(n, m int, cfg GenConfig) *Graph {
	if m < 1 {
		m = 1
	}
	core := m + 1
	if core < 3 {
		core = 3
	}
	if core > n {
		core = n
	}
	g := New(n)
	// urn holds one entry per edge endpoint, so a uniform draw from it is a
	// degree-proportional vertex draw.
	urn := make([]int, 0, 2*(core+m*n))
	switch {
	case core >= 3:
		for v := 0; v < core; v++ {
			g.MustAddEdge(v, (v+1)%core, cfg.weight())
			urn = append(urn, v, (v+1)%core)
		}
	case core == 2:
		// Two vertices: a doubled edge keeps the core 2-edge-connected.
		g.MustAddEdge(0, 1, cfg.weight())
		g.MustAddEdge(0, 1, cfg.weight())
		urn = append(urn, 0, 1, 0, 1)
	}
	var chosen []int
	for v := core; v < n; v++ {
		chosen = chosen[:0]
		// v-1 >= core >= m+1 existing vertices, so m distinct targets exist
		// and the rejection loop terminates.
		for len(chosen) < m {
			t := urn[cfg.Rng.Intn(len(urn))]
			if slices.Contains(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			g.MustAddEdge(v, t, cfg.weight())
			urn = append(urn, v, t)
		}
	}
	return g
}

// Ensure2EC augments g with minimum structural effort until it is
// 2-edge-connected: it repeatedly finds a bridge (or disconnection) and adds
// a random chord fixing it. Returns the number of edges added.
func Ensure2EC(g *Graph, cfg GenConfig) (int, error) {
	if g.N < 3 {
		return 0, fmt.Errorf("graph: cannot make %d vertices 2-edge-connected", g.N)
	}
	added := 0
	if !g.Connected() {
		return 0, ErrDisconnected
	}
	for iter := 0; ; iter++ {
		if iter > 4*g.N {
			return added, fmt.Errorf("graph: Ensure2EC failed to converge")
		}
		bridges := g.Bridges()
		if len(bridges) == 0 {
			return added, nil
		}
		// Fix the first bridge: connect a vertex on each side, far apart.
		b := g.Edges[bridges[0]]
		sideU := g.componentWithout(bridges[0], b.U)
		sideV := g.componentWithout(bridges[0], b.V)
		u := sideU[cfg.Rng.Intn(len(sideU))]
		v := sideV[cfg.Rng.Intn(len(sideV))]
		if u == v {
			continue
		}
		g.MustAddEdge(u, v, cfg.weight())
		added++
	}
}

// componentWithout returns the vertices reachable from src without crossing
// the edge with id skip.
func (g *Graph) componentWithout(skip, src int) []int {
	seen := make([]bool, g.N)
	seen[src] = true
	stack := []int{src}
	var out []int
	off, ent := g.CSRView()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, h := range ent[off[v]:off[v+1]] {
			if int(h.ID) == skip {
				continue
			}
			if !seen[h.To] {
				seen[h.To] = true
				stack = append(stack, int(h.To))
			}
		}
	}
	return out
}
