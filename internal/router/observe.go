package router

// This file is the router's observability wiring (DESIGN.md §11): router.*
// events on the shared bus, the per-shard firehose aggregator that
// republishes every shard's events tagged with the origin shard address,
// the metrics collector absorbing the routing counters, and the SSE proxy
// that follows a shard-local job stream through the router.

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"twoecss/internal/obs"
	"twoecss/internal/service"
)

// Obs returns the router's observability hub (never nil after New).
func (rt *Router) Obs() *obs.Obs { return rt.o }

func (rt *Router) emit(e obs.Event) { rt.o.Bus.Publish(e) }

// registerMetrics creates the router's native instruments and registers
// the collector exporting its Stats snapshot at scrape time.
func (rt *Router) registerMetrics() {
	m := rt.o.Metrics
	rt.forwardHist = m.Histogram("ecss_router_forward_seconds",
		"Latency of deliverable 2xx forwards, first byte to full relay buffer.", nil)
	// Declared routing SLOs (DESIGN.md §12.4): requests good iff relayed as
	// a 2xx within Config.SLOLatency (99% target), and good iff answered
	// with a deliverable non-5xx at all (99.9% availability target).
	rt.sloLatency = obs.NewSLO(m, "route-latency", 0.99)
	rt.sloAvail = obs.NewSLO(m, "route-availability", 0.999)
	m.Collect(func(emit func(obs.Sample)) {
		st := rt.Stats()
		c := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: v, Labels: labels})
		}
		g := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v, Labels: labels})
		}
		c("ecss_router_requests_total", "Solve requests received.", float64(st.Requests))
		c("ecss_router_retries_total", "Extra attempts after retryable failures.", float64(st.Retries))
		c("ecss_router_hedges_total", "Attempts launched by the hedge trigger.", float64(st.Hedges))
		c("ecss_router_hedges_won_total", "Hedged attempts that produced the winning response.", float64(st.HedgesWon))
		c("ecss_router_ejections_total", "Circuit-breaker trips, active and passive.", float64(st.Ejections))
		c("ecss_router_no_shard_total", "Requests failed for want of any eligible shard.", float64(st.NoShard))
		g("ecss_router_eligible_shards", "Shards currently eligible for new requests.", float64(st.Eligible))
		g("ecss_router_hedge_delay_seconds", "Live hedging trigger (0: hedging inactive).", st.HedgeDelayMS/1e3)
		g("ecss_router_p99_estimate_seconds", "EWMA-derived latency estimate feeding the hedge trigger.", st.P99EstMS/1e3)
		for _, ss := range st.Shards {
			l := obs.L("shard", ss.Addr)
			g("ecss_router_shard_eligible", "Whether the shard takes new requests (by state).",
				map[bool]float64{true: 1, false: 0}[ss.State == StateHealthy || ss.State == StateHalfOpen], l)
			c("ecss_router_shard_forwards_total", "Attempts sent to the shard.", float64(ss.Forwards), l)
			c("ecss_router_shard_successes_total", "Successful responses from the shard.", float64(ss.Successes), l)
			c("ecss_router_shard_failures_total", "Breaker-relevant failures of the shard.", float64(ss.Failures), l)
			c("ecss_router_shard_ejections_total", "Times the shard was ejected.", float64(ss.Ejections), l)
			c("ecss_router_shard_hedges_total", "Hedged attempts sent to the shard.", float64(ss.Hedges), l)
			c("ecss_router_shard_hedges_won_total", "Hedged attempts the shard won.", float64(ss.HedgesWon), l)
			g("ecss_router_shard_ewma_seconds", "Per-shard EWMA success latency.", ss.EwmaMS/1e3, l)
		}
		for point, ps := range st.Faults {
			l := obs.L("point", point)
			c("ecss_fault_hits_total", "Fault-point traversals while a plan is armed.", float64(ps.Hits), l)
			c("ecss_fault_fires_total", "Faults actually injected.", float64(ps.Fires), l)
		}
		for _, row := range rt.scrapeShardEngines() {
			l := obs.L("shard", row.addr)
			c("ecss_engine_rounds_total", "Engine rounds consumed across all solves, by accounting kind.",
				float64(row.engine.SimulatedRounds), l, obs.L("kind", "simulated"))
			c("ecss_engine_rounds_total", "Engine rounds consumed across all solves, by accounting kind.",
				float64(row.engine.ChargedRounds), l, obs.L("kind", "charged"))
			c("ecss_engine_messages_total", "Engine messages delivered across all solves.",
				float64(row.engine.Messages), l)
			c("ecss_engine_words_total", "Engine payload words delivered across all solves.",
				float64(row.engine.Words), l)
			c("ecss_engine_profiled_solves_total", "Solves that retained a round profile.",
				float64(row.engine.ProfiledSolves), l)
		}
	})
}

// shardEngineTimeout bounds the per-scrape shard /v1/stats fetch: a scrape
// must answer promptly even with a dead shard in the set.
const shardEngineTimeout = 750 * time.Millisecond

type shardEngineRow struct {
	addr   string
	engine service.EngineStats
}

// scrapeShardEngines fetches every eligible shard's engine cost ledger from
// its /v1/stats, concurrently and bounded by shardEngineTimeout, so the
// router's /metrics exposes the fleet's round/message totals shard-tagged.
// Shards that fail to answer are omitted from this scrape (the series are
// cumulative counters on the shard side, so gaps read as stalls, not
// resets).
func (rt *Router) scrapeShardEngines() []shardEngineRow {
	ctx, cancel := context.WithTimeout(context.Background(), shardEngineTimeout)
	defer cancel()
	now := time.Now()
	rows := make([]shardEngineRow, len(rt.shards))
	ok := make([]bool, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if !sh.eligible(now) {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.addr+"/v1/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var doc struct {
				Engine service.EngineStats `json:"engine"`
			}
			if json.NewDecoder(resp.Body).Decode(&doc) != nil {
				return
			}
			rows[i] = shardEngineRow{addr: sh.addr, engine: doc.Engine}
			ok[i] = true
		}(i, sh)
	}
	wg.Wait()
	out := rows[:0]
	for i := range rows {
		if ok[i] {
			out = append(out, rows[i])
		}
	}
	return out
}

// aggregateReconnect paces firehose reconnects to a shard that is down or
// closed the stream.
const aggregateReconnect = time.Second

// aggregate follows one shard's /v1/events firehose for the router's
// lifetime, republishing every event on the router bus tagged with the
// origin shard address; the shard's own sequence number is preserved in
// ShardSeq and the router bus re-stamps Seq. Reconnects resume from the
// last republished ShardSeq (Last-Event-ID against the shard's replay
// ring), so a short shard outage loses nothing still retained there.
func (rt *Router) aggregate(sh *shard) {
	defer rt.wg.Done()
	var lastSeq uint64
	for {
		select {
		case <-rt.stop:
			return
		default:
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			select {
			case <-rt.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		lastSeq = rt.followFirehose(ctx, sh, lastSeq)
		cancel()
		select {
		case <-rt.stop:
			return
		case <-time.After(aggregateReconnect):
		}
	}
}

// followFirehose holds one SSE connection to sh's firehose, returning the
// last shard sequence number relayed (for resume).
func (rt *Router) followFirehose(ctx context.Context, sh *shard, fromSeq uint64) uint64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.addr+"/v1/events", nil)
	if err != nil {
		return fromSeq
	}
	if fromSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(fromSeq, 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return fromSeq
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fromSeq
	}
	last := fromSeq
	_ = obs.ReadSSE(resp.Body, func(ev obs.SSEvent) error {
		var e obs.Event
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			return nil // tolerate foreign frames; the stream goes on
		}
		last = e.Seq
		e.Shard, e.ShardSeq, e.Seq = sh.addr, e.Seq, 0
		rt.o.Bus.Publish(e)
		return nil
	})
	return last
}

// handleJobStream proxies a per-job SSE stream from the shard that knows
// the job: job ids are shard-local, so the router locates the owner by
// fanning out the stream request and pipes the first 200 through, flushing
// per chunk so events arrive live. Last-Event-ID / ?from= pass through to
// the shard untouched.
func (rt *Router) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := time.Now()
	for _, sh := range rt.shards {
		if !sh.eligible(now) {
			continue
		}
		url := sh.addr + "/v1/jobs/" + id + "/stream"
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
		if err != nil {
			continue
		}
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			req.Header.Set("Last-Event-ID", v)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		fl, _ := w.(http.Flusher)
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no")
		h.Set(obs.ShardHeader, sh.addr)
		w.WriteHeader(http.StatusOK)
		buf := make([]byte, 16<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + strconv.Quote(id) + " on any shard"})
}
