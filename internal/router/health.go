package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"twoecss/internal/obs"
)

// State is a shard's position in the router's health state machine:
//
//	healthy ──consecutive failures──▶ ejected ──backoff elapses──▶ half-open
//	   ▲                                 ▲                            │
//	   │                                 └────────any failure─────────┤
//	   └───────────────────────success────────────────────────────────┘
//
//	healthy ◀──/healthz 200──  draining  ◀──/healthz 503 "draining"── any
//
// Draining is deliberate removal, not failure: the shard finishes its
// in-flight work and keeps answering its prober, so it re-enters rotation
// the moment /healthz reports ok again — no backoff penalty.
type State int8

const (
	StateHealthy State = iota
	StateEjected
	StateHalfOpen
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateEjected:
		return "ejected"
	case StateHalfOpen:
		return "half-open"
	case StateDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int8(s))
}

// MarshalJSON renders the state name, not the enum value.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// shard is the router's view of one backend. The circuit breaker combines
// passive signals (forward outcomes) and active ones (prober results); both
// funnel through reportSuccess / reportFailure under mu.
type shard struct {
	id   int
	addr string // base URL, no trailing slash

	mu          sync.Mutex
	state       State
	consecFails int
	backoff     time.Duration // next ejection's length
	until       time.Time     // ejected: when half-open probing may begin

	// Counters, all monotone.
	forwards  int64 // attempts sent (including hedges and probes of live traffic)
	successes int64
	failures  int64 // connect errors + 5xx counted against the breaker
	ejections int64
	hedges    int64 // attempts launched as hedges against this shard
	hedgesWon int64 // hedged attempts that produced the winning response

	ewmaNs   float64 // per-shard success latency
	lastErr  string
	lastSeen time.Time // last successful response or probe
}

// ShardStats is the JSON view of one shard in /v1/stats and /healthz.
type ShardStats struct {
	Addr        string  `json:"addr"`
	State       State   `json:"state"`
	ConsecFails int     `json:"consec_fails,omitempty"`
	Forwards    int64   `json:"forwards"`
	Successes   int64   `json:"successes"`
	Failures    int64   `json:"failures"`
	Ejections   int64   `json:"ejections"`
	Hedges      int64   `json:"hedges"`
	HedgesWon   int64   `json:"hedges_won"`
	EwmaMS      float64 `json:"ewma_ms"`
	LastError   string  `json:"last_error,omitempty"`
}

func (sh *shard) stats() ShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return ShardStats{
		Addr:        sh.addr,
		State:       sh.state,
		ConsecFails: sh.consecFails,
		Forwards:    sh.forwards,
		Successes:   sh.successes,
		Failures:    sh.failures,
		Ejections:   sh.ejections,
		Hedges:      sh.hedges,
		HedgesWon:   sh.hedgesWon,
		EwmaMS:      sh.ewmaNs / 1e6,
		LastError:   sh.lastErr,
	}
}

// eligible reports whether new requests may route to the shard right now.
// An ejected shard whose backoff has elapsed transitions to half-open here,
// so the next request (or probe) is its trial.
func (sh *shard) eligible(now time.Time) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch sh.state {
	case StateHealthy, StateHalfOpen:
		return true
	case StateEjected:
		if now.After(sh.until) {
			sh.state = StateHalfOpen
			return true
		}
	}
	return false
}

// reportSuccess is the passive close of the breaker: any successful
// response (or probe) restores the shard to healthy and resets the backoff
// ladder. It reports whether this call recovered the shard — a transition
// from any out-of-rotation state back to healthy — so the caller can emit
// exactly one recovery event per outage.
func (sh *shard) reportSuccess(cfg Config, dur time.Duration) (recovered bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.successes++
	sh.consecFails = 0
	sh.backoff = cfg.EjectBackoff
	sh.lastErr = ""
	sh.lastSeen = time.Now()
	if sh.state != StateDraining || dur == 0 {
		// A probe success (dur 0) on a draining shard means it came back.
		recovered = sh.state != StateHealthy
		sh.state = StateHealthy
	}
	if dur > 0 {
		if sh.ewmaNs == 0 {
			sh.ewmaNs = float64(dur)
		} else {
			sh.ewmaNs = 0.8*sh.ewmaNs + 0.2*float64(dur)
		}
	}
	return recovered
}

// reportFailure counts a breaker-relevant failure (connect error or 5xx).
// A half-open shard re-ejects on its first failure; a healthy one ejects
// after cfg.EjectAfter consecutive failures. Each ejection doubles the
// backoff up to cfg.EjectBackoffMax. Returns true when this call ejected.
func (sh *shard) reportFailure(cfg Config, cause error) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.failures++
	sh.consecFails++
	if cause != nil {
		sh.lastErr = cause.Error()
	}
	if sh.state == StateEjected || sh.state == StateDraining {
		return false
	}
	if sh.state == StateHalfOpen || sh.consecFails >= cfg.EjectAfter {
		sh.state = StateEjected
		sh.until = time.Now().Add(sh.backoff)
		sh.backoff = min(2*sh.backoff, cfg.EjectBackoffMax)
		sh.ejections++
		sh.consecFails = 0
		return true
	}
	return false
}

// setDraining moves the shard out of new-request rotation without the
// ejection penalty: its /healthz said "draining", which is deliberate.
// Reports whether this call changed the state, so repeated drain probes
// produce one event, not a stream.
func (sh *shard) setDraining() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	changed := sh.state != StateDraining
	sh.state = StateDraining
	sh.lastErr = ""
	sh.lastSeen = time.Now()
	return changed
}

// probe is one active health check. It feeds the same breaker as live
// traffic, and it is the only path that can park a shard in — or recover
// it from — the draining state.
func (rt *Router) probe(sh *shard) {
	client := &http.Client{Timeout: rt.cfg.ProbeTimeout}
	resp, err := client.Get(sh.addr + "/healthz")
	if err != nil {
		if sh.reportFailure(rt.cfg, err) {
			rt.noteEjection(sh, err)
		}
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<10)).Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK:
		if sh.reportSuccess(rt.cfg, 0) {
			rt.emit(obs.Event{Type: obs.EvRouterShardRecovered, Shard: sh.addr})
		}
	case resp.StatusCode == http.StatusServiceUnavailable && body.Status == "draining":
		if sh.setDraining() {
			rt.emit(obs.Event{Type: obs.EvRouterShardDrain, Shard: sh.addr})
		}
	default:
		err := fmt.Errorf("healthz HTTP %d", resp.StatusCode)
		if sh.reportFailure(rt.cfg, err) {
			rt.noteEjection(sh, err)
		}
	}
}

// prober drives the active health checks until the router closes.
func (rt *Router) prober() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		var wg sync.WaitGroup
		for _, sh := range rt.shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				rt.probe(sh)
			}(sh)
		}
		wg.Wait()
	}
}
