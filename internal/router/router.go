// Package router is the fault-tolerant routing tier in front of N ecssd
// shards (DESIGN.md §10). Solve requests are consistent-hashed on the
// instance's content hash (graph.Hash prefix), so one graph always lands on
// the same shard's warm cache and network pool; every key also has a stable
// replica/failover order over the remaining shards. The router survives any
// single shard's failure or drain: active /healthz probes plus a passive
// consecutive-failure circuit breaker (exponential backoff, half-open
// trials) eject dead shards, connect errors and 5xx responses retry on the
// next replica with bounded jitter, and a request that outlives the
// EWMA-derived p99 estimate is hedged to a second shard — first ack wins,
// the loser is canceled via context. Results are content-addressed and the
// solver is deterministic, so any shard can (re)produce byte-identical
// bytes for any key: failover needs no replication protocol, only a warm
// or cold re-solve.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twoecss/internal/faults"
	"twoecss/internal/obs"
	"twoecss/internal/service"
)

// Config tunes the router. Zero values select the documented defaults.
type Config struct {
	// Replicas is the size of each key's replica set: how many shards are
	// considered "home" for a key before failover spills onto the rest of
	// the ring (default 2, clamped to the shard count).
	Replicas int
	// VNodes is the number of virtual ring points per shard (default 64).
	VNodes int
	// ProbeInterval is the active health-check period (default 500ms);
	// ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter is the consecutive-failure threshold that trips the
	// breaker (default 3). EjectBackoff is the first ejection's length,
	// doubling per re-ejection up to EjectBackoffMax (defaults 500ms, 15s).
	EjectAfter      int
	EjectBackoff    time.Duration
	EjectBackoffMax time.Duration
	// HedgeAfter, when positive, is a fixed hedging trigger. Zero selects
	// the adaptive policy: hedge when a request outlives the EWMA-tracked
	// p99 estimate (mean + 4·mean-deviation over recent successes), active
	// only once hedgeMinSamples successes have been observed.
	HedgeAfter time.Duration
	// MaxAttempts bounds total tries per request including the first and
	// any hedge (default 0: one try per distinct shard).
	MaxAttempts int
	// RetryJitter is the upper bound of the uniform random delay before
	// each retry attempt, decorrelating retry storms (default 25ms).
	RetryJitter time.Duration
	// SLOLatency is the route-latency SLO threshold: a routed 2xx counting
	// as "good" must be relayed within it (default 2s). Objectives are fixed
	// (99% latency, 99.9% availability), exported as ecss_slo_* burn rates.
	SLOLatency time.Duration
	// Obs is the router's observability hub (nil: a private one is
	// created). The router publishes router.* events on its bus, registers
	// its metrics, and — via the shard firehose aggregator — republishes
	// every shard's events tagged with the origin shard address.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.EjectBackoff <= 0 {
		c.EjectBackoff = 500 * time.Millisecond
	}
	if c.EjectBackoffMax <= 0 {
		c.EjectBackoffMax = 15 * time.Second
	}
	if c.RetryJitter < 0 {
		c.RetryJitter = 0
	} else if c.RetryJitter == 0 {
		c.RetryJitter = 25 * time.Millisecond
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 2 * time.Second
	}
	return c
}

// Adaptive hedging bounds: never hedge before the estimator has seen a
// workload, never sooner than hedgeFloor (a hedge under a few ms buys
// nothing and doubles load), never later than hedgeCeil.
const (
	hedgeMinSamples = 16
	hedgeFloor      = 5 * time.Millisecond
	hedgeCeil       = 30 * time.Second
)

// maxRelayBytes bounds one buffered backend response; matches the service's
// own request bound.
const maxRelayBytes = 1 << 28

// Router fronts a fixed shard set. Create with New, stop with Close.
type Router struct {
	cfg    Config
	shards []*shard
	ring   *ring
	client *http.Client
	// o is the observability hub (never nil after New); forwardHist is the
	// deliverable-forward latency histogram; sloLatency and sloAvail are the
	// declared routing SLOs (observe.go).
	o           *obs.Obs
	forwardHist *obs.Histogram
	sloLatency  *obs.SLO
	sloAvail    *obs.SLO

	// p99 estimator over successful forward latencies, all shards pooled:
	// EWMA mean and EWMA mean-absolute-deviation, sample-counted so the
	// cold start never hedges on noise. Guarded by emu.
	emu     sync.Mutex
	ewmaNs  float64
	devNs   float64
	samples int64

	requests  atomic.Int64 // solve requests received
	retries   atomic.Int64 // extra attempts after a retryable failure
	hedges    atomic.Int64 // attempts launched by the hedge trigger
	hedgesWon atomic.Int64 // hedged attempts that produced the winning response
	ejections atomic.Int64 // breaker trips, active + passive
	noShard   atomic.Int64 // requests failed for want of any eligible shard
	draining  atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over shardAddrs (base URLs) and starts its active
// prober. All shards start healthy; the first probe round corrects that
// within one ProbeInterval.
func New(cfg Config, shardAddrs []string) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(shardAddrs) == 0 {
		return nil, errors.New("router: need at least one shard")
	}
	rt := &Router{
		cfg: cfg,
		// Transport defaults suffice; no overall client timeout because
		// wait=true solves legitimately block. Cancellation is per-request
		// via context.
		client: &http.Client{},
		o:      cfg.Obs,
		stop:   make(chan struct{}),
	}
	if rt.o == nil {
		rt.o = obs.New()
	}
	seen := make(map[string]bool, len(shardAddrs))
	ids := make([]string, 0, len(shardAddrs))
	for i, addr := range shardAddrs {
		addr = strings.TrimRight(strings.TrimSpace(addr), "/")
		if addr == "" || seen[addr] {
			return nil, fmt.Errorf("router: empty or duplicate shard address %q", shardAddrs[i])
		}
		seen[addr] = true
		ids = append(ids, addr)
		rt.shards = append(rt.shards, &shard{
			id:      i,
			addr:    addr,
			state:   StateHealthy,
			backoff: cfg.EjectBackoff,
		})
	}
	rt.ring = newRing(ids, cfg.VNodes)
	rt.registerMetrics()
	rt.wg.Add(1)
	go rt.prober()
	for _, sh := range rt.shards {
		rt.wg.Add(1)
		go rt.aggregate(sh)
	}
	return rt, nil
}

// Close stops the prober. In-flight forwards finish on their own contexts.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// MarkDraining flips the router's own /healthz to 503 draining; forwarding
// continues so in-flight and straggler requests still get answers.
func (rt *Router) MarkDraining() {
	rt.draining.Store(true)
	rt.emit(obs.Event{Type: obs.EvRouterDrain})
}

func (rt *Router) noteEjection(sh *shard, cause error) {
	rt.ejections.Add(1)
	e := obs.Event{Type: obs.EvRouterEject, Shard: sh.addr}
	if cause != nil {
		e.Err = cause.Error()
	}
	rt.emit(e)
}

// candidates returns the key's eligible shards in ring preference order:
// the replica set first, then the failover tail. Draining and ejected
// shards are skipped; an ejected shard past its backoff re-enters here as
// half-open.
func (rt *Router) candidates(key uint64) []*shard {
	now := time.Now()
	order := rt.ring.order(key)
	out := make([]*shard, 0, len(order))
	for _, idx := range order {
		if sh := rt.shards[idx]; sh.eligible(now) {
			out = append(out, sh)
		}
	}
	return out
}

// hedgeDelay returns the current hedging trigger, or 0 when hedging is off
// (cold estimator and no fixed override).
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	rt.emu.Lock()
	defer rt.emu.Unlock()
	if rt.samples < hedgeMinSamples {
		return 0
	}
	d := time.Duration(rt.ewmaNs + 4*rt.devNs)
	return min(max(d, hedgeFloor), hedgeCeil)
}

// observeLatency feeds one successful forward into the p99 estimator.
func (rt *Router) observeLatency(dur time.Duration) {
	x := float64(dur)
	rt.emu.Lock()
	if rt.samples == 0 {
		rt.ewmaNs = x
	} else {
		rt.ewmaNs = 0.9*rt.ewmaNs + 0.1*x
		rt.devNs = 0.9*rt.devNs + 0.1*math.Abs(x-rt.ewmaNs)
	}
	rt.samples++
	rt.emu.Unlock()
}

// attemptResult is one backend attempt's outcome, buffered in full so the
// winner can be relayed after losers are canceled.
type attemptResult struct {
	shard  *shard
	status int
	header http.Header
	body   []byte
	err    error
	dur    time.Duration
	hedged bool
}

// deliverable reports whether the response should be relayed to the client
// rather than retried on another shard: any response the backend produced
// deliberately about THIS request (2xx/4xx/504), as opposed to transport
// errors, 5xx, and shed/draining statuses that another replica may well
// answer.
func (a *attemptResult) deliverable() bool {
	if a.err != nil {
		return false
	}
	switch {
	case a.status == http.StatusTooManyRequests, a.status == http.StatusServiceUnavailable:
		return false
	case a.status >= 500 && a.status != http.StatusGatewayTimeout:
		// 504 is the deadline-DOA contract — request-intrinsic, retrying
		// elsewhere would burn the remaining deadline for the same answer.
		return false
	}
	return true
}

// breakerRelevant reports whether the failure should count against the
// shard's circuit breaker: connect errors and 5xx crashes, but not 429
// (alive, shedding) or 503 (alive, draining — handled by state instead).
func (a *attemptResult) breakerRelevant() bool {
	if a.err != nil {
		return true
	}
	return a.status >= 500 && a.status != http.StatusServiceUnavailable && a.status != http.StatusGatewayTimeout
}

// attempt posts body to sh, buffering the full response. jitter delays the
// send (retry decorrelation); a canceled context aborts both the delay and
// the request. Every attempt of one forward — retries and hedges included —
// carries the same request id, so the shards' traces stitch into one.
func (rt *Router) attempt(ctx context.Context, sh *shard, reqID string, body []byte, hedged bool, jitter time.Duration, out chan<- *attemptResult) {
	res := &attemptResult{shard: sh, hedged: hedged}
	if jitter > 0 {
		t := time.NewTimer(time.Duration(rand.Int63n(int64(jitter))))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			res.err = ctx.Err()
			out <- res
			return
		}
	}
	sh.mu.Lock()
	sh.forwards++
	if hedged {
		sh.hedges++
	}
	sh.mu.Unlock()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.addr+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		res.err = err
		out <- res
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		res.dur = time.Since(start)
		out <- res
		return
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.header = resp.Header
	res.body, res.err = io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	res.dur = time.Since(start)
	out <- res
}

// errNoShard is returned (as a 503) when no shard is eligible for a key.
var errNoShard = errors.New("router: no healthy shard available")

// forward drives one client request to a deliverable response: primary
// attempt, bounded jittered retries on retryable failures, and one hedge
// when the primary outlives the hedge trigger. First deliverable response
// wins; canceling ctx (the deferred cancel on return) aborts the losers.
func (rt *Router) forward(ctx context.Context, reqID string, body []byte, cands []*shard) (*attemptResult, error) {
	if len(cands) == 0 {
		rt.noShard.Add(1)
		rt.emit(obs.Event{Type: obs.EvRouterNoShard, Req: reqID})
		return nil, errNoShard
	}
	maxAttempts := len(cands)
	if rt.cfg.MaxAttempts > 0 && rt.cfg.MaxAttempts < maxAttempts {
		maxAttempts = rt.cfg.MaxAttempts
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan *attemptResult, maxAttempts)
	next, inflight := 0, 0
	// pending tracks launched-but-unfinished attempts so the winner can
	// name the losers its deferred cancel kills (router.attempt_canceled).
	pending := make(map[*shard]bool, maxAttempts)
	launch := func(hedged bool, jitter time.Duration) {
		sh := cands[next]
		next++
		inflight++
		pending[sh] = true
		go rt.attempt(ctx, sh, reqID, body, hedged, jitter, results)
	}
	launch(false, 0)

	var hedgeC <-chan time.Time
	if d := rt.hedgeDelay(); d > 0 && maxAttempts > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var last *attemptResult
	for {
		select {
		case res := <-results:
			inflight--
			delete(pending, res.shard)
			if res.deliverable() {
				if recovered := res.shard.reportSuccess(rt.cfg, res.dur); recovered {
					rt.emit(obs.Event{Type: obs.EvRouterShardRecovered, Shard: res.shard.addr})
				}
				if res.status < 300 {
					rt.observeLatency(res.dur)
					rt.forwardHist.Observe(res.dur.Seconds())
				}
				if res.hedged {
					rt.hedgesWon.Add(1)
					res.shard.mu.Lock()
					res.shard.hedgesWon++
					res.shard.mu.Unlock()
					rt.emit(obs.Event{Type: obs.EvRouterHedgeWon, Req: reqID, Shard: res.shard.addr,
						MS: float64(res.dur) / float64(time.Millisecond)})
				}
				// The deferred cancel aborts every still-running loser; name
				// them so a hedged request's fate is fully narrated.
				for sh := range pending {
					rt.emit(obs.Event{Type: obs.EvRouterAttemptCanceled, Req: reqID, Shard: sh.addr})
				}
				return res, nil
			}
			if ctx.Err() != nil && errors.Is(res.err, context.Canceled) {
				// Cancellation unwinding (client gone), not a shard verdict.
				if inflight == 0 {
					return nil, ctx.Err()
				}
				continue
			}
			if res.breakerRelevant() {
				if res.shard.reportFailure(rt.cfg, failureCause(res)) {
					rt.noteEjection(res.shard, failureCause(res))
				}
			} else if res.status == http.StatusServiceUnavailable {
				// The shard told us it is draining; believe it immediately
				// instead of waiting for the next probe round.
				if res.shard.setDraining() {
					rt.emit(obs.Event{Type: obs.EvRouterShardDrain, Shard: res.shard.addr})
				}
			}
			last = res
			if next < maxAttempts {
				rt.retries.Add(1)
				rt.emit(obs.Event{Type: obs.EvRouterRetry, Req: reqID, Shard: cands[next].addr,
					Err: failureCause(res).Error()})
				launch(false, rt.cfg.RetryJitter)
			} else if inflight == 0 {
				return last, nil
			}
		case <-hedgeC:
			hedgeC = nil
			if next < maxAttempts {
				rt.hedges.Add(1)
				rt.emit(obs.Event{Type: obs.EvRouterHedge, Req: reqID, Shard: cands[next].addr})
				launch(true, 0)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func failureCause(res *attemptResult) error {
	if res.err != nil {
		return res.err
	}
	return fmt.Errorf("HTTP %d", res.status)
}

// Handler returns the router's HTTP API, a drop-in superset of one shard's:
//
//	POST /v1/solve            routed by content hash, retried/hedged across shards
//	GET  /v1/jobs/{id}        fanned out to eligible shards, first hit wins
//	GET  /v1/jobs/{id}/stream per-job SSE, proxied from the owning shard
//	GET  /v1/jobs/{id}/trace  job event timeline, fanned out like job lookups
//	GET  /v1/jobs/{id}/profile engine round profile, fanned out like job lookups
//	GET  /v1/events           aggregated firehose: router events + every
//	                          shard's events tagged with the origin shard
//	GET  /v1/stats            router + per-shard health and counters
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             200 while >=1 shard is eligible, else (or draining) 503
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", rt.handleJobStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", rt.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", rt.handleJobProfile)
	mux.HandleFunc("GET /v1/events", rt.o.Bus.ServeFirehose)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.Handle("GET /metrics", rt.o.Metrics.Handler())
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	// The router is usually the first tier to see the request: mint the
	// trace id here (or adopt the client's) so every shard attempt of this
	// forward shares it, and echo it on all responses including errors.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)
	if err := faults.Point("router.forward"); err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRelayBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "read body: " + err.Error()})
		return
	}
	var req service.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad graph: " + err.Error()})
		return
	}
	res, err := rt.forward(r.Context(), reqID, body, rt.candidates(keyPoint(g.Hash())))
	// SLO classification: the routing tier is available when it relayed a
	// deliverable non-5xx answer; 2xx relays additionally count against the
	// route-latency objective.
	good := err == nil && res.err == nil && res.status < http.StatusInternalServerError
	rt.sloAvail.Observe(good)
	if good && res.status < http.StatusMultipleChoices {
		rt.sloLatency.ObserveLatency(res.dur, rt.cfg.SLOLatency)
	}
	switch {
	case errors.Is(err, errNoShard):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case err != nil:
		// Client context canceled/expired mid-forward.
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	case res.err != nil:
		// Every candidate failed at the transport layer.
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": res.err.Error()})
		return
	}
	relay(w, res)
}

// relay writes a buffered backend response to the client, preserving the
// contract-bearing headers (Retry-After on 429/503 in particular) and
// naming the shard whose attempt won so job ids — shard-local — can be
// followed up against the right backend.
func relay(w http.ResponseWriter, res *attemptResult) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if res.shard != nil {
		w.Header().Set(obs.ShardHeader, res.shard.addr)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handleJob resolves a job id by asking each eligible shard in turn: job
// ids are shard-local, so the router fans out and relays the first hit.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	rt.fanoutGet(w, r, "/v1/jobs/"+r.PathValue("id"))
}

// handleJobTrace fans a trace lookup out exactly like a job lookup.
func (rt *Router) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	rt.fanoutGet(w, r, "/v1/jobs/"+r.PathValue("id")+"/trace")
}

// handleJobProfile fans an engine-profile lookup out like a job lookup: the
// owning shard retains the round timeline, the router only locates it.
func (rt *Router) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	rt.fanoutGet(w, r, "/v1/jobs/"+r.PathValue("id")+"/profile")
}

// fanoutGet relays the first shard 200 for path, trying eligible shards in
// id order (job ids are shard-local; at most one shard knows any given id).
func (rt *Router) fanoutGet(w http.ResponseWriter, r *http.Request, path string) {
	now := time.Now()
	for _, sh := range rt.shards {
		if !sh.eligible(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, sh.addr+path, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		relay(w, &attemptResult{shard: sh, status: resp.StatusCode, header: resp.Header, body: body})
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("%q not found on any shard", path)})
}

// Stats is the router's /v1/stats document: its own routing counters plus
// the per-shard health view its breaker and prober maintain.
type Stats struct {
	Shards   []ShardStats `json:"shards"`
	Eligible int          `json:"eligible"`

	Requests  int64 `json:"requests"`
	Retries   int64 `json:"retries"`
	Hedges    int64 `json:"hedges"`
	HedgesWon int64 `json:"hedges_won"`
	Ejections int64 `json:"ejections"`
	NoShard   int64 `json:"no_shard"`

	// HedgeDelayMS is the live hedging trigger (0: hedging inactive);
	// P99EstMS is the EWMA-derived latency estimate feeding it.
	HedgeDelayMS float64 `json:"hedge_delay_ms"`
	P99EstMS     float64 `json:"p99_est_ms"`

	// Faults mirrors the armed fault plan's counters (router.forward).
	Faults map[string]faults.PointStats `json:"faults,omitempty"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() Stats {
	st := Stats{
		Requests:  rt.requests.Load(),
		Retries:   rt.retries.Load(),
		Hedges:    rt.hedges.Load(),
		HedgesWon: rt.hedgesWon.Load(),
		Ejections: rt.ejections.Load(),
		NoShard:   rt.noShard.Load(),
		Faults:    faults.Snapshot(),
	}
	now := time.Now()
	for _, sh := range rt.shards {
		st.Shards = append(st.Shards, sh.stats())
		if sh.eligible(now) {
			st.Eligible++
		}
	}
	st.HedgeDelayMS = float64(rt.hedgeDelay()) / 1e6
	rt.emu.Lock()
	st.P99EstMS = (rt.ewmaNs + 4*rt.devNs) / 1e6
	rt.emu.Unlock()
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

// handleHealthz reports router readiness: serving (>=1 eligible shard),
// degraded to 503 when every shard is out, and 503 draining once
// MarkDraining was called.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "eligible": st.Eligible})
		return
	}
	if st.Eligible == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no-healthy-shard", "eligible": 0})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "eligible": st.Eligible})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
