package router

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
)

// ring is a consistent-hash ring over shard indices. Each shard owns vnodes
// points on the uint64 circle; a key routes to the shards met walking
// clockwise from its hash point, deduplicated, which gives every key a
// stable preference order over ALL shards: replicas first, then the natural
// failover sequence when replicas are down. Store entry files are
// self-describing (DESIGN.md §8), so ownership moving between shards as the
// set changes costs only cache warmth, never correctness.
type ring struct {
	points []ringPoint // sorted by h
	shards int
}

type ringPoint struct {
	h     uint64
	shard int
}

// newRing places vnodes virtual points per shard id. Ids must be distinct;
// they seed the point hashes so the layout is stable across restarts.
func newRing(ids []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes), shards: len(ids)}
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", id, v)
			// FNV over short, similar strings clusters badly on the ring;
			// a splitmix64 finalizer avalanches it into a uniform point.
			r.points = append(r.points, ringPoint{h: mix64(h.Sum64()), shard: i})
		}
	}
	slices.SortFunc(r.points, func(a, b ringPoint) int {
		switch {
		case a.h < b.h:
			return -1
		case a.h > b.h:
			return 1
		// Tie-break on shard so the order is deterministic even on the
		// (astronomically unlikely) 64-bit collision.
		default:
			return a.shard - b.shard
		}
	})
	return r
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyPoint maps a graph hash to its ring position: the first 8 bytes of the
// content hash, which are uniformly distributed by construction (SHA-256).
func keyPoint(ghash [32]byte) uint64 {
	return binary.BigEndian.Uint64(ghash[:8])
}

// order returns every shard index in the key's clockwise preference order.
// The first replicas entries are the key's replica set; the rest are the
// failover tail.
func (r *ring) order(key uint64) []int {
	out := make([]int, 0, r.shards)
	if len(r.points) == 0 {
		return out
	}
	seen := make([]bool, r.shards)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
