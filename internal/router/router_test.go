package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"twoecss/internal/faults"
	"twoecss/internal/graph"
	"twoecss/internal/obs"
	"twoecss/internal/service"
)

// testBody marshals a small valid solve request whose content hash varies
// with seed, so tests can steer distinct keys at the ring.
func testBody(t *testing.T, seed int64) []byte {
	t.Helper()
	g, err := graph.ByFamily("ring", 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.SolveRequest{Graph: service.WireGraph(g), Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// bodyForPrimary finds a solve body whose key's primary replica is the given
// shard index — tests that must exercise a specific backend first pin their
// traffic with this instead of hoping a random seed routes there.
func bodyForPrimary(t *testing.T, rt *Router, shard int) []byte {
	t.Helper()
	for seed := int64(1); seed < 256; seed++ {
		g, err := graph.ByFamily("ring", 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		if rt.ring.order(keyPoint(g.Hash()))[0] == shard {
			return testBody(t, seed)
		}
	}
	t.Fatalf("no seed in [1,256) mapped primary to shard %d", shard)
	return nil
}

// okHandler answers every solve with a fixed done job tagged with the
// shard's name, so tests can see who served what.
func okHandler(name string, hits *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		writeJSON(w, http.StatusOK, map[string]string{"job_id": name, "status": "done"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// quietConfig disables the active prober and retry jitter so unit tests
// exercise exactly the passive path they mean to.
func quietConfig() Config {
	return Config{ProbeInterval: time.Hour, RetryJitter: time.Nanosecond}
}

func postVia(t *testing.T, rt *Router, body []byte) (int, map[string]string, http.Header) {
	t.Helper()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out, resp.Header
}

func TestRingStableAndComplete(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	r := newRing(ids, 64)
	counts := make([]int, len(ids))
	for k := 0; k < 2000; k++ {
		key := uint64(k) * 0x9e3779b97f4a7c15
		o1, o2 := r.order(key), r.order(key)
		if len(o1) != len(ids) {
			t.Fatalf("order(%d) covers %d shards, want %d", key, len(o1), len(ids))
		}
		seen := make(map[int]bool)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("order(%d) not deterministic", key)
			}
			if seen[o1[i]] {
				t.Fatalf("order(%d) repeats shard %d", key, o1[i])
			}
			seen[o1[i]] = true
		}
		counts[o1[0]]++
	}
	// 64 vnodes over 5 shards: primary ownership should be within a loose
	// factor of fair share (400), catching gross ring bugs, not variance.
	for i, c := range counts {
		if c < 100 || c > 1000 {
			t.Fatalf("shard %d owns %d/2000 keys — ring badly unbalanced: %v", i, c, counts)
		}
	}
}

func TestConsistentRoutingPinsKeyToShard(t *testing.T) {
	var hits [3]atomic.Int64
	var addrs []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(okHandler(fmt.Sprintf("s%d", i), &hits[i]))
		defer srv.Close()
		addrs = append(addrs, srv.URL)
	}
	rt, err := New(quietConfig(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// One key, many posts: exactly one shard serves them all.
	body := testBody(t, 1)
	for i := 0; i < 8; i++ {
		if code, out, _ := postVia(t, rt, body); code != http.StatusOK || out["status"] != "done" {
			t.Fatalf("post %d: code=%d out=%v", i, code, out)
		}
	}
	nonzero := 0
	for i := range hits {
		if hits[i].Load() > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("one key spread over %d shards, want 1 (hits: %d %d %d)",
			nonzero, hits[0].Load(), hits[1].Load(), hits[2].Load())
	}

	// Many keys: more than one shard sees traffic.
	for seed := int64(2); seed < 40; seed++ {
		postVia(t, rt, testBody(t, seed))
	}
	nonzero = 0
	for i := range hits {
		if hits[i].Load() > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Fatalf("38 keys all routed to %d shard(s)", nonzero)
	}
}

func TestRetryFailsOverTo5xxFreeReplica(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "injected"})
	}))
	defer bad.Close()
	var goodHits atomic.Int64
	good := httptest.NewServer(okHandler("good", &goodHits))
	defer good.Close()

	rt, err := New(quietConfig(), []string{bad.URL, good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// One request pinned to the bad primary guarantees a retry; the rest are
	// arbitrary keys that must all come back from the good shard regardless
	// of where they route first.
	bodies := [][]byte{bodyForPrimary(t, rt, 0)}
	for seed := int64(1); seed <= 5; seed++ {
		bodies = append(bodies, testBody(t, seed))
	}
	for i, b := range bodies {
		code, out, _ := postVia(t, rt, b)
		if code != http.StatusOK || out["job_id"] != "good" {
			t.Fatalf("request %d: code=%d out=%v, want 200 from good shard", i, code, out)
		}
	}
	if goodHits.Load() != 6 {
		t.Fatalf("good shard served %d/6", goodHits.Load())
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	if st.Shards[0].Failures == 0 {
		t.Fatalf("bad shard shows no failures: %+v", st.Shards[0])
	}
}

func TestCircuitBreakerEjectsThenRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "down"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"job_id": "flaky", "status": "done"})
	}))
	defer flaky.Close()
	good := httptest.NewServer(okHandler("good", nil))
	defer good.Close()

	cfg := quietConfig()
	cfg.EjectAfter = 2
	cfg.EjectBackoff = 30 * time.Millisecond
	rt, err := New(cfg, []string{flaky.URL, good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Pin a key whose primary replica is the flaky shard so each request
	// exercises it before failing over, then drive failures until the
	// breaker trips.
	body := bodyForPrimary(t, rt, 0)
	for i := 0; i < 4; i++ {
		if code, _, _ := postVia(t, rt, body); code != http.StatusOK {
			t.Fatalf("request %d not failed over: %d", i, code)
		}
	}
	if got := rt.shards[0].stats(); got.State != StateEjected {
		t.Fatalf("flaky shard state %s after repeated failures, want ejected", got.State)
	}
	if rt.Stats().Ejections == 0 {
		t.Fatal("no ejection counted")
	}
	// While ejected, no traffic reaches it.
	before := hits.Load()
	for i := 0; i < 3; i++ {
		postVia(t, rt, body)
	}
	if hits.Load() != before {
		t.Fatalf("ejected shard still receiving traffic (%d -> %d)", before, hits.Load())
	}
	// Heal the backend, wait out the backoff: the half-open trial restores it.
	failing.Store(false)
	time.Sleep(2 * cfg.EjectBackoff)
	var healed bool
	for i := 0; i < 10; i++ {
		postVia(t, rt, body)
		if rt.shards[0].stats().State == StateHealthy {
			healed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healed {
		t.Fatalf("flaky shard never recovered: %+v", rt.shards[0].stats())
	}
}

func TestHedgeRacesSlowPrimaryFirstAckWins(t *testing.T) {
	const slowDelay = 2 * time.Second
	canceled := make(chan struct{}, 4)
	cfg := quietConfig()
	cfg.HedgeAfter = 25 * time.Millisecond
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body first: Go's server only watches for client
		// disconnect (canceling r.Context()) once the body is drained —
		// exactly what the real solve handler's JSON decode does.
		io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(slowDelay):
			writeJSON(w, http.StatusOK, map[string]string{"job_id": "slow", "status": "done"})
		case <-r.Context().Done():
			canceled <- struct{}{}
		}
	}))
	defer slowSrv.Close()
	fastSrv := httptest.NewServer(okHandler("fast", nil))
	defer fastSrv.Close()

	// Find a seed whose primary replica is the slow shard: the first ack
	// must then come from the hedge on the fast one.
	rt2, err := New(cfg, []string{slowSrv.URL, fastSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	hedgeBody := bodyForPrimary(t, rt2, 0)

	t0 := time.Now()
	code, out2, _ := postVia(t, rt2, hedgeBody)
	elapsed := time.Since(t0)
	if code != http.StatusOK || out2["job_id"] != "fast" {
		t.Fatalf("hedged request: code=%d out=%v, want fast shard's answer", code, out2)
	}
	if elapsed >= slowDelay {
		t.Fatalf("hedge did not race the slow primary: took %s", elapsed)
	}
	st := rt2.Stats()
	if st.Hedges == 0 || st.HedgesWon == 0 {
		t.Fatalf("hedge counters not recorded: %+v", st)
	}
	// The losing (slow) attempt must be canceled via context.
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("slow loser was never canceled")
	}
}

func TestDrainingShardLeavesRotation(t *testing.T) {
	var draining atomic.Bool
	var hits atomic.Int64
	drainable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if draining.Load() {
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			} else {
				writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			}
			return
		}
		hits.Add(1)
		if draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"job_id": "drainable", "status": "done"})
	}))
	defer drainable.Close()
	good := httptest.NewServer(okHandler("good", nil))
	defer good.Close()

	cfg := quietConfig()
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.ProbeTimeout = time.Second
	rt, err := New(cfg, []string{drainable.URL, good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	body := testBody(t, 1)
	if code, _, _ := postVia(t, rt, body); code != http.StatusOK {
		t.Fatalf("pre-drain request failed: %d", code)
	}
	draining.Store(true)
	// The active prober must park the shard in draining within an interval
	// or two — without an ejection penalty.
	deadline := time.Now().Add(2 * time.Second)
	for rt.shards[0].stats().State != StateDraining {
		if time.Now().After(deadline) {
			t.Fatalf("shard never marked draining: %+v", rt.shards[0].stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rt.Stats().Ejections != 0 {
		t.Fatalf("draining cost an ejection: %+v", rt.Stats())
	}
	// All new traffic bypasses it...
	before := hits.Load()
	for i := 0; i < 5; i++ {
		code, out, _ := postVia(t, rt, body)
		if code != http.StatusOK || out["job_id"] != "good" {
			t.Fatalf("during drain: code=%d out=%v", code, out)
		}
	}
	if hits.Load() != before {
		t.Fatal("draining shard still receives new requests")
	}
	// ...and it re-enters rotation the moment it reports healthy again.
	draining.Store(false)
	deadline = time.Now().Add(2 * time.Second)
	for rt.shards[0].stats().State != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("shard never returned from draining: %+v", rt.shards[0].stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPassive503MarksDrainingImmediately(t *testing.T) {
	drainer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "service: draining"})
	}))
	defer drainer.Close()
	good := httptest.NewServer(okHandler("good", nil))
	defer good.Close()

	rt, err := New(quietConfig(), []string{drainer.URL, good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Pin a key whose primary replica is the draining shard so the 503 is
	// actually observed (an arbitrary seed might route straight to good).
	code, out, _ := postVia(t, rt, bodyForPrimary(t, rt, 0))
	if code != http.StatusOK || out["job_id"] != "good" {
		t.Fatalf("code=%d out=%v", code, out)
	}
	st := rt.shards[0].stats()
	if st.State != StateDraining {
		t.Fatalf("503-ing shard state %s, want draining (no probe needed)", st.State)
	}
	if rt.Stats().Ejections != 0 {
		t.Fatal("passive drain detection cost an ejection")
	}
}

func TestNoEligibleShard503WithRetryAfter(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	}))
	defer dead.Close()
	rt, err := New(quietConfig(), []string{dead.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.shards[0].setDraining()
	code, out, hdr := postVia(t, rt, testBody(t, 1))
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("no-shard response: code=%d hdr=%v out=%v, want 503 + Retry-After", code, hdr, out)
	}
	if rt.Stats().NoShard == 0 {
		t.Fatal("no_shard not counted")
	}
}

func TestRouterForwardFaultPoint(t *testing.T) {
	good := httptest.NewServer(okHandler("good", nil))
	defer good.Close()
	rt, err := New(quietConfig(), []string{good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := faults.Arm("router.forward:error=chaos,count=1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	code, out, _ := postVia(t, rt, testBody(t, 1))
	if code != http.StatusBadGateway || out["error"] == "" {
		t.Fatalf("armed fault: code=%d out=%v, want explicit 502", code, out)
	}
	if code, out, _ := postVia(t, rt, testBody(t, 1)); code != http.StatusOK {
		t.Fatalf("count=1 fault kept firing: code=%d out=%v", code, out)
	}
	st := rt.Stats()
	if st.Faults["router.forward"].Fires != 1 {
		t.Fatalf("fault counters not surfaced in stats: %+v", st.Faults)
	}
}

func TestJobFanout(t *testing.T) {
	withJob := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs/j42" {
			writeJSON(w, http.StatusOK, map[string]string{"job_id": "j42", "status": "done"})
			return
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
	}))
	defer withJob.Close()
	without := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
	}))
	defer without.Close()

	rt, err := New(quietConfig(), []string{without.URL, withJob.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/j42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK || out["job_id"] != "j42" {
		t.Fatalf("fanout lookup: code=%d out=%v", resp.StatusCode, out)
	}
	if resp, err = http.Get(srv.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: code=%d, want 404", resp.StatusCode)
	}
}

func TestRouterHealthzStates(t *testing.T) {
	good := httptest.NewServer(okHandler("good", nil))
	defer good.Close()
	rt, err := New(quietConfig(), []string{good.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	if code, out := get(); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthy router: code=%d out=%v", code, out)
	}
	rt.shards[0].setDraining()
	if code, out := get(); code != http.StatusServiceUnavailable || out["status"] != "no-healthy-shard" {
		t.Fatalf("shardless router: code=%d out=%v", code, out)
	}
	rt.MarkDraining()
	if code, out := get(); code != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Fatalf("draining router: code=%d out=%v", code, out)
	}
}

func TestProfileFanoutAndShardEngineMetrics(t *testing.T) {
	withProfile := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/j7/profile":
			writeJSON(w, http.StatusOK, map[string]any{"job_id": "j7", "status": "done",
				"profile": map[string]any{"stride": 1, "rounds_observed": 9}})
		case "/v1/stats":
			writeJSON(w, http.StatusOK, map[string]any{"engine": service.EngineStats{
				SimulatedRounds: 120, ChargedRounds: 7, Messages: 4000, Words: 5000, ProfiledSolves: 3}})
		default:
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown"})
		}
	}))
	defer withProfile.Close()
	without := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			writeJSON(w, http.StatusOK, map[string]any{"engine": service.EngineStats{
				SimulatedRounds: 30, Messages: 1000}})
			return
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown"})
	}))
	defer without.Close()

	rt, err := New(quietConfig(), []string{without.URL, withProfile.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs/j7/profile")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["job_id"] != "j7" || out["profile"] == nil {
		t.Fatalf("profile fanout: code=%d out=%v", resp.StatusCode, out)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if _, err := obs.ValidateExposition(doc); err != nil {
		t.Fatalf("router exposition invalid: %v", err)
	}
	for _, want := range []string{
		`ecss_engine_rounds_total{kind="simulated",shard="` + withProfile.URL + `"} 120`,
		`ecss_engine_rounds_total{kind="simulated",shard="` + without.URL + `"} 30`,
		`ecss_engine_messages_total{shard="` + withProfile.URL + `"} 4000`,
		`ecss_slo_burn_rate{slo="route-availability"`,
		`ecss_slo_objective{slo="route-latency"} 0.99`,
	} {
		if !bytes.Contains(doc, []byte(want)) {
			t.Fatalf("router /metrics missing %q", want)
		}
	}
	// The fleet total sums across shard labels.
	if sum, ok := obs.SumSeries(doc, "ecss_engine_messages_total"); !ok || sum != 5000 {
		t.Fatalf("fleet messages sum %.0f (ok=%v), want 5000", sum, ok)
	}
}
