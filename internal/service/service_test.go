package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/graph"
)

func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.ByFamily("ring", 24, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

// TestSingleFlightConcurrentSubmit is the subsystem acceptance test: N
// goroutines submit the same instance (some via a differently-ordered but
// structurally identical copy) and exactly one solve executes; everyone
// receives byte-identical result bytes.
func TestSingleFlightConcurrentSubmit(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 32})
	defer drain(t, s)

	base := testGraph(t, 1)
	// A structurally identical twin with reversed edge insertion order:
	// different edge ids, same content hash.
	twin := graph.New(base.N)
	for i := len(base.Edges) - 1; i >= 0; i-- {
		e := base.Edges[i]
		twin.MustAddEdge(e.V, e.U, e.W)
	}
	if base.Hash() != twin.Hash() {
		t.Fatal("twin does not content-match base")
	}

	const submitters = 16
	var wg sync.WaitGroup
	results := make([][]byte, submitters)
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := base
			if i%2 == 1 {
				g = twin
			}
			j, _, err := s.Submit(g, ecss.DefaultOptions())
			if err != nil {
				errs[i] = err
				return
			}
			<-j.Done()
			snap := s.snapshot(j)
			if snap.Status != StatusDone {
				errs[i] = fmt.Errorf("job %s status %s: %s", j.ID(), snap.Status, snap.Error)
				return
			}
			results[i] = snap.Result
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	for i := 1; i < submitters; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("submitter %d received different result bytes", i)
		}
	}
	st := s.Stats()
	if st.Solves != 1 {
		t.Fatalf("got %d solves, want exactly 1 (stats: %+v)", st.Solves, st)
	}
	if st.Hits() != submitters-1 {
		t.Fatalf("got %d hits (%d cache + %d coalesced), want %d",
			st.Hits(), st.CacheHits, st.Coalesced, submitters-1)
	}
}

func TestCacheKeyCoversOptions(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	g := testGraph(t, 2)

	j1, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("first submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j1)

	// Same graph, same options: cache hit on the same job.
	j2, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || !hit || j2 != j1 {
		t.Fatalf("identical resubmit: job=%v hit=%v err=%v", j2.ID(), hit, err)
	}

	// Same graph, different eps: distinct key, fresh solve.
	opt := ecss.DefaultOptions()
	opt.Eps = 0.5
	j3, hit, err := s.Submit(g, opt)
	if err != nil || hit {
		t.Fatalf("changed-eps submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j3)

	st := s.Stats()
	if st.Solves != 2 || st.CacheHits != 1 {
		t.Fatalf("got %d solves / %d cache hits, want 2 / 1", st.Solves, st.CacheHits)
	}
	// Different options on the same graph reuse the pooled network.
	if st.Pool.Reuses < 1 {
		t.Fatalf("network pool never reused (stats: %+v)", st.Pool)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	started := make(chan string, 4)
	gate := make(chan struct{})
	s.testJobStart = func(j *Job) {
		started <- j.ID()
		<-gate
	}
	defer func() {
		close(gate)
		drain(t, s)
	}()

	j1, _, err := s.Submit(testGraph(t, 3), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds j1, so the queue buffer is empty again.
	if id := <-started; id != j1.ID() {
		t.Fatalf("worker started %s, want %s", id, j1.ID())
	}
	if _, _, err := s.Submit(testGraph(t, 4), ecss.DefaultOptions()); err != nil {
		t.Fatalf("queueing submit rejected: %v", err)
	}
	_, _, err = s.Submit(testGraph(t, 5), ecss.DefaultOptions())
	if err != ErrQueueFull {
		t.Fatalf("got err %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.RejectedFull != 1 {
		t.Fatalf("RejectedFull = %d, want 1", st.RejectedFull)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	tiny := graph.New(2)
	tiny.MustAddEdge(0, 1, 1)
	if _, _, err := s.Submit(tiny, ecss.DefaultOptions()); err == nil {
		t.Fatal("2-vertex graph admitted")
	}
	bad := ecss.DefaultOptions()
	bad.Eps = 0
	if _, _, err := s.Submit(testGraph(t, 6), bad); err == nil {
		t.Fatal("eps=0 admitted")
	}
	root := ecss.DefaultOptions()
	root.Root = 999
	if _, _, err := s.Submit(testGraph(t, 6), root); err == nil {
		t.Fatal("out-of-range root admitted")
	}
}

func TestFailedJobReported(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	// Connected but bridged: admission passes, the solve reports ErrNot2EC.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(2, 3, 1)
	j, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j)
	snap := s.snapshot(j)
	if snap.Status != StatusFailed || snap.Error == "" {
		t.Fatalf("got status %s error %q, want failed with message", snap.Status, snap.Error)
	}
	// Failures are not cached: resubmitting solves again.
	j2, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("resubmit after failure: hit=%v err=%v", hit, err)
	}
	waitJob(t, j2)
	if st := s.Stats(); st.Solves != 2 || st.Failed != 2 {
		t.Fatalf("got %d solves / %d failed, want 2 / 2", st.Solves, st.Failed)
	}
}

func TestProgressPhasesObserved(t *testing.T) {
	s := New(Config{Workers: 1})
	gate := make(chan struct{})
	release := sync.OnceFunc(func() { close(gate) })
	s.testJobStart = func(*Job) { <-gate }
	defer drain(t, s)

	j, _, err := s.Submit(testGraph(t, 7), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if snap := s.snapshot(j); snap.Status != StatusQueued || snap.Phase != "queued" {
		t.Fatalf("pre-run snapshot: %+v", snap)
	}
	release()
	waitJob(t, j)
	snap, ok := s.JobInfo(j.ID())
	if !ok {
		t.Fatal("finished job not addressable")
	}
	if snap.Status != StatusDone || len(snap.Result) == 0 || snap.ElapsedMS < 0 {
		t.Fatalf("terminal snapshot: %+v", snap)
	}
}

func TestDrainFinishesQueuedAndRejectsNew(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, _, err := s.Submit(testGraph(t, int64(10+i)), ecss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not finished after drain", j.ID())
		}
		if snap := s.snapshot(j); snap.Status != StatusDone {
			t.Fatalf("job %s status %s after drain", j.ID(), snap.Status)
		}
	}
	if _, _, err := s.Submit(testGraph(t, 99), ecss.DefaultOptions()); err != ErrDraining {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	if st := s.Stats(); st.Pool.Idle != 0 {
		t.Fatalf("pool still holds %d idle networks after drain", st.Pool.Idle)
	}
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil && err.Error() != "service: already draining" {
		t.Fatalf("drain: %v", err)
	}
}

func TestNetworkPoolReuseAndEviction(t *testing.T) {
	p := NewNetworkPool(2)
	mk := func(seed int64) (*graph.Graph, [32]byte) {
		g, err := graph.ByFamily("ring", 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g, g.Hash()
	}
	g1, h1 := mk(1)
	n1 := p.Get(h1, g1)
	p.Put(h1, n1)
	if got := p.Get(h1, g1); got != n1 {
		t.Fatal("pool did not return the idle network for a matching hash")
	}
	p.Put(h1, n1)

	g2, h2 := mk(2)
	g3, h3 := mk(3)
	p.Put(h2, p.Get(h2, g2))
	p.Put(h3, p.Get(h3, g3)) // capacity 2: evicts the n1 entry
	st := p.Stats()
	if st.Creates != 3 || st.Reuses != 1 || st.Evictions != 1 || st.Idle != 2 {
		t.Fatalf("pool stats %+v, want creates=3 reuses=1 evictions=1 idle=2", st)
	}
	if got := p.Get(h1, g1); got == n1 {
		t.Fatal("evicted network returned from pool")
	}
	p.Close()
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("pool holds %d idle networks after Close", st.Idle)
	}
}

func TestJobCacheLRU(t *testing.T) {
	c := newJobCache(2)
	mkKey := func(b byte) Key { var k Key; k[0] = b; return k }
	j1, j2, j3 := &Job{id: "a"}, &Job{id: "b"}, &Job{id: "c"}
	if ev := c.put(mkKey(1), j1); ev != nil {
		t.Fatal("unexpected eviction")
	}
	if ev := c.put(mkKey(2), j2); ev != nil {
		t.Fatal("unexpected eviction")
	}
	if got, ok := c.get(mkKey(1)); !ok || got != j1 {
		t.Fatal("missing entry 1")
	}
	// 1 is now most-recent; inserting 3 evicts 2.
	if ev := c.put(mkKey(3), j3); ev != j2 {
		t.Fatalf("evicted %v, want j2", ev)
	}
	if _, ok := c.get(mkKey(2)); ok {
		t.Fatal("evicted entry still present")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
}
