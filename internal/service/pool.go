package service

import (
	"slices"
	"sync"

	"twoecss/internal/congest"
	"twoecss/internal/graph"
)

// NetworkPool keeps idle congest.Networks keyed by the canonical hash of
// their graph, so repeated solves of the same topology reuse a warm engine
// — scratch buffers sized to the instance and the persistent worker-pool
// goroutines behind Network.Close (DESIGN.md §6.3) — instead of rebuilding
// them per job. Get hands out exclusive ownership of a network; Put returns
// it. Idle capacity is bounded: Put beyond capacity evicts (and Closes) the
// least-recently returned network. All methods are safe for concurrent use.
type NetworkPool struct {
	mu    sync.Mutex
	capN  int
	idle  []poolEntry // LRU order: index 0 is the eviction candidate
	stats NetworkPoolStats
	done  bool
}

type poolEntry struct {
	key [32]byte
	net *congest.Network
}

// NetworkPoolStats counts pool traffic for the service stats endpoint.
type NetworkPoolStats struct {
	Creates   int64 `json:"creates"`
	Reuses    int64 `json:"reuses"`
	Evictions int64 `json:"evictions"`
	Idle      int   `json:"idle"`
}

// NewNetworkPool returns a pool holding at most capN idle networks
// (capN <= 0 disables pooling: every Put closes the network).
func NewNetworkPool(capN int) *NetworkPool {
	return &NetworkPool{capN: capN}
}

// Get returns a network for a graph whose Hash() is key, reusing an idle
// structurally identical one when available and building a fresh network
// over g otherwise. The caller has exclusive use of the returned network
// until it calls Put. Note a reused network serves g's twin, not g itself:
// consumers must treat results in a representation-independent way (the
// service's canonical wire encoding does).
func (p *NetworkPool) Get(key [32]byte, g *graph.Graph) *congest.Network {
	p.mu.Lock()
	for i := len(p.idle) - 1; i >= 0; i-- {
		if p.idle[i].key == key {
			net := p.idle[i].net
			p.idle = slices.Delete(p.idle, i, i+1)
			p.stats.Reuses++
			p.mu.Unlock()
			return net
		}
	}
	p.stats.Creates++
	p.mu.Unlock()
	return congest.NewNetwork(g)
}

// Put returns a network obtained from Get. If the pool is full or closed
// the network (or the evicted oldest idle one) is Closed.
func (p *NetworkPool) Put(key [32]byte, net *congest.Network) {
	var evict *congest.Network
	p.mu.Lock()
	switch {
	case p.done || p.capN <= 0:
		evict = net
	default:
		if len(p.idle) >= p.capN {
			evict = p.idle[0].net
			p.idle = slices.Delete(p.idle, 0, 1)
			p.stats.Evictions++
		}
		p.idle = append(p.idle, poolEntry{key: key, net: net})
	}
	p.mu.Unlock()
	if evict != nil {
		evict.Close()
	}
}

// Stats returns a snapshot of the pool counters.
func (p *NetworkPool) Stats() NetworkPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Idle = len(p.idle)
	return st
}

// Close closes every idle network and makes future Puts close immediately.
// Networks currently checked out are closed by their eventual Put.
func (p *NetworkPool) Close() {
	p.mu.Lock()
	p.done = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, e := range idle {
		e.net.Close()
	}
}
