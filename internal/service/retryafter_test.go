package service

import (
	"testing"
	"time"
)

// The Retry-After hint is contract-pinned: 429/503 responses carry it, so a
// rejected client can self-pace. These tests exercise the estimator in
// isolation by setting the EWMA and queue length directly (both are plain
// fields under s.mu, fed by runJob / enqueueLocked in production).

func hintWith(t *testing.T, workers int, ewmaSolve time.Duration, qlen int) int {
	t.Helper()
	s := New(Config{Workers: workers, QueueDepth: qlen + 1})
	defer drain(t, s)
	s.mu.Lock()
	s.ewmaSolveNs = float64(ewmaSolve)
	s.qlen = qlen
	s.mu.Unlock()
	return s.RetryAfterHint()
}

func TestRetryAfterHintBounds(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		ewma    time.Duration
		qlen    int
		min     int
		max     int
	}{
		// No solve observed yet: the hint must still be a positive second.
		{"cold", 2, 0, 0, 1, 1},
		// Sub-second solves round up, never down to zero.
		{"fast-solves", 4, 3 * time.Millisecond, 2, 1, 1},
		// One queue wave of 2s solves: ceil to at least 2s.
		{"one-wave", 2, 2 * time.Second, 1, 2, 3},
		// Pathological backlog: clamped to the 60s ceiling, not hours.
		{"saturated", 1, 10 * time.Second, 1000, 60, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hintWith(t, tc.workers, tc.ewma, tc.qlen)
			if got < 1 {
				t.Fatalf("hint %d is not positive", got)
			}
			if got < tc.min || got > tc.max {
				t.Fatalf("hint %d outside [%d,%d]", got, tc.min, tc.max)
			}
		})
	}
}

// TestRetryAfterHintGrowsWithPressure asserts monotone growth in the queue
// length at a fixed solve speed: more queued waves ahead of you means a
// longer suggested wait, up to the clamp.
func TestRetryAfterHintGrowsWithPressure(t *testing.T) {
	const workers = 2
	const ewma = 1500 * time.Millisecond
	prev := 0
	for _, qlen := range []int{0, 4, 16, 64, 256} {
		got := hintWith(t, workers, ewma, qlen)
		if got < prev {
			t.Fatalf("hint shrank under pressure: qlen=%d gave %d, previous %d", qlen, got, prev)
		}
		if got > 60 {
			t.Fatalf("hint %d exceeds the 60s ceiling at qlen=%d", got, qlen)
		}
		prev = got
	}
	if prev <= hintWith(t, workers, ewma, 0) {
		t.Fatalf("sustained pressure never grew the hint (final %d)", prev)
	}
}
