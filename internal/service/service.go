// Package service implements the long-running 2-ECSS solver service that
// fronts the paper's pipeline with a serving layer: a bounded job queue
// with admission control, a configurable worker pool executing solves on
// pooled congest Networks (NetworkPool), an in-flight coalescing table and
// a content-addressed LRU result cache keyed by the canonical graph digest
// plus solve options, per-job status/progress, and graceful drain on
// shutdown. cmd/ecssd exposes it over an HTTP JSON API (http.go) and
// cmd/loadgen drives it; DESIGN.md §7 describes the architecture.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/store"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the jobs admitted but not yet picked up by a
	// worker; Submit rejects with ErrQueueFull beyond it (default 64).
	QueueDepth int
	// Workers is the number of solver goroutines (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the content-addressed result cache (0 selects
	// the default 512; negative disables caching — results then live only
	// on their job).
	CacheEntries int
	// PoolEntries bounds the idle NetworkPool (default Workers).
	PoolEntries int
	// NetWorkers is the engine worker-pool size used per solve (default 1:
	// parallelism lives at the job level, matching the experiment harness
	// convention).
	NetWorkers int
	// Store, when non-nil, is the disk-backed result store the in-memory
	// cache writes through to. On New the most recently used entries
	// pre-warm the memory cache (up to CacheEntries); memory-cache misses
	// fall back to the store before solving. The service takes ownership:
	// Drain flushes pending writes and closes it.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.PoolEntries == 0 {
		c.PoolEntries = c.Workers
	}
	if c.NetWorkers <= 0 {
		c.NetWorkers = 1
	}
	return c
}

// Status is a job lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is one admitted solve. All fields are guarded by the owning
// Service's mutex; external readers use Service.JobInfo / the Done channel.
type Job struct {
	id    string
	key   Key
	ghash [32]byte

	g   *graph.Graph // released once the solve starts
	opt ecss.Options

	status   Status
	phase    string
	created  time.Time
	started  time.Time
	finished time.Time
	// resultJSON is the canonical wire encoding, marshaled once and shared
	// by every requester. The *ecss.Result itself is not retained: its edge
	// ids are relative to the (possibly pooled-twin) graph the solve ran
	// on, not necessarily the submitter's.
	resultJSON []byte
	err        error
	done       chan struct{}
}

// ID returns the job's stable identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state (done or failed).
// Jobs returned from a cache or coalescing hit may already be closed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Stats is a snapshot of the service counters.
type Stats struct {
	// Submitted counts every Submit call that passed input validation,
	// including ones rejected by a full queue or a draining service.
	Submitted int64 `json:"submitted"`
	// Completed and Failed count terminal jobs; Solves counts pipeline
	// executions (Completed + Failed; every other submission was served
	// without solving).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Solves    int64 `json:"solves"`
	// CacheHits counts submissions served from the in-memory result cache
	// (including entries pre-warmed from the store); Coalesced counts
	// submissions attached to an identical in-flight job; StoreHits counts
	// submissions served by reading the disk store on a memory-cache miss.
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	StoreHits int64 `json:"store_hits"`
	// RejectedFull / RejectedDraining count admission failures.
	RejectedFull     int64 `json:"rejected_full"`
	RejectedDraining int64 `json:"rejected_draining"`

	QueueDepth   int              `json:"queue_depth"`
	Inflight     int              `json:"inflight"`
	CacheEntries int              `json:"cache_entries"`
	Pool         NetworkPoolStats `json:"pool"`
	// Store mirrors the disk store's counters; nil when the service runs
	// without persistence.
	Store *store.Stats `json:"store,omitempty"`
}

// Hits is the total number of submissions served without a solve.
func (s Stats) Hits() int64 { return s.CacheHits + s.Coalesced + s.StoreHits }

var (
	// ErrQueueFull reports that admission failed because the queue is at
	// QueueDepth.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports that the service no longer accepts jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// retainFinished bounds how many terminal jobs that fell out of the result
// cache (failures, evictions) stay addressable via JobInfo.
const retainFinished = 256

// Service is the solver service. Create with New, stop with Drain.
type Service struct {
	cfg   Config
	pool  *NetworkPool
	store *store.Store // nil: no persistence

	mu       sync.Mutex
	seq      int64
	jobs     map[string]*Job
	inflight map[Key]*Job
	cache    *jobCache
	retired  []string // FIFO of terminal, uncached job ids still in jobs
	stats    Stats
	draining bool

	queue chan *Job
	wg    sync.WaitGroup

	// testJobStart, when set (tests only), runs at the top of every worker
	// job execution, before the solve.
	testJobStart func(*Job)
}

// New starts a service with cfg's sizing and its worker goroutines. With a
// configured Store, the memory cache is pre-warmed from the store's most
// recently used entries so a restart resumes at a warm hit ratio instead of
// a cold one.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		pool:     NewNetworkPool(cfg.PoolEntries),
		store:    cfg.Store,
		jobs:     make(map[string]*Job),
		inflight: make(map[Key]*Job),
		cache:    newJobCache(cfg.CacheEntries),
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	if s.store != nil && cfg.CacheEntries > 0 {
		// Recent returns MRU-first; insert oldest-first so the memory
		// cache's LRU order mirrors the store's.
		warm := s.store.Recent(cfg.CacheEntries)
		s.mu.Lock()
		for i := len(warm) - 1; i >= 0; i-- {
			e := warm[i]
			s.adoptStoredLocked(Key(e.Key), e.GraphHash, e.Payload)
		}
		s.mu.Unlock()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// adoptStoredLocked wraps a store payload in a terminal job — addressable
// via JobInfo, served from the memory cache — without a solve. Caller holds
// s.mu.
func (s *Service) adoptStoredLocked(key Key, ghash [32]byte, payload []byte) *Job {
	s.seq++
	now := time.Now()
	j := &Job{
		id:         fmt.Sprintf("j%08d", s.seq),
		key:        key,
		ghash:      ghash,
		status:     StatusDone,
		created:    now,
		started:    now,
		finished:   now,
		resultJSON: payload,
		done:       closedDone,
	}
	s.jobs[j.id] = j
	if evicted := s.cache.put(key, j); evicted != nil {
		s.retire(evicted)
	}
	return j
}

// closedDone is the pre-closed Done channel shared by jobs that were never
// queued (store adoptions): they are born terminal.
var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Submit admits a solve of g under opt and returns the job serving it plus
// whether it was a hit (served from the result cache or coalesced onto an
// identical in-flight job — in both cases the returned job may belong to an
// earlier submission). The caller must not mutate g after Submit. Identity
// is content-addressed: structurally identical graphs dedupe regardless of
// how or in what edge order they were built.
func (s *Service) Submit(g *graph.Graph, opt ecss.Options) (*Job, bool, error) {
	if opt.Eps <= 0 {
		return nil, false, fmt.Errorf("service: eps must be positive, got %g", opt.Eps)
	}
	if g == nil || g.N < 3 {
		return nil, false, errors.New("service: need a graph with at least 3 vertices")
	}
	if opt.Root < 0 || opt.Root >= g.N {
		return nil, false, fmt.Errorf("service: root %d out of range [0,%d)", opt.Root, g.N)
	}
	opt.Workers = s.cfg.NetWorkers
	opt.Progress = nil
	ghash := g.Hash()
	key := keyFor(ghash, opt)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted++
	if s.draining {
		s.stats.RejectedDraining++
		return nil, false, ErrDraining
	}
	if j, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		return j, true, nil
	}
	if j, ok := s.cache.get(key); ok {
		s.stats.CacheHits++
		return j, true, nil
	}
	if s.store != nil {
		// The store lookup touches disk; release the admission mutex
		// around it so concurrent Submits, Stats, and progress callbacks
		// are never serialized behind a file read, then re-run the
		// admission checks — the world may have moved meanwhile.
		s.mu.Unlock()
		payload, found := s.store.Get([32]byte(key))
		s.mu.Lock()
		if s.draining {
			s.stats.RejectedDraining++
			return nil, false, ErrDraining
		}
		if j, ok := s.inflight[key]; ok {
			s.stats.Coalesced++
			return j, true, nil
		}
		if j, ok := s.cache.get(key); ok {
			s.stats.CacheHits++
			return j, true, nil
		}
		if found {
			s.stats.StoreHits++
			return s.adoptStoredLocked(key, ghash, payload), true, nil
		}
	}
	s.seq++
	j := &Job{
		id:      fmt.Sprintf("j%08d", s.seq),
		key:     key,
		ghash:   ghash,
		g:       g,
		opt:     opt,
		status:  StatusQueued,
		phase:   "queued",
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.stats.RejectedFull++
		return nil, false, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	return j, false, nil
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Service) runJob(j *Job) {
	if hook := s.testJobStart; hook != nil {
		hook(j)
	}
	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	g, opt := j.g, j.opt
	s.mu.Unlock()

	net := s.pool.Get(j.ghash, g)
	net.ResetAccounting()
	opt.Progress = func(stage string) {
		s.mu.Lock()
		j.phase = stage
		s.mu.Unlock()
	}
	res, err := ecss.SolveOn(net, opt)
	if err == nil {
		// Integrity gate: never cache (or serve) an unverified result.
		err = ecss.Verify(net.G, res)
	}
	var raw []byte
	if err == nil {
		raw, err = json.Marshal(wireResult(net.G, res))
	}
	s.pool.Put(j.ghash, net)
	if err == nil && s.store != nil {
		// Write-through outside s.mu: the store's writer queue can apply
		// backpressure, which must stall only this solver worker, not
		// admission. raw is immutable from here on.
		_ = s.store.Put([32]byte(j.key), j.ghash, optionsBlob(opt), raw)
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.g = nil
	j.phase = ""
	delete(s.inflight, j.key)
	s.stats.Solves++
	if err != nil {
		j.status, j.err = StatusFailed, err
		s.stats.Failed++
		s.retire(j)
	} else {
		j.status, j.resultJSON = StatusDone, raw
		s.stats.Completed++
		if evicted := s.cache.put(j.key, j); evicted != nil {
			s.retire(evicted)
		}
	}
	s.mu.Unlock()
	close(j.done)
}

// retire keeps a terminal, uncached job addressable for a while, dropping
// the oldest such job beyond the retention bound. Caller holds s.mu.
func (s *Service) retire(j *Job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > retainFinished {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = len(s.queue)
	st.Inflight = len(s.inflight)
	st.CacheEntries = s.cache.len()
	st.Pool = s.pool.Stats()
	s.mu.Unlock()
	// The store mutex is held across disk reads (Get/Recent), so it is
	// taken only after the admission mutex is released: a stats poll must
	// never serialize Submits behind file I/O.
	if s.store != nil {
		sst := s.store.Stats()
		st.Store = &sst
	}
	return st
}

// Drain stops admission, lets the workers finish every queued job, closes
// the network pool, and — when a store is configured — flushes its pending
// writes to disk and closes it, leaving a replayable index. It returns nil
// on a clean drain or ctx.Err() if the context expires first (workers then
// keep draining in the background; pool and store are closed once they
// finish). Drain is one-shot: callers coordinate so it runs once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	s.mu.Unlock()
	// Submit holds the mutex across its draining check and queue send, so
	// after the flag flip no new job can reach the channel: safe to close.
	close(s.queue)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.pool.Close()
		if s.store != nil {
			// Every worker has returned, so every write-through Put is
			// already enqueued; Close flushes them durably in FIFO order.
			_ = s.store.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
