// Package service implements the long-running 2-ECSS solver service that
// fronts the paper's pipeline with a serving layer: a bounded priority job
// queue with deadline- and class-aware admission control (admission.go), a
// configurable worker pool executing solves on pooled congest Networks
// (NetworkPool) with panic recovery and bounded retry, an in-flight
// coalescing table and a content-addressed LRU result cache keyed by the
// canonical graph digest plus solve options, per-job status/progress, and
// graceful drain on shutdown. cmd/ecssd exposes it over an HTTP JSON API
// (http.go) and cmd/loadgen drives it; DESIGN.md §7 and §9 describe the
// architecture and the fault model.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"twoecss/internal/congest"
	"twoecss/internal/ecss"
	"twoecss/internal/faults"
	"twoecss/internal/graph"
	"twoecss/internal/obs"
	"twoecss/internal/store"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the jobs admitted but not yet picked up by a
	// worker, across all priority classes; beyond it the shed policy runs
	// and Submit may reject with ErrQueueFull (default 64).
	QueueDepth int
	// Workers is the number of solver goroutines (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the content-addressed result cache (0 selects
	// the default 512; negative disables caching — results then live only
	// on their job).
	CacheEntries int
	// PoolEntries bounds the idle NetworkPool (default Workers).
	PoolEntries int
	// NetWorkers is the engine worker-pool size used per solve (default 1:
	// parallelism lives at the job level, matching the experiment harness
	// convention).
	NetWorkers int
	// Store, when non-nil, is the disk-backed result store the in-memory
	// cache writes through to. On New the most recently used entries
	// pre-warm the memory cache (up to CacheEntries); memory-cache misses
	// fall back to the store before solving. The service takes ownership:
	// Drain flushes pending writes and closes it.
	Store *store.Store
	// Obs is the process observability hub the service publishes lifecycle
	// events and metrics into (nil: the service creates a private one, so
	// events and /metrics always work). Share one Obs between the store and
	// the service so a single firehose carries both subsystems.
	Obs *obs.Obs
	// ProfileRounds bounds the per-job engine round profile retained next to
	// the trace and served at GET /v1/jobs/{id}/profile (default 512 samples;
	// negative disables profiling). Long solves are thinned by stride, so the
	// profile is an evenly spaced timeline whatever the round count.
	ProfileRounds int
	// SLOLatency is the solve-latency SLO threshold: a solve counting as
	// "good" must reach a terminal state within it (default 2s). The
	// objectives themselves are fixed (99% latency, 99.9% availability);
	// burn rates are exported per obs.DefaultSLOWindows.
	SLOLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.PoolEntries == 0 {
		c.PoolEntries = c.Workers
	}
	if c.NetWorkers <= 0 {
		c.NetWorkers = 1
	}
	if c.ProfileRounds == 0 {
		c.ProfileRounds = 512
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 2 * time.Second
	}
	return c
}

// Status is a job lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is one admitted solve. All fields are guarded by the owning
// Service's mutex; external readers use Service.JobInfo / the Done channel.
type Job struct {
	id    string
	key   Key
	ghash [32]byte
	// req is the request id of the submission that created the job (minted
	// at admission or propagated from the router); stamped on every event
	// the job emits so a trace reads as one client request end to end.
	req string

	g   *graph.Graph // released once the solve starts
	opt ecss.Options

	priority Priority
	deadline time.Time // zero: none
	// watchers counts cancelable submitters still waiting; autocancel is
	// cleared forever once any non-cancelable submission attaches (see
	// Admit.Cancelable and Service.Abandon).
	watchers   int
	autocancel bool

	status   Status
	phase    string
	created  time.Time
	started  time.Time
	finished time.Time
	// resultJSON is the canonical wire encoding, marshaled once and shared
	// by every requester. The *ecss.Result itself is not retained: its edge
	// ids are relative to the (possibly pooled-twin) graph the solve ran
	// on, not necessarily the submitter's.
	resultJSON []byte
	// view pins the store-backed bytes resultJSON aliases on jobs adopted
	// from the disk store (zero for solved jobs, whose bytes are private).
	// The job record owns the pin: it is released — and resultJSON cleared
	// — when the job leaves the jobs table (retire overflow). Handlers that
	// write the bytes after dropping s.mu take their own Retain.
	view store.View
	err  error
	done chan struct{}
	// profile is the engine round profile of the job's solve (nil while the
	// job is queued or running, for jobs served without a solve, and with
	// profiling disabled). Retained alongside the trace until the job record
	// itself is dropped.
	profile *JobProfile
}

// ID returns the job's stable identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state (done or failed).
// Jobs returned from a cache or coalescing hit may already be closed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Stats is a snapshot of the service counters.
type Stats struct {
	// Submitted counts every Submit call that passed input validation,
	// including ones rejected by a full queue or a draining service.
	Submitted int64 `json:"submitted"`
	// Completed and Failed count jobs whose solve reached a terminal state;
	// Solves counts jobs that executed the pipeline (Completed + Failed —
	// a job retried after a recovered panic still counts once; Retries
	// tallies the extra attempts). Jobs shed, expired, or canceled while
	// queued appear in Classes, not here.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Solves    int64 `json:"solves"`
	// Retries counts solve attempts re-run after a retryable failure
	// (recovered panic or injected fault); PanicsRecovered counts solver
	// panics converted into per-job errors instead of killing the worker.
	Retries         int64 `json:"retries"`
	PanicsRecovered int64 `json:"panics_recovered"`
	// CacheHits counts submissions served from the in-memory result cache
	// (including entries pre-warmed from the store); Coalesced counts
	// submissions attached to an identical in-flight job; StoreHits counts
	// submissions served by reading the disk store on a memory-cache miss.
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	StoreHits int64 `json:"store_hits"`
	// RejectedFull / RejectedDraining count admission failures.
	RejectedFull     int64 `json:"rejected_full"`
	RejectedDraining int64 `json:"rejected_draining"`

	QueueDepth   int `json:"queue_depth"`
	Inflight     int `json:"inflight"`
	CacheEntries int `json:"cache_entries"`
	// Classes breaks queue traffic down per priority class, keyed by
	// Priority.String().
	Classes map[string]ClassStats `json:"classes"`
	Pool    NetworkPoolStats      `json:"pool"`
	// Store mirrors the disk store's counters; nil when the service runs
	// without persistence.
	Store *store.Stats `json:"store,omitempty"`
	// Faults mirrors the armed fault-injection plan's per-point counters;
	// nil when no plan is armed.
	Faults map[string]faults.PointStats `json:"faults,omitempty"`
	// Engine aggregates the congest engine's cost counters — the paper's own
	// round/message measures — across every solve attempt this process ran.
	Engine EngineStats `json:"engine"`
}

// EngineStats is the process-lifetime engine cost ledger. The router sums
// these across shards (shard-tagged) from each shard's /v1/stats.
type EngineStats struct {
	SimulatedRounds int64 `json:"simulated_rounds"`
	ChargedRounds   int64 `json:"charged_rounds"`
	Messages        int64 `json:"messages"`
	Words           int64 `json:"words"`
	// ProfiledSolves counts solves that retained a round profile.
	ProfiledSolves int64 `json:"profiled_solves"`
}

// Hits is the total number of submissions served without a solve.
func (s Stats) Hits() int64 { return s.CacheHits + s.Coalesced + s.StoreHits }

var (
	// ErrQueueFull reports that admission failed because the queue is at
	// QueueDepth and the shed policy found no expired or lower-priority
	// queued job to drop.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports that the service no longer accepts jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// retainFinished bounds how many terminal jobs that fell out of the result
// cache (failures, evictions, shed jobs) stay addressable via JobInfo.
const retainFinished = 256

// Solve retry policy: one retry after a retryable failure (recovered panic
// or injected fault), with exponential backoff from retryBackoffBase —
// bounded on both axes so a crashing solver degrades to fast per-job errors,
// never a retry storm.
const (
	maxSolveRetries  = 1
	retryBackoffBase = 25 * time.Millisecond
)

// Service is the solver service. Create with New, stop with Drain.
type Service struct {
	cfg   Config
	pool  *NetworkPool
	store *store.Store // nil: no persistence
	// o is the observability hub (never nil after New); solveHist is the
	// pickup-to-terminal solve latency histogram, created once at startup;
	// sloLatency and sloAvail are the declared solve SLOs (observe.go).
	o          *obs.Obs
	solveHist  *obs.Histogram
	sloLatency *obs.SLO
	sloAvail   *obs.SLO

	mu       sync.Mutex
	cond     *sync.Cond // signaled on enqueue and at drain
	seq      int64
	jobs     map[string]*Job
	inflight map[Key]*Job
	cache    *jobCache
	retired  []string // FIFO of terminal, uncached job ids still in jobs
	stats    Stats
	classes  [numPriorities]ClassStats
	// queues holds the admitted-not-yet-running jobs, one FIFO per
	// priority class; qlen is their total length, bounded by QueueDepth.
	queues [numPriorities][]*Job
	qlen   int
	// ewmaSolveNs tracks the recent average solve wall time, feeding the
	// Retry-After hint.
	ewmaSolveNs float64
	draining    bool

	wg sync.WaitGroup

	// testJobStart, when set (tests only), runs at the top of every worker
	// job execution, before the solve.
	testJobStart func(*Job)
}

// New starts a service with cfg's sizing and its worker goroutines. With a
// configured Store, the memory cache is pre-warmed from the store's most
// recently used entries so a restart resumes at a warm hit ratio instead of
// a cold one.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		pool:     NewNetworkPool(cfg.PoolEntries),
		store:    cfg.Store,
		o:        cfg.Obs,
		jobs:     make(map[string]*Job),
		inflight: make(map[Key]*Job),
		cache:    newJobCache(cfg.CacheEntries),
	}
	if s.o == nil {
		s.o = obs.New()
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerMetrics()
	if s.store != nil && cfg.CacheEntries > 0 {
		// Recent returns MRU-first; insert oldest-first so the memory
		// cache's LRU order mirrors the store's.
		warm := s.store.Recent(cfg.CacheEntries)
		s.mu.Lock()
		for i := len(warm) - 1; i >= 0; i-- {
			e := warm[i]
			s.adoptStoredLocked(Key(e.Key), e.GraphHash, e.View, "")
		}
		s.mu.Unlock()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// adoptStoredLocked wraps a pinned store view in a terminal job —
// addressable via JobInfo, served from the memory cache — without a solve
// and, on the mmap path, without copying the payload: the job takes
// ownership of the view's pin. req is the request id of the triggering
// submission ("" for pre-warm adoption at startup). Caller holds s.mu.
func (s *Service) adoptStoredLocked(key Key, ghash [32]byte, v store.View, req string) *Job {
	s.seq++
	now := time.Now()
	j := &Job{
		id:         fmt.Sprintf("j%08d", s.seq),
		key:        key,
		ghash:      ghash,
		req:        req,
		status:     StatusDone,
		created:    now,
		started:    now,
		finished:   now,
		resultJSON: v.Bytes(),
		view:       v,
		done:       closedDone,
	}
	s.jobs[j.id] = j
	if evicted := s.cache.put(key, j); evicted != nil {
		s.retire(evicted)
	}
	// The job is born terminal: one cached event is its whole trace, so a
	// per-job stream replays it and closes immediately.
	s.emit(obs.Event{Type: obs.EvJobCached, Job: j.id, Req: req, Key: keyPrefix(key), Terminal: true})
	return j
}

// closedDone is the pre-closed Done channel shared by jobs that were never
// queued (store adoptions): they are born terminal.
var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// Draining reports whether Drain has begun: the service still finishes
// admitted work but rejects new submissions.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit admits a solve of g under opt at the default batch priority with
// no deadline. See SubmitWith.
func (s *Service) Submit(g *graph.Graph, opt ecss.Options) (*Job, bool, error) {
	return s.SubmitWith(g, opt, Admit{Priority: PriorityBatch})
}

// SubmitWith admits a solve of g under opt with adm's scheduling class and
// deadline, returning the job serving it plus whether it was a hit (served
// from the result cache or coalesced onto an identical in-flight job — in
// both cases the returned job may belong to an earlier submission, possibly
// of a different class). The caller must not mutate g after SubmitWith.
// Identity is content-addressed: structurally identical graphs dedupe
// regardless of how or in what edge order they were built.
//
// When the queue is at QueueDepth, admission sheds by policy before
// rejecting: expired queued jobs are dropped first (any class), then the
// youngest queued job of a class below adm.Priority; only if neither frees
// a slot does SubmitWith return ErrQueueFull. A deadline already in the
// past fails fast with ErrDeadlineExceeded (unless the result is on hand:
// cache and coalescing hits serve instantly and ignore the deadline).
func (s *Service) SubmitWith(g *graph.Graph, opt ecss.Options, adm Admit) (*Job, bool, error) {
	if opt.Eps <= 0 {
		return nil, false, fmt.Errorf("service: eps must be positive, got %g", opt.Eps)
	}
	if g == nil || g.N < 3 {
		return nil, false, errors.New("service: need a graph with at least 3 vertices")
	}
	if opt.Root < 0 || opt.Root >= g.N {
		return nil, false, fmt.Errorf("service: root %d out of range [0,%d)", opt.Root, g.N)
	}
	if adm.Priority < 0 || adm.Priority >= numPriorities {
		return nil, false, fmt.Errorf("service: priority %d out of range", adm.Priority)
	}
	opt.Workers = s.cfg.NetWorkers
	opt.Progress = nil
	opt.StageStats = nil
	ghash := g.Hash()
	key := keyFor(ghash, opt)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted++
	s.classes[adm.Priority].Submitted++
	if s.draining {
		s.stats.RejectedDraining++
		return nil, false, ErrDraining
	}
	if j, ok := s.inflight[key]; ok {
		s.stats.Coalesced++
		s.attachLocked(j, adm)
		return j, true, nil
	}
	if j, ok := s.cache.get(key); ok {
		s.stats.CacheHits++
		s.emit(obs.Event{Type: obs.EvJobCached, Job: j.id, Req: adm.RequestID, Key: keyPrefix(key), Terminal: true})
		return j, true, nil
	}
	if s.store != nil {
		// The store lookup touches disk; release the admission mutex
		// around it so concurrent Submits, Stats, and progress callbacks
		// are never serialized behind a file read, then re-run the
		// admission checks — the world may have moved meanwhile. A hit
		// returns a pinned zero-copy view; every path that does not adopt
		// it must release the pin.
		s.mu.Unlock()
		v, found := s.store.GetView([32]byte(key))
		s.mu.Lock()
		if s.draining {
			v.Release()
			s.stats.RejectedDraining++
			return nil, false, ErrDraining
		}
		if j, ok := s.inflight[key]; ok {
			v.Release()
			s.stats.Coalesced++
			s.attachLocked(j, adm)
			return j, true, nil
		}
		if j, ok := s.cache.get(key); ok {
			v.Release()
			s.stats.CacheHits++
			s.emit(obs.Event{Type: obs.EvJobCached, Job: j.id, Req: adm.RequestID, Key: keyPrefix(key), Terminal: true})
			return j, true, nil
		}
		if found {
			s.stats.StoreHits++
			return s.adoptStoredLocked(key, ghash, v, adm.RequestID), true, nil
		}
	}
	now := time.Now()
	if !adm.Deadline.IsZero() && !now.Before(adm.Deadline) {
		s.classes[adm.Priority].Expired++
		s.emit(obs.Event{Type: obs.EvJobExpired, Req: adm.RequestID, Class: adm.Priority.String(),
			Err: "dead on arrival: " + ErrDeadlineExceeded.Error(), Terminal: true})
		return nil, false, ErrDeadlineExceeded
	}
	if s.qlen >= s.cfg.QueueDepth {
		s.shedExpiredLocked(now)
	}
	if s.qlen >= s.cfg.QueueDepth && !s.shedForLocked(adm.Priority) {
		s.stats.RejectedFull++
		s.classes[adm.Priority].RejectedFull++
		return nil, false, ErrQueueFull
	}
	s.seq++
	j := &Job{
		id:         fmt.Sprintf("j%08d", s.seq),
		key:        key,
		ghash:      ghash,
		req:        adm.RequestID,
		g:          g,
		opt:        opt,
		priority:   adm.Priority,
		deadline:   adm.Deadline,
		autocancel: adm.Cancelable,
		status:     StatusQueued,
		phase:      "queued",
		created:    now,
		done:       make(chan struct{}),
	}
	if adm.Cancelable {
		j.watchers = 1
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	s.enqueueLocked(j)
	// Emitted under s.mu, which a worker needs to pop: job.admitted always
	// precedes the job's own job.started on the bus.
	s.emit(obs.Event{Type: obs.EvJobAdmitted, Job: j.id, Req: j.req, Class: adm.Priority.String(), Key: keyPrefix(key)})
	return j, false, nil
}

// attachLocked records a coalescing submitter's cancellation interest on an
// in-flight job: cancelable waiters are counted, and one non-cancelable
// submission pins the job against autocancel for good. Caller holds s.mu.
func (s *Service) attachLocked(j *Job, adm Admit) {
	s.emit(obs.Event{Type: obs.EvJobCoalesced, Job: j.id, Req: adm.RequestID, Class: adm.Priority.String()})
	if j.status != StatusQueued {
		return
	}
	if adm.Cancelable {
		j.watchers++
	} else {
		j.autocancel = false
	}
}

// worker pops jobs in priority order, failing expired ones without solving,
// until drain empties the queue.
func (s *Service) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		j := s.popLocked()
		if j == nil {
			if s.draining {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
			s.classes[j.priority].Expired++
			s.failDequeuedLocked(j, ErrDeadlineExceeded)
			continue
		}
		// Mark running while still holding the pop lock: Abandon and the
		// shed policy treat StatusQueued as "safe to drop", so a popped job
		// must never look queued once the lock is released.
		j.status = StatusRunning
		j.started = time.Now()
		wait := j.started.Sub(j.created)
		s.mu.Unlock()
		s.emit(obs.Event{Type: obs.EvJobStarted, Job: j.id, Req: j.req, Class: j.priority.String(),
			MS: float64(wait) / float64(time.Millisecond)})
		s.runJob(j)
		s.mu.Lock()
	}
}

func (s *Service) runJob(j *Job) {
	if hook := s.testJobStart; hook != nil {
		hook(j)
	}
	s.mu.Lock()
	g, opt := j.g, j.opt
	s.mu.Unlock()

	// Stage accounting is attempt-local and touched only by this goroutine:
	// Progress and StageStats are invoked synchronously from the solving
	// worker (per stage: StageStats(prev) then Progress(next)), so the
	// previous stage closes out at each transition — and after the attempt
	// returns — without a lock. The job.stage event fires at stage
	// completion, carrying the stage's wall time and buffered engine delta.
	var stageStart time.Time
	var stage string
	var stageCost congest.Stats
	var stages []StageCost
	var jobRounds, jobMsgs int64 // engine totals across attempts
	closeStage := func(now time.Time) {
		if stage == "" {
			return
		}
		d := now.Sub(stageStart)
		s.observeStage(stage, d, stageCost)
		stages = append(stages, StageCost{Stage: stage, Seconds: d.Seconds(),
			SimulatedRounds: stageCost.SimulatedRounds, ChargedRounds: stageCost.ChargedRounds,
			Messages: stageCost.Messages, Words: stageCost.Words})
		s.emit(obs.Event{Type: obs.EvJobStage, Job: j.id, Req: j.req, Stage: stage,
			MS:     float64(d) / float64(time.Millisecond),
			Rounds: stageCost.SimulatedRounds + stageCost.ChargedRounds, Msgs: stageCost.Messages})
		stage, stageCost = "", congest.Stats{}
	}
	opt.StageStats = func(st string, delta congest.Stats) {
		// Fires before the next stage's Progress call (and once more on
		// success for the final stage): buffer the delta for closeStage and
		// bill the process ledger. An aborted stage reports no delta and
		// closes out with zero cost.
		if st == stage {
			stageCost = delta
		}
		jobRounds += delta.SimulatedRounds + delta.ChargedRounds
		jobMsgs += delta.Messages
		s.mu.Lock()
		s.stats.Engine.SimulatedRounds += delta.SimulatedRounds
		s.stats.Engine.ChargedRounds += delta.ChargedRounds
		s.stats.Engine.Messages += delta.Messages
		s.stats.Engine.Words += delta.Words
		s.mu.Unlock()
	}
	opt.Progress = func(st string) {
		// Panic and delay modes apply here (a returned error has nowhere to
		// go mid-pipeline); a panic unwinds into solveOnce's recovery.
		_ = faults.Point("solve.stage")
		now := time.Now()
		closeStage(now)
		stage, stageStart = st, now
		s.mu.Lock()
		j.phase = st
		s.mu.Unlock()
	}

	// The round recorder is armed per attempt on the solve's pooled network
	// (solveOnce) and reset across retries, so the retained profile narrates
	// the attempt that produced the terminal state.
	var rec *congest.RoundRecorder
	if s.cfg.ProfileRounds > 0 {
		rec = congest.NewRoundRecorder(s.cfg.ProfileRounds, 1)
	}

	var raw []byte
	var err error
	backoff := retryBackoffBase
	for attempt := 0; ; attempt++ {
		stageStart = time.Now()
		if rec != nil {
			rec.Reset()
		}
		stages = stages[:0]
		raw, err = s.solveOnce(j, g, opt, rec)
		closeStage(time.Now())
		if err == nil || attempt >= maxSolveRetries || !retryable(err) {
			break
		}
		s.mu.Lock()
		s.stats.Retries++
		j.phase = "retry-backoff"
		s.mu.Unlock()
		s.emit(obs.Event{Type: obs.EvJobRetry, Job: j.id, Req: j.req, Err: err.Error()})
		time.Sleep(backoff)
		backoff *= 2
		if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
			err = fmt.Errorf("%w (after retryable failure: %v)", ErrDeadlineExceeded, err)
			break
		}
	}
	if err == nil && s.store != nil {
		// Write-through outside s.mu: the store's writer queue can apply
		// backpressure, which must stall only this solver worker, not
		// admission. raw is immutable from here on.
		_ = s.store.Put([32]byte(j.key), j.ghash, optionsBlob(j.opt), raw)
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.g = nil
	j.phase = ""
	delete(s.inflight, j.key)
	s.stats.Solves++
	if rec != nil && rec.Observed() > 0 {
		j.profile = buildProfile(rec, stages)
		s.stats.Engine.ProfiledSolves++
	}
	dur := float64(j.finished.Sub(j.started))
	if s.ewmaSolveNs == 0 {
		s.ewmaSolveNs = dur
	} else {
		s.ewmaSolveNs = 0.8*s.ewmaSolveNs + 0.2*dur
	}
	if err != nil {
		j.status, j.err = StatusFailed, err
		s.stats.Failed++
		s.retire(j)
	} else {
		j.status, j.resultJSON = StatusDone, raw
		s.stats.Completed++
		if evicted := s.cache.put(j.key, j); evicted != nil {
			s.retire(evicted)
		}
	}
	s.mu.Unlock()
	close(j.done)
	s.solveHist.Observe(dur / float64(time.Second))
	s.observeSolveCost(jobRounds, jobMsgs)
	s.sloAvail.Observe(err == nil)
	if err == nil {
		s.sloLatency.ObserveLatency(time.Duration(dur), s.cfg.SLOLatency)
	}
	typ := obs.EvJobDone
	var errStr string
	if err != nil {
		errStr = err.Error()
		typ = obs.EvJobFailed
		if errors.Is(err, ErrDeadlineExceeded) {
			typ = obs.EvJobExpired
		}
	}
	s.emit(obs.Event{Type: typ, Job: j.id, Req: j.req, Class: j.priority.String(), Err: errStr,
		MS: dur / float64(time.Millisecond), Rounds: jobRounds, Msgs: jobMsgs, Terminal: true})
}

// solveOnce runs one pipeline attempt on a pooled network, converting
// solver panics into errors. A network that panicked mid-solve is in an
// unknown state and is closed, never returned to the pool. rec, when
// non-nil, is armed as the network's round observer for the duration of the
// solve and disarmed before the network can re-enter the pool.
func (s *Service) solveOnce(j *Job, g *graph.Graph, opt ecss.Options, rec *congest.RoundRecorder) (raw []byte, err error) {
	// The recovery is installed before the first injection point so that
	// every panic-mode fault on this path — including solve.pre itself —
	// degrades to a per-job error, never a dead worker.
	var net *congest.Network
	panicked := true
	defer func() {
		if panicked {
			r := recover()
			s.mu.Lock()
			s.stats.PanicsRecovered++
			s.mu.Unlock()
			err = &panicError{val: r}
			if net != nil {
				net.Close()
			}
			return
		}
		if net != nil {
			s.pool.Put(j.ghash, net)
		}
	}()
	if ferr := faults.Point("solve.pre"); ferr != nil {
		panicked = false
		return nil, ferr
	}
	net = s.pool.Get(j.ghash, g)
	net.ResetAccounting()
	if rec != nil {
		net.Observer = rec
	}
	res, serr := ecss.SolveOn(net, opt)
	// Disarm before the network can be pooled: a recycled network must never
	// write a later job's rounds into this job's profile.
	net.Observer = nil
	if serr == nil {
		// Integrity gate: never cache (or serve) an unverified result.
		serr = ecss.Verify(net.G, res)
	}
	if serr == nil {
		serr = faults.Point("solve.postverify")
	}
	if serr == nil {
		raw, serr = json.Marshal(wireResult(net.G, res))
	}
	panicked = false
	return raw, serr
}

// panicError wraps a recovered solver panic as a per-job error.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("solver panic recovered: %v", p.val) }

// retryable reports whether a solve attempt's failure is worth one retry:
// recovered panics and injected faults are transient by construction;
// deterministic pipeline errors (infeasible input, verification failure)
// would fail identically again.
func retryable(err error) bool {
	var pe *panicError
	var fe *faults.Fault
	return errors.As(err, &pe) || errors.As(err, &fe)
}

// retire keeps a terminal, uncached job addressable for a while, dropping
// the oldest such job beyond the retention bound. Dropping a job releases
// its store view pin (the job record owns it) and clears the aliasing
// result bytes, so a stale *Job held across the drop can never read an
// unmapped region — it just snapshots without a result. Caller holds s.mu.
func (s *Service) retire(j *Job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > retainFinished {
		id := s.retired[0]
		if old, ok := s.jobs[id]; ok && old.view.Mapped() {
			old.resultJSON = nil
			old.view.Release()
			old.view = store.View{}
		}
		delete(s.jobs, id)
		s.retired = s.retired[1:]
	}
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = s.qlen
	st.Inflight = len(s.inflight)
	st.CacheEntries = s.cache.len()
	st.Pool = s.pool.Stats()
	st.Classes = make(map[string]ClassStats, numPriorities)
	for c := Priority(0); c < numPriorities; c++ {
		cs := s.classes[c]
		cs.Queued = len(s.queues[c])
		st.Classes[c.String()] = cs
	}
	s.mu.Unlock()
	// The store has its own mutex; take it only after the admission mutex
	// is released so the two never nest here.
	if s.store != nil {
		sst := s.store.Stats()
		st.Store = &sst
	}
	st.Faults = faults.Snapshot()
	return st
}

// Drain stops admission, lets the workers finish every queued job, closes
// the network pool, and — when a store is configured — flushes its pending
// writes to disk and closes it, leaving a replayable index. It returns nil
// on a clean drain or ctx.Err() if the context expires first (workers then
// keep draining in the background; pool and store are closed once they
// finish). Drain is one-shot: callers coordinate so it runs once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: already draining")
	}
	s.draining = true
	// Wake every idle worker: they drain the remaining queue, then exit on
	// the draining flag. Submit checks the flag under the same mutex, so no
	// new job can slip in after it.
	s.cond.Broadcast()
	s.mu.Unlock()
	s.emit(obs.Event{Type: obs.EvServiceDrain})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.pool.Close()
		if s.store != nil {
			// Every worker has returned, so every write-through Put is
			// already enqueued; Close flushes them durably in FIFO order.
			_ = s.store.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
