package service

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"twoecss/internal/obs"
)

// Priority is a job's admission class. Higher values are served first and
// may shed lower ones when the queue is full; within a class the queue is
// FIFO. The zero value is PriorityBackground, the most sheddable class;
// untyped submissions (Submit, wire requests without a priority) default to
// PriorityBatch.
type Priority int8

const (
	PriorityBackground Priority = iota
	PriorityBatch
	PriorityInteractive
	numPriorities = 3
)

func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityBatch:
		return "batch"
	case PriorityBackground:
		return "background"
	}
	return fmt.Sprintf("priority(%d)", int8(p))
}

// ParsePriority maps a wire string to a Priority; the empty string selects
// the PriorityBatch default.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "interactive":
		return PriorityInteractive, nil
	case "", "batch":
		return PriorityBatch, nil
	case "background":
		return PriorityBackground, nil
	}
	return PriorityBatch, fmt.Errorf("unknown priority %q (interactive|batch|background)", s)
}

// Admit carries the admission-control inputs of one submission, separate
// from the solver Options because they shape scheduling, not the result.
type Admit struct {
	// Priority is the job's admission class.
	Priority Priority
	// Deadline, when non-zero, is the instant after which the job is not
	// worth starting: expired queued jobs are shed first when the queue is
	// full, and a worker that pops an expired job fails it with
	// ErrDeadlineExceeded instead of solving.
	Deadline time.Time
	// Cancelable marks a submitter that waits on the job and abandons it on
	// disconnect (Service.Abandon): a queued job whose cancelable waiters
	// all left is dropped and its slot freed. A single non-cancelable
	// submission (fire-and-poll clients) pins the job to run regardless.
	Cancelable bool
	// RequestID is the trace id of this submission (obs.RequestIDHeader),
	// minted by the HTTP layer when the client or router did not supply
	// one. It is stamped on every event the resulting job emits; a
	// coalesced or cached submission's id appears on the serving event even
	// though the job keeps its creator's id.
	RequestID string
}

// ClassStats is the per-priority-class slice of the service counters.
type ClassStats struct {
	// Submitted counts submissions tagged with this class (including ones
	// served from cache or rejected).
	Submitted int64 `json:"submitted"`
	// Queued is the current number of queued jobs in the class.
	Queued int `json:"queued"`
	// Shed counts queued jobs dropped to admit a higher-priority one;
	// Expired counts jobs dropped because their deadline passed (at shed
	// time or at worker pickup); Canceled counts queued jobs dropped because
	// every cancelable submitter abandoned them.
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
	Canceled int64 `json:"canceled"`
	// RejectedFull counts submissions of this class rejected with
	// ErrQueueFull after the shed policy found nothing to drop.
	RejectedFull int64 `json:"rejected_full"`
}

var (
	// ErrDeadlineExceeded reports a job whose deadline passed before its
	// solve could start (or finish a retry). It is both a Submit error (for
	// dead-on-arrival deadlines) and a terminal job error.
	ErrDeadlineExceeded = errors.New("service: deadline exceeded before solve")
	// ErrShed is the terminal error of a queued job dropped by the shed
	// policy to admit a higher-priority submission.
	ErrShed = errors.New("service: shed from queue by higher-priority admission")
	// ErrCanceled is the terminal error of a queued job abandoned by every
	// cancelable submitter before a worker picked it up.
	ErrCanceled = errors.New("service: canceled by submitter before start")
)

// enqueueLocked appends j to its class FIFO. Caller holds s.mu and has
// checked capacity.
func (s *Service) enqueueLocked(j *Job) {
	s.queues[j.priority] = append(s.queues[j.priority], j)
	s.qlen++
	s.cond.Signal()
}

// popLocked removes and returns the oldest job of the highest non-empty
// class, or nil. Caller holds s.mu.
func (s *Service) popLocked() *Job {
	for c := numPriorities - 1; c >= 0; c-- {
		if q := s.queues[c]; len(q) > 0 {
			j := q[0]
			q[0] = nil // release the reference; the backing array is reused
			s.queues[c] = q[1:]
			s.qlen--
			return j
		}
	}
	return nil
}

// removeQueuedLocked unlinks j from its class FIFO, reporting whether it was
// still queued there. Caller holds s.mu.
func (s *Service) removeQueuedLocked(j *Job) bool {
	q := s.queues[j.priority]
	for i, cand := range q {
		if cand == j {
			s.queues[j.priority] = slices.Delete(q, i, i+1)
			s.qlen--
			return true
		}
	}
	return false
}

// failDequeuedLocked drives an already-dequeued job to StatusFailed with
// cause, keeping it addressable via JobInfo. Shed/expired/canceled jobs do
// not count toward Stats.Failed (which, with Completed, tallies solve
// executions); their class counters record them instead. Caller holds s.mu.
func (s *Service) failDequeuedLocked(j *Job, cause error) {
	j.status = StatusFailed
	j.err = cause
	j.finished = time.Now()
	j.phase = ""
	j.g = nil
	delete(s.inflight, j.key)
	s.retire(j)
	close(j.done)
	typ := obs.EvJobFailed
	switch {
	case errors.Is(cause, ErrDeadlineExceeded):
		typ = obs.EvJobExpired
	case errors.Is(cause, ErrShed):
		typ = obs.EvJobShed
	case errors.Is(cause, ErrCanceled):
		typ = obs.EvJobCanceled
	}
	s.emit(obs.Event{Type: typ, Job: j.id, Req: j.req, Class: j.priority.String(),
		Err: cause.Error(), Terminal: true})
}

// shedExpiredLocked drops every queued job whose deadline has passed,
// failing each with ErrDeadlineExceeded, and reports whether any slot was
// freed. Caller holds s.mu.
func (s *Service) shedExpiredLocked(now time.Time) bool {
	freed := false
	for c := 0; c < numPriorities; c++ {
		q := s.queues[c]
		for i := 0; i < len(q); {
			j := q[i]
			if j.deadline.IsZero() || now.Before(j.deadline) {
				i++
				continue
			}
			q = slices.Delete(q, i, i+1)
			s.qlen--
			s.classes[j.priority].Expired++
			s.failDequeuedLocked(j, ErrDeadlineExceeded)
			freed = true
		}
		s.queues[c] = q
	}
	return freed
}

// shedForLocked frees one slot for an incoming job of class prio by dropping
// the youngest queued job of the lowest non-empty class strictly below it
// (youngest: it has waited least, so dropping it wastes the least queue
// time). Returns false when nothing outranks. Caller holds s.mu.
func (s *Service) shedForLocked(prio Priority) bool {
	for c := Priority(0); c < prio; c++ {
		q := s.queues[c]
		if len(q) == 0 {
			continue
		}
		j := q[len(q)-1]
		q[len(q)-1] = nil
		s.queues[c] = q[:len(q)-1]
		s.qlen--
		s.classes[j.priority].Shed++
		s.failDequeuedLocked(j, ErrShed)
		return true
	}
	return false
}

// Abandon signals that one cancelable submitter of j (a wait=true HTTP
// client, typically) has stopped caring — it disconnected before the job
// finished. When the last cancelable watcher of a still-queued job leaves
// and no non-cancelable submission pinned it, the job is dropped from the
// queue with ErrCanceled and its slot freed. Abandoning a running or
// terminal job is a no-op: work already under way completes (and populates
// the cache) regardless.
func (s *Service) Abandon(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j == nil || j.status != StatusQueued {
		return
	}
	if j.watchers > 0 {
		j.watchers--
	}
	if !j.autocancel || j.watchers > 0 {
		return
	}
	if s.removeQueuedLocked(j) {
		s.classes[j.priority].Canceled++
		s.failDequeuedLocked(j, ErrCanceled)
	}
}

// RetryAfterHint estimates, in whole seconds (>=1), how long a rejected
// client should wait before retrying: the current queue length spread over
// the worker pool, scaled by the recent average solve duration. It backs
// the Retry-After header on 429/503 responses.
func (s *Service) RetryAfterHint() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	est := time.Second
	if s.ewmaSolveNs > 0 {
		waves := s.qlen/s.cfg.Workers + 1
		est = time.Duration(s.ewmaSolveNs * float64(waves))
	}
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
