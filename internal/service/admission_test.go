package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/faults"
)

func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := faults.Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faults.Disarm)
}

// stepGate installs a testJobStart hook on a one-worker service: every job
// announces its id on the returned channel, then blocks until the test sends
// one token on step. This makes pickup order observable and controllable.
func stepGate(s *Service) (started chan string, step chan struct{}) {
	started = make(chan string, 16)
	step = make(chan struct{}, 16)
	s.testJobStart = func(j *Job) {
		started <- j.ID()
		<-step
	}
	return started, step
}

func TestPriorityOrderAtPickup(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started, step := stepGate(s)
	defer drain(t, s)

	j1, _, err := s.Submit(testGraph(t, 30), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if id := <-started; id != j1.ID() {
		t.Fatalf("worker started %s, want %s", id, j1.ID())
	}
	// Queue one job per class, lowest first, while the worker is held.
	jB, _, err := s.SubmitWith(testGraph(t, 31), ecss.DefaultOptions(), Admit{Priority: PriorityBackground})
	if err != nil {
		t.Fatal(err)
	}
	jT, _, err := s.SubmitWith(testGraph(t, 32), ecss.DefaultOptions(), Admit{Priority: PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	jI, _, err := s.SubmitWith(testGraph(t, 33), ecss.DefaultOptions(), Admit{Priority: PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{} // release j1; the worker must pop by class, not FIFO
	want := []*Job{jI, jT, jB}
	for _, wj := range want {
		if id := <-started; id != wj.ID() {
			t.Fatalf("pickup order: got %s, want %s (%s)", id, wj.ID(), wj.priority)
		}
		step <- struct{}{}
	}
	for _, j := range []*Job{j1, jB, jT, jI} {
		waitJob(t, j)
	}
}

func TestDeadlineExpiredAtWorkerPickup(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started, step := stepGate(s)
	defer drain(t, s)

	j1, _, err := s.Submit(testGraph(t, 34), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, _, err := s.SubmitWith(testGraph(t, 35), ecss.DefaultOptions(),
		Admit{Priority: PriorityBatch, Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let j2 expire while queued
	step <- struct{}{}
	waitJob(t, j2)
	snap := s.snapshot(j2)
	if snap.Status != StatusFailed || !strings.Contains(snap.Error, "deadline") {
		t.Fatalf("expired job snapshot %+v, want explicit deadline failure", snap)
	}
	if !errors.Is(j2.err, ErrDeadlineExceeded) {
		t.Fatalf("expired job error %v, want ErrDeadlineExceeded", j2.err)
	}
	waitJob(t, j1)
	st := s.Stats()
	if st.Classes["batch"].Expired != 1 {
		t.Fatalf("classes %+v, want 1 batch expiry", st.Classes)
	}
	if st.Solves != 1 {
		t.Fatalf("got %d solves, want 1 — an expired job must never reach the pipeline", st.Solves)
	}
}

func TestDeadlineDeadOnArrivalButCacheStillServes(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	g := testGraph(t, 36)

	past := Admit{Priority: PriorityBatch, Deadline: time.Now().Add(-time.Second)}
	if _, _, err := s.SubmitWith(g, ecss.DefaultOptions(), past); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("DOA submit err %v, want ErrDeadlineExceeded", err)
	}

	j, _, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	// A result on hand is served instantly; the deadline is moot then.
	j2, hit, err := s.SubmitWith(g, ecss.DefaultOptions(), past)
	if err != nil || !hit || j2 != j {
		t.Fatalf("cached submit with past deadline: job=%v hit=%v err=%v", j2, hit, err)
	}
}

func TestShedLowerPriorityWhenFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	started, step := stepGate(s)
	defer drain(t, s)

	j1, _, err := s.Submit(testGraph(t, 37), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	jB, _, err := s.SubmitWith(testGraph(t, 38), ecss.DefaultOptions(), Admit{Priority: PriorityBackground})
	if err != nil {
		t.Fatalf("queueing background submit rejected: %v", err)
	}
	// Queue is full; an interactive arrival sheds the background job.
	jI, _, err := s.SubmitWith(testGraph(t, 39), ecss.DefaultOptions(), Admit{Priority: PriorityInteractive})
	if err != nil {
		t.Fatalf("interactive submit over full queue rejected: %v", err)
	}
	waitJob(t, jB)
	if !errors.Is(jB.err, ErrShed) {
		t.Fatalf("shed job error %v, want ErrShed", jB.err)
	}
	// Full again with only an interactive job queued: nothing outranks, so
	// both a background and another interactive arrival are rejected.
	if _, _, err := s.SubmitWith(testGraph(t, 40), ecss.DefaultOptions(), Admit{Priority: PriorityBackground}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("background into full queue: %v, want ErrQueueFull", err)
	}
	if _, _, err := s.SubmitWith(testGraph(t, 41), ecss.DefaultOptions(), Admit{Priority: PriorityInteractive}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive cannot shed its own class: %v, want ErrQueueFull", err)
	}
	st := s.Stats()
	if st.Classes["background"].Shed != 1 ||
		st.Classes["background"].RejectedFull != 1 ||
		st.Classes["interactive"].RejectedFull != 1 {
		t.Fatalf("classes %+v", st.Classes)
	}
	step <- struct{}{} // release j1 so jI can run
	step <- struct{}{} // and jI itself
	waitJob(t, j1)
	waitJob(t, jI)
	if jI.err != nil {
		t.Fatalf("interactive job failed: %v", jI.err)
	}
}

func TestShedExpiredBeforeSheddingLive(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	started, step := stepGate(s)
	defer drain(t, s)

	j1, _, err := s.Submit(testGraph(t, 42), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	jExp, _, err := s.SubmitWith(testGraph(t, 43), ecss.DefaultOptions(),
		Admit{Priority: PriorityBatch, Deadline: time.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	// Same class, no priority edge: admission still succeeds because the
	// expired job is dropped first.
	j3, _, err := s.SubmitWith(testGraph(t, 44), ecss.DefaultOptions(), Admit{Priority: PriorityBatch})
	if err != nil {
		t.Fatalf("submit over expired queue entry rejected: %v", err)
	}
	waitJob(t, jExp)
	if !errors.Is(jExp.err, ErrDeadlineExceeded) {
		t.Fatalf("expired job error %v, want ErrDeadlineExceeded", jExp.err)
	}
	st := s.Stats()
	if st.Classes["batch"].Expired != 1 || st.Classes["batch"].Shed != 0 {
		t.Fatalf("classes %+v, want expiry not shed", st.Classes)
	}
	step <- struct{}{}
	step <- struct{}{}
	waitJob(t, j1)
	waitJob(t, j3)
}

func TestAbandonCancelsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started, step := stepGate(s)
	defer drain(t, s)

	j1, _, err := s.Submit(testGraph(t, 45), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Sole cancelable submitter abandons: the queued job is dropped.
	j2, _, err := s.SubmitWith(testGraph(t, 46), ecss.DefaultOptions(),
		Admit{Priority: PriorityBatch, Cancelable: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Abandon(j2)
	waitJob(t, j2)
	if !errors.Is(j2.err, ErrCanceled) {
		t.Fatalf("abandoned job error %v, want ErrCanceled", j2.err)
	}
	if _, ok := s.JobInfo(j2.ID()); !ok {
		t.Fatal("canceled job no longer addressable")
	}
	if st := s.Stats(); st.QueueDepth != 0 || st.Classes["batch"].Canceled != 1 {
		t.Fatalf("stats queue=%d classes=%+v, want freed slot and 1 cancel", st.QueueDepth, st.Classes)
	}

	// Two cancelable watchers: the job survives the first abandon.
	g3 := testGraph(t, 47)
	j3, _, err := s.SubmitWith(g3, ecss.DefaultOptions(), Admit{Priority: PriorityBatch, Cancelable: true})
	if err != nil {
		t.Fatal(err)
	}
	if j3b, hit, err := s.SubmitWith(g3, ecss.DefaultOptions(), Admit{Priority: PriorityBatch, Cancelable: true}); err != nil || !hit || j3b != j3 {
		t.Fatalf("coalesce onto queued job: job=%v hit=%v err=%v", j3b, hit, err)
	}
	s.Abandon(j3)
	if snap := s.snapshot(j3); snap.Status != StatusQueued {
		t.Fatalf("job with a remaining watcher was dropped: %+v", snap)
	}
	s.Abandon(j3)
	waitJob(t, j3)
	if !errors.Is(j3.err, ErrCanceled) {
		t.Fatalf("job abandoned by both watchers: err %v, want ErrCanceled", j3.err)
	}

	// A non-cancelable submission pins the job against autocancel for good.
	g4 := testGraph(t, 48)
	j4, _, err := s.SubmitWith(g4, ecss.DefaultOptions(), Admit{Priority: PriorityBatch, Cancelable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := s.Submit(g4, ecss.DefaultOptions()); err != nil || !hit {
		t.Fatalf("pinning coalesce: hit=%v err=%v", hit, err)
	}
	s.Abandon(j4)
	if snap := s.snapshot(j4); snap.Status != StatusQueued {
		t.Fatalf("pinned job was dropped: %+v", snap)
	}
	step <- struct{}{} // j1
	step <- struct{}{} // j4
	waitJob(t, j1)
	waitJob(t, j4)
	if j4.err != nil {
		t.Fatalf("pinned job failed: %v", j4.err)
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	armFaults(t, "solve.stage:panic,count=1")

	j, _, err := s.Submit(testGraph(t, 49), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	snap := s.snapshot(j)
	if snap.Status != StatusDone {
		t.Fatalf("job after one recovered panic: %+v, want done via retry", snap)
	}
	st := s.Stats()
	if st.PanicsRecovered != 1 || st.Retries != 1 {
		t.Fatalf("stats %+v, want 1 recovered panic and 1 retry", st)
	}
	if st.Solves != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats %+v — a retried job must count as one solve", st)
	}
	// The worker survived; the poisoned network was not returned to the pool.
	faults.Disarm()
	j2, _, err := s.Submit(testGraph(t, 50), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	if j2.err != nil {
		t.Fatalf("post-panic solve failed: %v", j2.err)
	}

	// A panic before the network is even acquired (solve.pre) must recover
	// identically — the recovery window covers the whole attempt.
	armFaults(t, "solve.pre:panic,count=1")
	j3, _, err := s.Submit(testGraph(t, 61), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j3)
	if snap := s.snapshot(j3); snap.Status != StatusDone {
		t.Fatalf("job after pre-acquire panic: %+v, want done via retry", snap)
	}
}

func TestPersistentFaultExhaustsRetryBudget(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	armFaults(t, "solve.pre:error=unstable")

	j, _, err := s.Submit(testGraph(t, 51), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	snap := s.snapshot(j)
	if snap.Status != StatusFailed || !strings.Contains(snap.Error, "fault injected at solve.pre") {
		t.Fatalf("job under persistent fault: %+v", snap)
	}
	st := s.Stats()
	if st.Retries != 1 || st.Solves != 1 || st.Failed != 1 {
		t.Fatalf("stats %+v, want exactly one retry then failure", st)
	}
	if fp := st.Faults["solve.pre"]; fp.Fires != 2 {
		t.Fatalf("fault point stats %+v, want 2 fires (initial + retry)", st.Faults)
	}
}

// postSolveRaw is postSolve plus response headers, for contract tests that
// pin status codes and Retry-After.
func postSolveRaw(t *testing.T, srv *httptest.Server, req SolveRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHTTPQueueFullContract pins the load-shedding wire contract: a full
// queue is 429 Too Many Requests with a positive integer Retry-After, and a
// draining service is 503 with the same header — never a bare generic error.
func TestHTTPQueueFullContract(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	started, step := stepGate(s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 52))}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	if resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 53))}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queueing submit: %d", resp.StatusCode)
	}
	resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 54))})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: %d, want 429", resp.StatusCode)
	}
	checkRetryAfter := func(resp *http.Response) {
		t.Helper()
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || secs < 1 || secs > 60 {
			t.Fatalf("Retry-After %q, want integer seconds in [1,60]", resp.Header.Get("Retry-After"))
		}
	}
	checkRetryAfter(resp)
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
		t.Fatalf("429 body %v, want an error message", body)
	}

	step <- struct{}{}
	step <- struct{}{}
	drain(t, s)
	resp = postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 55))})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", resp.StatusCode)
	}
	checkRetryAfter(resp)
}

func TestHTTPAdmissionWireValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	g := WireGraph(testGraph(t, 56))
	if code, _ := postSolve(t, srv, SolveRequest{Graph: g, Priority: "urgent"}); code != http.StatusBadRequest {
		t.Fatalf("bogus priority: code=%d, want 400", code)
	}
	if code, _ := postSolve(t, srv, SolveRequest{Graph: g, DeadlineMS: -5}); code != http.StatusBadRequest {
		t.Fatalf("negative deadline: code=%d, want 400", code)
	}
	if code, resp := postSolve(t, srv, SolveRequest{Graph: g, Priority: "interactive", Wait: true}); code != http.StatusOK || resp.Status != StatusDone {
		t.Fatalf("interactive solve: code=%d resp=%+v", code, resp)
	}
}

// TestHTTPDeadlinePropagated: a deadline_ms on the wire becomes a queue
// deadline; when the worker reaches the job too late, the client gets an
// explicit deadline error, not a silent drop.
func TestHTTPDeadlinePropagated(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started, step := stepGate(s)
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 57))}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 58)), DeadlineMS: 30})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline submit: %d", resp.StatusCode)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	step <- struct{}{}
	step <- struct{}{}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, ok := s.JobInfo(jr.JobID)
		if ok && info.Status == StatusFailed {
			if !strings.Contains(info.Error, "deadline") {
				t.Fatalf("expired job error %q, want a deadline message", info.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never expired: %+v", jr.JobID, info)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPDisconnectCancelsQueuedJob: a waiting client that goes away takes
// its queued job with it — the slot frees and the class counter records a
// cancellation, not a failure.
func TestHTTPDisconnectCancelsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started, step := stepGate(s)
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp := postSolveRaw(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 59))}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started

	body, err := json.Marshal(SolveRequest{Graph: WireGraph(testGraph(t, 60)), Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, rerr := srv.Client().Do(req)
		if rerr == nil {
			resp.Body.Close()
		}
		errc <- rerr
	}()
	// Wait until the waiter's job is queued, then hang up.
	waitUntil := time.Now().Add(10 * time.Second)
	for s.Stats().QueueDepth == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("waiter's job never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-errc
	for s.Stats().Classes["batch"].Canceled == 0 {
		if time.Now().After(waitUntil) {
			t.Fatalf("disconnect did not cancel the queued job: %+v", s.Stats().Classes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after cancel, want the slot freed", st.QueueDepth)
	}
	step <- struct{}{}
}
