package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"twoecss/internal/graph"
)

func postSolve(t *testing.T, srv *httptest.Server, req SolveRequest) (int, JobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, jr
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	g := testGraph(t, 20)
	req := SolveRequest{Graph: WireGraph(g), Wait: true}

	code, first := postSolve(t, srv, req)
	if code != http.StatusOK || first.Status != StatusDone || first.Cached {
		t.Fatalf("first solve: code=%d resp=%+v", code, first)
	}
	var res ResultWire
	if err := json.Unmarshal(first.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) == 0 || res.Weight <= 0 || res.CertifiedRatio > 5.5 {
		t.Fatalf("implausible result: %+v", res)
	}

	// Identical request: cache hit, byte-identical result payload.
	code, second := postSolve(t, srv, req)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second solve: code=%d resp=%+v", code, second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result bytes differ from the original solve")
	}
	if second.JobID != first.JobID {
		t.Fatalf("cache hit returned job %s, want %s", second.JobID, first.JobID)
	}

	// Job endpoint agrees.
	jresp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + first.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var byID JobResponse
	if err := json.NewDecoder(jresp.Body).Decode(&byID); err != nil {
		t.Fatal(err)
	}
	if jresp.StatusCode != http.StatusOK || byID.Status != StatusDone || !bytes.Equal(byID.Result, first.Result) {
		t.Fatalf("job lookup: code=%d resp=%+v", jresp.StatusCode, byID)
	}

	// Stats endpoint reflects one solve and one hit.
	sresp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Solves != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 solve and 1 cache hit", st)
	}

	// Health endpoint.
	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}

// TestHealthzDrainAware pins the readiness contract a balancer relies on:
// 200 {"status":"ok"} while serving, 503 {"status":"draining"} from the
// moment Drain begins — never an unconditional 200.
func TestHealthzDrainAware(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() (int, map[string]string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get(); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("pre-drain healthz: code=%d body=%v, want 200 ok", code, body)
	}
	drain(t, s)
	if code, body := get(); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("post-drain healthz: code=%d body=%v, want 503 draining", code, body)
	}
}

func TestHTTPAsyncSubmitThenPoll(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, resp := postSolve(t, srv, SolveRequest{Graph: WireGraph(testGraph(t, 21))})
	if resp.JobID == "" {
		t.Fatalf("async submit returned no job id: %+v", resp)
	}
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("async submit: code=%d", code)
	}
	j := func() *Job {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jobs[resp.JobID]
	}()
	waitJob(t, j)
	info, ok := s.JobInfo(resp.JobID)
	if !ok || info.Status != StatusDone {
		t.Fatalf("polled job: ok=%v info=%+v", ok, info)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	selfLoop := SolveRequest{Graph: GraphWire{N: 4, Edges: [][3]int64{{0, 0, 1}}}}
	if code, _ := postSolve(t, srv, selfLoop); code != http.StatusBadRequest {
		t.Fatalf("self-loop graph: code=%d, want 400", code)
	}
	badVariant := SolveRequest{
		Graph:   WireGraph(testGraph(t, 22)),
		Options: OptionsWire{Variant: "cover9"},
	}
	if code, _ := postSolve(t, srv, badVariant); code != http.StatusBadRequest {
		t.Fatalf("bad variant: code=%d, want 400", code)
	}
	tiny := graph.New(2)
	tiny.MustAddEdge(0, 1, 1)
	if code, _ := postSolve(t, srv, SolveRequest{Graph: WireGraph(tiny)}); code != http.StatusBadRequest {
		t.Fatalf("tiny graph: code=%d, want 400", code)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: code=%d, want 404", resp.StatusCode)
	}
}
