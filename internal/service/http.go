package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/faults"
	"twoecss/internal/graph"
	"twoecss/internal/obs"
	"twoecss/internal/store"
	"twoecss/internal/tap"
)

// Wire formats. Results are exchanged as canonical (u, v, w) endpoint
// triples rather than edge ids: the cache is content-addressed on the edge
// multiset (graph.Hash), so a hit may come from a structurally identical
// graph whose edges were numbered differently.

// GraphWire is the JSON edge-list encoding of an instance.
type GraphWire struct {
	N int `json:"n"`
	// Edges lists [u, v, w] triples.
	Edges [][3]int64 `json:"edges"`
}

// WireGraph encodes g for a solve request.
func WireGraph(g *graph.Graph) GraphWire {
	w := GraphWire{N: g.N, Edges: make([][3]int64, len(g.Edges))}
	for i, e := range g.Edges {
		w.Edges[i] = [3]int64{int64(e.U), int64(e.V), int64(e.W)}
	}
	return w
}

// Request-size guards: far above every generator family, far below what
// would let one request exhaust the process (CSR needs counts in int32).
const (
	maxWireVertices = 1 << 20
	maxWireEdges    = 1 << 22
	maxBodyBytes    = 1 << 28
)

// Graph materializes the wire form, enforcing the request-size guards.
// The router uses it to compute the content hash a request routes on.
func (w GraphWire) Graph() (*graph.Graph, error) { return w.toGraph() }

func (w GraphWire) toGraph() (*graph.Graph, error) {
	if w.N < 0 || w.N > maxWireVertices {
		return nil, fmt.Errorf("n %d out of range [0,%d]", w.N, maxWireVertices)
	}
	if len(w.Edges) > maxWireEdges {
		return nil, fmt.Errorf("%d edges exceed limit %d", len(w.Edges), maxWireEdges)
	}
	g := graph.New(w.N)
	for i, e := range w.Edges {
		if _, err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}

// OptionsWire is the JSON encoding of the result-relevant solve options.
type OptionsWire struct {
	// Eps is the approximation slack (0 selects the default 0.25).
	Eps float64 `json:"eps,omitempty"`
	// Variant is "cover2" (default) or "cover4".
	Variant string `json:"variant,omitempty"`
	// MST is "charge" (default: centrally computed, Kutten–Peleg bill) or
	// "boruvka" (message-level simulation).
	MST string `json:"mst,omitempty"`
	// Root is the BFS/spanning-tree root vertex.
	Root int `json:"root,omitempty"`
}

func (w OptionsWire) toOptions() (ecss.Options, error) {
	opt := ecss.DefaultOptions()
	if w.Eps != 0 {
		opt.Eps = w.Eps
	}
	switch w.Variant {
	case "", "cover2":
		opt.Variant = tap.Cover2
	case "cover4":
		opt.Variant = tap.Cover4
	default:
		return opt, fmt.Errorf("unknown variant %q (cover2|cover4)", w.Variant)
	}
	switch w.MST {
	case "", "charge":
		opt.MST = ecss.MSTChargeKuttenPeleg
	case "boruvka":
		opt.MST = ecss.MSTSimulateBoruvka
	default:
		return opt, fmt.Errorf("unknown mst mode %q (charge|boruvka)", w.MST)
	}
	opt.Root = w.Root
	return opt, nil
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	Graph   GraphWire   `json:"graph"`
	Options OptionsWire `json:"options"`
	// Wait blocks the request until the job is terminal (or the client
	// disconnects) instead of returning the queued job immediately. A
	// waiting client that disconnects abandons its queued job: when no
	// other submitter still wants it, the job is canceled and its queue
	// slot freed.
	Wait bool `json:"wait,omitempty"`
	// Priority is the admission class: "interactive" > "batch" (default) >
	// "background". Under a full queue, higher classes shed queued lower
	// ones instead of being rejected.
	Priority string `json:"priority,omitempty"`
	// DeadlineMS, when positive, bounds how long the job is worth solving,
	// in milliseconds from receipt. An expired job is shed from the queue
	// (or failed at worker pickup) with an explicit deadline-exceeded
	// error. A request-context deadline, if sooner, applies too.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ResultWire is the canonical JSON encoding of a solution; every requester
// of one cached solve receives these exact bytes.
type ResultWire struct {
	// Edges are the bought edges as canonical-sorted [u, v, w] triples
	// (u <= v), valid for any graph with the instance's content hash.
	Edges           [][3]int64 `json:"edges"`
	Weight          int64      `json:"weight"`
	TreeWeight      int64      `json:"tree_weight"`
	AugWeight       int64      `json:"aug_weight"`
	LowerBound      float64    `json:"lower_bound"`
	CertifiedRatio  float64    `json:"certified_ratio"`
	SimulatedRounds int64      `json:"simulated_rounds"`
	ChargedRounds   int64      `json:"charged_rounds"`
	Messages        int64      `json:"messages"`
}

func wireResult(g *graph.Graph, res *ecss.Result) ResultWire {
	edges := make([][3]int64, len(res.Edges))
	for i, id := range res.Edges {
		e := g.Edges[id]
		u, v := int64(e.U), int64(e.V)
		if u > v {
			u, v = v, u
		}
		edges[i] = [3]int64{u, v, e.W}
	}
	slices.SortFunc(edges, func(a, b [3]int64) int {
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				if a[k] < b[k] {
					return -1
				}
				return 1
			}
		}
		return 0
	})
	return ResultWire{
		Edges:           edges,
		Weight:          res.Weight,
		TreeWeight:      res.TreeWeight,
		AugWeight:       res.AugWeight,
		LowerBound:      res.LowerBound,
		CertifiedRatio:  res.CertifiedRatio,
		SimulatedRounds: res.Stats.SimulatedRounds,
		ChargedRounds:   res.Stats.ChargedRounds,
		Messages:        res.Stats.Messages,
	}
}

// JobResponse is the JSON view of a job returned by POST /v1/solve and
// GET /v1/jobs/{id}.
type JobResponse struct {
	JobID  string `json:"job_id"`
	Status Status `json:"status"`
	Phase  string `json:"phase,omitempty"`
	// RequestID is the trace id: on solve responses, the submitting
	// request's own id (even when an older cached job serves it); on job
	// lookups, the id the job was created under.
	RequestID string `json:"request_id,omitempty"`
	// Cached is set on solve responses served from the result cache or an
	// in-flight coalesce.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// ElapsedMS is the solve wall time, present on terminal jobs.
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// JobInfo returns the current snapshot of a job by id. The result bytes
// are safe to hold indefinitely: a store-backed job's result is copied out
// of the pinned region, since the caller holds no pin of its own. The HTTP
// handlers avoid that copy by retaining the job's view across the response
// write instead.
func (s *Service) JobInfo(id string) (JobResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobResponse{}, false
	}
	r := s.snapshotLocked(j)
	if j.view.Mapped() {
		r.Result = slices.Clone(r.Result)
	}
	return r, true
}

func (s *Service) snapshot(j *Job) JobResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.snapshotLocked(j)
	if j.view.Mapped() {
		r.Result = slices.Clone(r.Result)
	}
	return r
}

func (s *Service) snapshotLocked(j *Job) JobResponse {
	r := JobResponse{JobID: j.id, Status: j.status, Phase: j.phase, RequestID: j.req}
	if j.err != nil {
		r.Error = j.err.Error()
	}
	if !j.finished.IsZero() {
		r.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		r.Result = j.resultJSON
	}
	return r
}

// Handler returns the service's HTTP JSON API:
//
//	POST /v1/solve            submit a solve ({graph, options, wait})
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/stream job lifecycle as SSE, closed at the terminal event
//	GET  /v1/jobs/{id}/trace  job event timeline as JSON
//	GET  /v1/jobs/{id}/profile engine round profile and stage costs as JSON
//	GET  /v1/events           process event firehose as SSE (?types= filter)
//	GET  /v1/stats            service counters
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             readiness: 200 while serving, 503 once draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleJobProfile)
	mux.HandleFunc("GET /v1/events", s.o.Bus.ServeFirehose)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.o.Metrics.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is drain-aware readiness: a draining shard answers 503 so
// any balancer (the router's active prober in particular) ejects it from
// new-request routing while its in-flight jobs finish.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Adopt the caller's request id (router-forwarded attempts share one) or
	// mint one; echo it on every response, including errors, so the client
	// can always correlate.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)
	if err := faults.Point("http.solve"); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	g, err := req.Graph.toGraph()
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad graph: %w", err))
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad options: %w", err))
		return
	}
	adm := Admit{Cancelable: req.Wait, RequestID: reqID}
	if adm.Priority, err = ParsePriority(req.Priority); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.DeadlineMS < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("deadline_ms must be >= 0, got %d", req.DeadlineMS))
		return
	}
	if req.DeadlineMS > 0 {
		adm.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	// Propagate the transport deadline too: a job is not worth starting
	// after the request that asked for it has timed out.
	if ctxDL, ok := r.Context().Deadline(); ok && (adm.Deadline.IsZero() || ctxDL.Before(adm.Deadline)) {
		adm.Deadline = ctxDL
	}
	job, hit, err := s.SubmitWith(g, opt, adm)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Load shedding, not a client error: tell the client when a retry
		// is likely to be admitted.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrDeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if req.Wait {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			// Client gone: withdraw this waiter's interest. If it was the
			// last one and the job is still queued, the job is canceled and
			// its slot freed; the response below reports it as it stands.
			s.Abandon(job)
		}
	}
	// Snapshot with the job's store view pinned across the response write:
	// the JSON encoder then reads the result straight out of the mapped
	// region — no payload copy — even if the entry is evicted mid-write.
	s.mu.Lock()
	resp := s.snapshotLocked(job)
	v := job.view
	v.Retain()
	s.mu.Unlock()
	defer v.Release()
	resp.Cached = hit
	// The job may have been created by an earlier request; this response
	// still belongs to the submitting request's trace.
	resp.RequestID = reqID
	if resp.Status == StatusDone || resp.Status == StatusFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	// Like handleSolve: pin the job's store view across the write instead
	// of copying the result out of the mapped region.
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var resp JobResponse
	var v store.View
	if ok {
		resp = s.snapshotLocked(j)
		v = j.view
		v.Retain()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	defer v.Release()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
