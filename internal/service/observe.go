package service

// This file is the service's observability wiring (DESIGN.md §11):
// lifecycle events published on the shared obs.Bus, a scrape-time metrics
// collector that absorbs the existing Stats counters into /metrics without
// double bookkeeping, and the HTTP surfaces for streaming — the process
// firehose, per-job SSE streams, and per-job trace timelines.

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"twoecss/internal/congest"
	"twoecss/internal/obs"
)

// Obs returns the service's observability hub (never nil after New), so
// the daemon can mount the firehose and share one bus with the store.
func (s *Service) Obs() *obs.Obs { return s.o }

// emit publishes a lifecycle event. Safe to call with or without s.mu: the
// bus takes only its own lock and never calls back into the service.
func (s *Service) emit(e obs.Event) { s.o.Bus.Publish(e) }

// keyPrefix renders a short content-address prefix for events. Full keys
// are 64 hex chars and belong in the store index, not the firehose.
func keyPrefix(k Key) string { return hex.EncodeToString(k[:6]) }

// Engine histogram buckets: rounds are small integers by the paper's bounds
// (O(D + sqrt(n) log* n) style), messages grow with m, so both families use
// exponential grids.
var (
	engineRoundBuckets   = []float64{16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	engineMessageBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
)

// observeStage records one completed pipeline stage: wall time plus the
// engine cost delta the stage consumed. The registry getter is
// get-or-create, so stages appear as they are first exercised.
func (s *Service) observeStage(stage string, d time.Duration, cost congest.Stats) {
	m := s.o.Metrics
	l := obs.L("stage", stage)
	m.Histogram("ecss_solve_stage_seconds",
		"Wall time per solver pipeline stage.", nil, l).Observe(d.Seconds())
	m.Histogram("ecss_engine_stage_rounds",
		"Engine rounds (simulated + charged) consumed per pipeline stage.",
		engineRoundBuckets, l).Observe(float64(cost.SimulatedRounds + cost.ChargedRounds))
	m.Histogram("ecss_engine_stage_messages",
		"Engine messages delivered per pipeline stage.",
		engineMessageBuckets, l).Observe(float64(cost.Messages))
}

// observeSolveCost records one terminal solve's whole-pipeline engine cost.
func (s *Service) observeSolveCost(rounds, msgs int64) {
	m := s.o.Metrics
	m.Histogram("ecss_engine_solve_rounds",
		"Engine rounds (simulated + charged) consumed per solve.",
		engineRoundBuckets).Observe(float64(rounds))
	m.Histogram("ecss_engine_solve_messages",
		"Engine messages delivered per solve.",
		engineMessageBuckets).Observe(float64(msgs))
}

// registerMetrics creates the service's native instruments and registers
// the collector that exports the Stats snapshot at scrape time.
func (s *Service) registerMetrics() {
	m := s.o.Metrics
	s.solveHist = m.Histogram("ecss_solve_seconds",
		"Solve wall time from worker pickup to terminal state.", nil)
	// Declared SLOs (DESIGN.md §12.4): solves good iff successful within
	// Config.SLOLatency (99% target), and good iff terminal without error
	// (99.9% availability target). Exported as ecss_slo_* burn-rate gauges.
	s.sloLatency = obs.NewSLO(m, "solve-latency", 0.99)
	s.sloAvail = obs.NewSLO(m, "solve-availability", 0.999)
	m.Collect(func(emit func(obs.Sample)) {
		st := s.Stats()
		c := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: v, Labels: labels})
		}
		g := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v, Labels: labels})
		}
		c("ecss_jobs_submitted_total", "Submissions passing input validation.", float64(st.Submitted))
		c("ecss_jobs_completed_total", "Jobs whose solve finished successfully.", float64(st.Completed))
		c("ecss_jobs_failed_total", "Jobs whose solve failed terminally.", float64(st.Failed))
		c("ecss_solves_total", "Jobs that executed the solver pipeline.", float64(st.Solves))
		c("ecss_solve_retries_total", "Extra solve attempts after retryable failures.", float64(st.Retries))
		c("ecss_panics_recovered_total", "Solver panics converted to per-job errors.", float64(st.PanicsRecovered))
		c("ecss_cache_hits_total", "Submissions served from the in-memory result cache.", float64(st.CacheHits))
		c("ecss_coalesced_total", "Submissions attached to an identical in-flight job.", float64(st.Coalesced))
		c("ecss_store_hits_total", "Submissions served from the disk store on a memory miss.", float64(st.StoreHits))
		c("ecss_rejected_total", "Admission rejections by reason.", float64(st.RejectedFull), obs.L("reason", "queue_full"))
		c("ecss_rejected_total", "Admission rejections by reason.", float64(st.RejectedDraining), obs.L("reason", "draining"))
		g("ecss_queue_depth", "Jobs admitted but not yet picked up by a worker.", float64(st.QueueDepth))
		g("ecss_inflight", "Distinct content keys queued or being solved.", float64(st.Inflight))
		g("ecss_cache_entries", "Entries in the in-memory result cache.", float64(st.CacheEntries))
		c("ecss_pool_creates_total", "Networks built because the pool had no twin.", float64(st.Pool.Creates))
		c("ecss_pool_reuses_total", "Solves served by a pooled network.", float64(st.Pool.Reuses))
		c("ecss_pool_evictions_total", "Idle networks closed to respect the pool bound.", float64(st.Pool.Evictions))
		g("ecss_pool_idle", "Idle networks held by the pool.", float64(st.Pool.Idle))
		for class, cs := range st.Classes {
			l := obs.L("class", class)
			c("ecss_class_submitted_total", "Submissions per priority class.", float64(cs.Submitted), l)
			g("ecss_class_queued", "Currently queued jobs per priority class.", float64(cs.Queued), l)
			c("ecss_class_shed_total", "Queued jobs shed for higher-priority admissions.", float64(cs.Shed), l)
			c("ecss_class_expired_total", "Jobs dropped past their deadline.", float64(cs.Expired), l)
			c("ecss_class_canceled_total", "Queued jobs abandoned by every watcher.", float64(cs.Canceled), l)
			c("ecss_class_rejected_full_total", "Queue-full rejections per class.", float64(cs.RejectedFull), l)
		}
		if ss := st.Store; ss != nil {
			c("ecss_store_gets_total", "Store lookups by outcome.", float64(ss.Hits), obs.L("outcome", "hit"))
			c("ecss_store_gets_total", "Store lookups by outcome.", float64(ss.Misses), obs.L("outcome", "miss"))
			c("ecss_store_puts_total", "Entries accepted for write.", float64(ss.Puts))
			c("ecss_store_dup_puts_total", "Writes skipped: content already stored.", float64(ss.DupPuts))
			c("ecss_store_evictions_total", "Entries evicted to respect the byte budget.", float64(ss.Evictions))
			c("ecss_store_corruptions_total", "Damaged entries or index records detected.", float64(ss.Corruptions))
			c("ecss_store_write_errors_total", "Puts the writer could not persist.", float64(ss.WriteErrors))
			c("ecss_store_quarantined_total", "Entry files moved into quarantine.", float64(ss.Quarantined))
			c("ecss_store_restored_total", "Quarantined entries proved intact and restored.", float64(ss.Restored))
			c("ecss_store_reverify_deleted_total", "Quarantined files deleted after repeated failures.", float64(ss.ReverifyDeleted))
			c("ecss_store_touch_drops_total", "Atime touch records dropped on a saturated writer queue.", float64(ss.TouchDrops))
			g("ecss_store_entries", "Live on-disk entries.", float64(ss.Entries))
			g("ecss_store_bytes", "Live on-disk payload bytes.", float64(ss.Bytes))
			c("ecss_store_mmap_maps_total", "Object files mapped and checksum-verified for zero-copy serving.", float64(ss.Mmap.Maps))
			c("ecss_store_mmap_fallbacks_total", "Reads served by a private heap copy because mmap was unavailable.", float64(ss.Mmap.Fallbacks))
			c("ecss_store_mmap_pins_total", "View pins taken on mapped entries.", float64(ss.Mmap.Pins))
			c("ecss_store_mmap_unpins_total", "View pins released.", float64(ss.Mmap.Unpins))
			c("ecss_store_mmap_unmap_deferred_total", "Evictions that found the entry pinned and deferred cleanup to the last release.", float64(ss.Mmap.UnmapDeferred))
			g("ecss_store_mmap_active", "Currently mapped object files, including doomed maps kept alive by pins.", float64(ss.Mmap.ActiveMaps))
			g("ecss_store_mmap_bytes", "Bytes of currently mapped object files.", float64(ss.Mmap.MappedBytes))
		}
		for point, ps := range st.Faults {
			l := obs.L("point", point)
			c("ecss_fault_hits_total", "Fault-point traversals while a plan is armed.", float64(ps.Hits), l)
			c("ecss_fault_fires_total", "Faults actually injected.", float64(ps.Fires), l)
		}
		c("ecss_engine_rounds_total", "Engine rounds consumed across all solves, by accounting kind.",
			float64(st.Engine.SimulatedRounds), obs.L("kind", "simulated"))
		c("ecss_engine_rounds_total", "Engine rounds consumed across all solves, by accounting kind.",
			float64(st.Engine.ChargedRounds), obs.L("kind", "charged"))
		c("ecss_engine_messages_total", "Engine messages delivered across all solves.", float64(st.Engine.Messages))
		c("ecss_engine_words_total", "Engine payload words delivered across all solves.", float64(st.Engine.Words))
		c("ecss_engine_profiled_solves_total", "Solves that retained a round profile.", float64(st.Engine.ProfiledSolves))
	})
}

// StageCost is one completed pipeline stage inside a JobProfile: its wall
// time and the engine cost delta it consumed.
type StageCost struct {
	Stage           string  `json:"stage"`
	Seconds         float64 `json:"seconds"`
	SimulatedRounds int64   `json:"simulated_rounds"`
	ChargedRounds   int64   `json:"charged_rounds"`
	Messages        int64   `json:"messages"`
	Words           int64   `json:"words"`
}

// RoundSampleWire is the JSON view of one engine round sample.
type RoundSampleWire struct {
	Round        int64 `json:"round"`
	Active       int   `json:"active"`
	Messages     int64 `json:"messages"`
	Words        int64 `json:"words"`
	MaxEdgeWords int   `json:"max_edge_words"`
	MaxNodeWords int64 `json:"max_node_words"`
	HandlerNs    int64 `json:"handler_ns"`
	RouteNs      int64 `json:"route_ns"`
}

// JobProfile is the engine-depth telemetry retained for one solved job: the
// per-stage cost breakdown plus a bounded, evenly spaced per-round timeline
// from the attempt that produced the terminal state. Rounds and messages
// are the paper's cost measures, so the profile is the auditable record of
// where a solve's complexity went.
type JobProfile struct {
	// Stride is one retained sample per Stride simulated rounds (grows by
	// doubling when a solve outruns the ring capacity).
	Stride int64 `json:"stride"`
	// RoundsObserved is the total simulated rounds of the profiled attempt,
	// retained or thinned.
	RoundsObserved int64             `json:"rounds_observed"`
	Stages         []StageCost       `json:"stages"`
	Rounds         []RoundSampleWire `json:"rounds"`
}

// buildProfile copies the recorder's ring (which the next solve on this
// worker would overwrite) and the attempt's stage costs into a retained
// profile.
func buildProfile(rec *congest.RoundRecorder, stages []StageCost) *JobProfile {
	p := &JobProfile{
		Stride:         rec.Stride(),
		RoundsObserved: rec.Observed(),
		Stages:         append([]StageCost(nil), stages...),
	}
	samples := rec.Samples()
	p.Rounds = make([]RoundSampleWire, len(samples))
	for i, sm := range samples {
		p.Rounds[i] = RoundSampleWire{Round: sm.Round, Active: sm.Active,
			Messages: sm.Messages, Words: sm.Words,
			MaxEdgeWords: sm.MaxEdgeWords, MaxNodeWords: sm.MaxNodeWords,
			HandlerNs: sm.HandlerNs, RouteNs: sm.RouteNs}
	}
	return p
}

// ProfileResponse is the JSON view of GET /v1/jobs/{id}/profile.
type ProfileResponse struct {
	JobID  string `json:"job_id"`
	Status Status `json:"status"`
	// Profile is null while the job is queued or running, for jobs served
	// without a solve (cache/store hits), and when profiling is disabled.
	Profile *JobProfile `json:"profile,omitempty"`
}

func (s *Service) handleJobProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var resp ProfileResponse
	if ok {
		// The profile is immutable once attached, so sharing the pointer
		// across the response write is safe.
		resp = ProfileResponse{JobID: j.id, Status: j.status, Profile: j.profile}
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// TraceResponse is the JSON view of one job's event timeline at
// GET /v1/jobs/{id}/trace.
type TraceResponse struct {
	JobID string `json:"job_id"`
	// RequestID is the id the job's trace began under ("" for jobs adopted
	// at pre-warm, or when the trace has been evicted).
	RequestID string `json:"request_id,omitempty"`
	// Complete reports whether the trace ends in a terminal event. False
	// also covers evicted traces: Events then narrates less than the whole
	// lifecycle.
	Complete bool        `json:"complete"`
	Events   []obs.Event `json:"events"`
}

func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.JobInfo(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	tr := s.o.Bus.Trace(id)
	resp := TraceResponse{JobID: id, Events: tr}
	if len(tr) > 0 {
		resp.RequestID = tr[0].Req
		resp.Complete = tr[len(tr)-1].Terminal
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var terminal bool
	var ev obs.Event
	if ok {
		terminal = j.status == StatusDone || j.status == StatusFailed
		if terminal {
			ev = obs.Event{Type: obs.EvJobDone, Job: j.id, Req: j.req, Class: j.priority.String(),
				MS: float64(j.finished.Sub(j.started)) / float64(time.Millisecond), Terminal: true}
			if j.err != nil {
				ev.Type, ev.Err = obs.EvJobFailed, j.err.Error()
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if terminal && len(s.o.Bus.Trace(id)) == 0 {
		// The job finished but its trace has been evicted: still honor the
		// contract that a stream ends in a terminal event by synthesizing
		// one from the job record instead of hanging on a silent bus.
		obs.ServeOneEvent(w, ev)
		return
	}
	s.o.Bus.ServeJobStream(w, r, id)
}
