package service

// This file is the service's observability wiring (DESIGN.md §11):
// lifecycle events published on the shared obs.Bus, a scrape-time metrics
// collector that absorbs the existing Stats counters into /metrics without
// double bookkeeping, and the HTTP surfaces for streaming — the process
// firehose, per-job SSE streams, and per-job trace timelines.

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"twoecss/internal/obs"
)

// Obs returns the service's observability hub (never nil after New), so
// the daemon can mount the firehose and share one bus with the store.
func (s *Service) Obs() *obs.Obs { return s.o }

// emit publishes a lifecycle event. Safe to call with or without s.mu: the
// bus takes only its own lock and never calls back into the service.
func (s *Service) emit(e obs.Event) { s.o.Bus.Publish(e) }

// keyPrefix renders a short content-address prefix for events. Full keys
// are 64 hex chars and belong in the store index, not the firehose.
func keyPrefix(k Key) string { return hex.EncodeToString(k[:6]) }

// observeStage records one pipeline stage's wall time. The registry getter
// is get-or-create, so stages appear as they are first exercised.
func (s *Service) observeStage(stage string, d time.Duration) {
	s.o.Metrics.Histogram("ecss_solve_stage_seconds",
		"Wall time per solver pipeline stage.", nil, obs.L("stage", stage)).
		Observe(d.Seconds())
}

// registerMetrics creates the service's native instruments and registers
// the collector that exports the Stats snapshot at scrape time.
func (s *Service) registerMetrics() {
	m := s.o.Metrics
	s.solveHist = m.Histogram("ecss_solve_seconds",
		"Solve wall time from worker pickup to terminal state.", nil)
	m.Collect(func(emit func(obs.Sample)) {
		st := s.Stats()
		c := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: v, Labels: labels})
		}
		g := func(name, help string, v float64, labels ...obs.Label) {
			emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v, Labels: labels})
		}
		c("ecss_jobs_submitted_total", "Submissions passing input validation.", float64(st.Submitted))
		c("ecss_jobs_completed_total", "Jobs whose solve finished successfully.", float64(st.Completed))
		c("ecss_jobs_failed_total", "Jobs whose solve failed terminally.", float64(st.Failed))
		c("ecss_solves_total", "Jobs that executed the solver pipeline.", float64(st.Solves))
		c("ecss_solve_retries_total", "Extra solve attempts after retryable failures.", float64(st.Retries))
		c("ecss_panics_recovered_total", "Solver panics converted to per-job errors.", float64(st.PanicsRecovered))
		c("ecss_cache_hits_total", "Submissions served from the in-memory result cache.", float64(st.CacheHits))
		c("ecss_coalesced_total", "Submissions attached to an identical in-flight job.", float64(st.Coalesced))
		c("ecss_store_hits_total", "Submissions served from the disk store on a memory miss.", float64(st.StoreHits))
		c("ecss_rejected_total", "Admission rejections by reason.", float64(st.RejectedFull), obs.L("reason", "queue_full"))
		c("ecss_rejected_total", "Admission rejections by reason.", float64(st.RejectedDraining), obs.L("reason", "draining"))
		g("ecss_queue_depth", "Jobs admitted but not yet picked up by a worker.", float64(st.QueueDepth))
		g("ecss_inflight", "Distinct content keys queued or being solved.", float64(st.Inflight))
		g("ecss_cache_entries", "Entries in the in-memory result cache.", float64(st.CacheEntries))
		c("ecss_pool_creates_total", "Networks built because the pool had no twin.", float64(st.Pool.Creates))
		c("ecss_pool_reuses_total", "Solves served by a pooled network.", float64(st.Pool.Reuses))
		c("ecss_pool_evictions_total", "Idle networks closed to respect the pool bound.", float64(st.Pool.Evictions))
		g("ecss_pool_idle", "Idle networks held by the pool.", float64(st.Pool.Idle))
		for class, cs := range st.Classes {
			l := obs.L("class", class)
			c("ecss_class_submitted_total", "Submissions per priority class.", float64(cs.Submitted), l)
			g("ecss_class_queued", "Currently queued jobs per priority class.", float64(cs.Queued), l)
			c("ecss_class_shed_total", "Queued jobs shed for higher-priority admissions.", float64(cs.Shed), l)
			c("ecss_class_expired_total", "Jobs dropped past their deadline.", float64(cs.Expired), l)
			c("ecss_class_canceled_total", "Queued jobs abandoned by every watcher.", float64(cs.Canceled), l)
			c("ecss_class_rejected_full_total", "Queue-full rejections per class.", float64(cs.RejectedFull), l)
		}
		if ss := st.Store; ss != nil {
			c("ecss_store_gets_total", "Store lookups by outcome.", float64(ss.Hits), obs.L("outcome", "hit"))
			c("ecss_store_gets_total", "Store lookups by outcome.", float64(ss.Misses), obs.L("outcome", "miss"))
			c("ecss_store_puts_total", "Entries accepted for write.", float64(ss.Puts))
			c("ecss_store_dup_puts_total", "Writes skipped: content already stored.", float64(ss.DupPuts))
			c("ecss_store_evictions_total", "Entries evicted to respect the byte budget.", float64(ss.Evictions))
			c("ecss_store_corruptions_total", "Damaged entries or index records detected.", float64(ss.Corruptions))
			c("ecss_store_write_errors_total", "Puts the writer could not persist.", float64(ss.WriteErrors))
			c("ecss_store_quarantined_total", "Entry files moved into quarantine.", float64(ss.Quarantined))
			c("ecss_store_restored_total", "Quarantined entries proved intact and restored.", float64(ss.Restored))
			c("ecss_store_reverify_deleted_total", "Quarantined files deleted after repeated failures.", float64(ss.ReverifyDeleted))
			c("ecss_store_touch_drops_total", "Atime touch records dropped on a saturated writer queue.", float64(ss.TouchDrops))
			g("ecss_store_entries", "Live on-disk entries.", float64(ss.Entries))
			g("ecss_store_bytes", "Live on-disk payload bytes.", float64(ss.Bytes))
			c("ecss_store_mmap_maps_total", "Object files mapped and checksum-verified for zero-copy serving.", float64(ss.Mmap.Maps))
			c("ecss_store_mmap_fallbacks_total", "Reads served by a private heap copy because mmap was unavailable.", float64(ss.Mmap.Fallbacks))
			c("ecss_store_mmap_pins_total", "View pins taken on mapped entries.", float64(ss.Mmap.Pins))
			c("ecss_store_mmap_unpins_total", "View pins released.", float64(ss.Mmap.Unpins))
			c("ecss_store_mmap_unmap_deferred_total", "Evictions that found the entry pinned and deferred cleanup to the last release.", float64(ss.Mmap.UnmapDeferred))
			g("ecss_store_mmap_active", "Currently mapped object files, including doomed maps kept alive by pins.", float64(ss.Mmap.ActiveMaps))
			g("ecss_store_mmap_bytes", "Bytes of currently mapped object files.", float64(ss.Mmap.MappedBytes))
		}
		for point, ps := range st.Faults {
			l := obs.L("point", point)
			c("ecss_fault_hits_total", "Fault-point traversals while a plan is armed.", float64(ps.Hits), l)
			c("ecss_fault_fires_total", "Faults actually injected.", float64(ps.Fires), l)
		}
	})
}

// TraceResponse is the JSON view of one job's event timeline at
// GET /v1/jobs/{id}/trace.
type TraceResponse struct {
	JobID string `json:"job_id"`
	// RequestID is the id the job's trace began under ("" for jobs adopted
	// at pre-warm, or when the trace has been evicted).
	RequestID string `json:"request_id,omitempty"`
	// Complete reports whether the trace ends in a terminal event. False
	// also covers evicted traces: Events then narrates less than the whole
	// lifecycle.
	Complete bool        `json:"complete"`
	Events   []obs.Event `json:"events"`
}

func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.JobInfo(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	tr := s.o.Bus.Trace(id)
	resp := TraceResponse{JobID: id, Events: tr}
	if len(tr) > 0 {
		resp.RequestID = tr[0].Req
		resp.Complete = tr[len(tr)-1].Terminal
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var terminal bool
	var ev obs.Event
	if ok {
		terminal = j.status == StatusDone || j.status == StatusFailed
		if terminal {
			ev = obs.Event{Type: obs.EvJobDone, Job: j.id, Req: j.req, Class: j.priority.String(),
				MS: float64(j.finished.Sub(j.started)) / float64(time.Millisecond), Terminal: true}
			if j.err != nil {
				ev.Type, ev.Err = obs.EvJobFailed, j.err.Error()
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if terminal && len(s.o.Bus.Trace(id)) == 0 {
		// The job finished but its trace has been evicted: still honor the
		// contract that a stream ends in a terminal event by synthesizing
		// one from the job record instead of hanging on a silent bus.
		obs.ServeOneEvent(w, ev)
		return
	}
	s.o.Bus.ServeJobStream(w, r, id)
}
