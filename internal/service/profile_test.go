package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"twoecss/internal/ecss"
	"twoecss/internal/obs"
)

// TestJobProfileEndToEnd is the tentpole acceptance test at the service
// layer: a cold solve retains a non-empty round timeline with per-stage
// engine costs, serves it at /v1/jobs/{id}/profile, bills the process
// engine ledger, and exposes validated ecss_engine_* and ecss_slo_*
// families on /metrics.
func TestJobProfileEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	j, hit, err := s.Submit(testGraph(t, 3), ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID() + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d", resp.StatusCode)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.JobID != j.ID() || pr.Status != StatusDone || pr.Profile == nil {
		t.Fatalf("profile response %+v", pr)
	}
	p := pr.Profile
	if len(p.Rounds) == 0 || p.RoundsObserved <= 0 || p.Stride < 1 {
		t.Fatalf("empty round timeline: %+v", p)
	}
	// Samples are an evenly spaced timeline on the stride grid.
	for i, sm := range p.Rounds {
		if want := int64(i)*p.Stride + 1; sm.Round != want {
			t.Fatalf("sample %d at round %d, want %d (stride %d)", i, sm.Round, want, p.Stride)
		}
	}
	wantStages := []string{"bfs", "mst", "tap", "assemble"}
	if len(p.Stages) != len(wantStages) {
		t.Fatalf("stages %+v", p.Stages)
	}
	var stageRounds, stageMsgs int64
	for i, sc := range p.Stages {
		if sc.Stage != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, sc.Stage, wantStages[i])
		}
		stageRounds += sc.SimulatedRounds + sc.ChargedRounds
		stageMsgs += sc.Messages
	}
	if stageRounds <= 0 || stageMsgs <= 0 {
		t.Fatalf("stage costs empty: rounds=%d msgs=%d", stageRounds, stageMsgs)
	}
	// The sampled timeline's rounds are a subset of the simulated rounds the
	// stages billed (charged rounds are not simulated, so compare to the
	// simulated portion).
	var sim int64
	for _, sc := range p.Stages {
		sim += sc.SimulatedRounds
	}
	if p.RoundsObserved != sim {
		t.Fatalf("observed %d rounds, stage deltas bill %d simulated", p.RoundsObserved, sim)
	}

	// Process ledger and terminal event carry the same engine dimensions.
	st := s.Stats()
	if st.Engine.SimulatedRounds != sim || st.Engine.Messages != stageMsgs || st.Engine.ProfiledSolves != 1 {
		t.Fatalf("engine ledger %+v, want sim=%d msgs=%d profiled=1", st.Engine, sim, stageMsgs)
	}
	var doneRounds, stageEvents int64
	for _, ev := range s.Obs().Bus.Trace(j.ID()) {
		switch ev.Type {
		case obs.EvJobStage:
			stageEvents++
			if ev.Rounds < 0 || ev.Msgs < 0 || ev.Stage == "" {
				t.Fatalf("job.stage event missing dimensions: %+v", ev)
			}
		case obs.EvJobDone:
			doneRounds = ev.Rounds
		}
	}
	if stageEvents != int64(len(wantStages)) {
		t.Fatalf("%d job.stage events, want %d", stageEvents, len(wantStages))
	}
	if doneRounds != stageRounds {
		t.Fatalf("job.done rounds %d, want %d", doneRounds, stageRounds)
	}

	// /metrics exposes the engine and SLO families and still validates.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	doc, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(doc); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, fam := range []string{
		"ecss_engine_rounds_total", "ecss_engine_messages_total", "ecss_engine_words_total",
		"ecss_engine_profiled_solves_total", "ecss_engine_solve_rounds", "ecss_engine_solve_messages",
		"ecss_engine_stage_rounds", "ecss_engine_stage_messages",
		"ecss_slo_burn_rate", "ecss_slo_objective",
	} {
		if !strings.Contains(string(doc), fam) {
			t.Fatalf("/metrics missing family %s", fam)
		}
	}
	if sum, ok := obs.SumSeries(doc, "ecss_engine_rounds_total"); !ok || sum != float64(stageRounds) {
		t.Fatalf("ecss_engine_rounds_total sums to %.0f (ok=%v), want %d", sum, ok, stageRounds)
	}

	// Unknown job: 404. Cached rerun: served without a solve, profile of the
	// original job still addressable.
	if resp, err := http.Get(srv.URL + "/v1/jobs/nope/profile"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job profile: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

func TestProfileDisabledAndCachedJobs(t *testing.T) {
	s := New(Config{Workers: 1, ProfileRounds: -1})
	defer drain(t, s)
	j, _, err := s.Submit(testGraph(t, 4), ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	s.mu.Lock()
	prof := j.profile
	s.mu.Unlock()
	if prof != nil {
		t.Fatalf("profiling disabled but profile retained: %+v", prof)
	}
	// Engine ledger still fills: stage deltas do not depend on the recorder.
	if st := s.Stats(); st.Engine.SimulatedRounds == 0 || st.Engine.ProfiledSolves != 0 {
		t.Fatalf("engine ledger %+v", st.Engine)
	}
}
