package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"twoecss/internal/ecss"
	"twoecss/internal/faults"
	"twoecss/internal/store"
)

func openStore(t *testing.T, dir string, maxBytes int64) *store.Store {
	t.Helper()
	st, err := store.Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// TestRestartServesFromStoreEndToEnd is the PR's acceptance test: fill a
// disk-backed service through the HTTP API, drain it, start a fresh Service
// on the same directory, and every previously solved instance must be
// served byte-identically with zero solver invocations.
func TestRestartServesFromStoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	const instances = 5

	s1 := New(Config{Workers: 2, Store: openStore(t, dir, 0)})
	srv1 := httptest.NewServer(s1.Handler())
	first := make(map[int][]byte)
	for seed := 1; seed <= instances; seed++ {
		req := SolveRequest{Graph: WireGraph(testGraph(t, int64(seed))), Wait: true}
		code, resp := postSolve(t, srv1, req)
		if code != http.StatusOK || resp.Status != StatusDone {
			t.Fatalf("seed %d cold solve: code=%d resp=%+v", seed, code, resp)
		}
		first[seed] = resp.Result
	}
	if st := s1.Stats(); st.Solves != instances || st.Store == nil {
		t.Fatalf("cold stats %+v, want %d solves on a store-backed service", st, instances)
	}
	srv1.Close()
	drain(t, s1) // flushes and closes the store

	// Fresh process image: new store replay, new service, same directory.
	s2 := New(Config{Workers: 2, Store: openStore(t, dir, 0)})
	defer drain(t, s2)
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	for seed := 1; seed <= instances; seed++ {
		req := SolveRequest{Graph: WireGraph(testGraph(t, int64(seed))), Wait: true}
		code, resp := postSolve(t, srv2, req)
		if code != http.StatusOK || resp.Status != StatusDone || !resp.Cached {
			t.Fatalf("seed %d warm solve: code=%d resp=%+v", seed, code, resp)
		}
		if !bytes.Equal(resp.Result, first[seed]) {
			t.Fatalf("seed %d warm result differs from pre-restart bytes", seed)
		}
	}
	st := s2.Stats()
	if st.Solves != 0 {
		t.Fatalf("warm restart ran %d solves, want 0 (stats %+v)", st.Solves, st)
	}
	if st.CacheHits != instances {
		t.Fatalf("warm restart served %d cache hits, want %d (pre-warm)", st.CacheHits, instances)
	}
}

// TestStoreHitWithoutMemoryCache pins the disk-fallback path: with the
// memory cache disabled there is no pre-warm, so a warm restart must serve
// via store.Get and count StoreHits.
func TestStoreHitWithoutMemoryCache(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 1)

	s1 := New(Config{Workers: 1, Store: openStore(t, dir, 0)})
	j, _, err := s1.Submit(g, ecss.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	want := s1.snapshot(j).Result
	if len(want) == 0 {
		t.Fatal("cold solve produced no result")
	}
	drain(t, s1)

	s2 := New(Config{Workers: 1, CacheEntries: -1, Store: openStore(t, dir, 0)})
	defer drain(t, s2)
	j2, hit, err := s2.Submit(g, ecss.DefaultOptions())
	if err != nil || !hit {
		t.Fatalf("warm submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j2)
	if got := s2.snapshot(j2).Result; !bytes.Equal(got, want) {
		t.Fatal("store-served result differs from the original solve")
	}
	st := s2.Stats()
	if st.StoreHits != 1 || st.Solves != 0 || st.CacheHits != 0 {
		t.Fatalf("stats %+v, want exactly 1 store hit and no solve", st)
	}
}

// TestRestartQuarantinesCorruptEntry: damage one persisted entry between
// runs; the restarted service must re-solve exactly that instance and keep
// serving the rest warm.
func TestRestartQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	const instances = 4
	s1 := New(Config{Workers: 2, Store: openStore(t, dir, 0)})
	keys := make(map[int][32]byte)
	for seed := 1; seed <= instances; seed++ {
		j, _, err := s1.Submit(testGraph(t, int64(seed)), ecss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		keys[seed] = [32]byte(j.key)
	}
	drain(t, s1)

	// Flip a payload byte of seed 2's entry on disk.
	corruptKey := keys[2]
	path := filepath.Join(dir, "objects", fmt.Sprintf("%x.res", corruptKey[:]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, 0)
	if sst := st2.Stats(); sst.Corruptions != 1 || sst.Entries != instances-1 {
		t.Fatalf("reopen stats %+v, want 1 quarantined / %d survivors", sst, instances-1)
	}
	s2 := New(Config{Workers: 2, Store: st2})
	defer drain(t, s2)
	for seed := 1; seed <= instances; seed++ {
		j, hit, err := s2.Submit(testGraph(t, int64(seed)), ecss.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		wantHit := seed != 2
		if hit != wantHit {
			t.Fatalf("seed %d: hit=%v, want %v", seed, hit, wantHit)
		}
		waitJob(t, j)
		if snap := s2.snapshot(j); snap.Status != StatusDone {
			t.Fatalf("seed %d: %+v", seed, snap)
		}
	}
	if st := s2.Stats(); st.Solves != 1 {
		t.Fatalf("re-solved %d instances, want exactly the quarantined one (stats %+v)", st.Solves, st)
	}
}

// TestCorruptionUnderLiveTrafficHealed is the steady-state self-healing
// test: an object damaged while the service keeps serving (not between
// restarts) must be quarantined on first touch, transparently re-solved with
// byte-identical results, and — after a reverifier pass clears the
// spuriously-quarantined intact copy — served from the store again.
func TestCorruptionUnderLiveTrafficHealed(t *testing.T) {
	dir := t.TempDir()
	// No memory cache: every submit consults the store, so disk damage is
	// visible to live traffic immediately.
	s := New(Config{Workers: 2, CacheEntries: -1, Store: openStore(t, dir, 0)})
	defer drain(t, s)
	g := testGraph(t, 1)

	j1, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("cold submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j1)
	want := s.snapshot(j1).Result
	if len(want) == 0 {
		t.Fatal("cold solve produced no result")
	}
	if err := s.store.Flush(); err != nil {
		t.Fatal(err)
	}

	// Damage the object in place, mid-flight.
	key := [32]byte(j1.key)
	path := filepath.Join(dir, "objects", fmt.Sprintf("%x.res", key[:]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Next request: the corrupt read quarantines, misses, and re-solves to
	// the same bytes — the client never sees the damage.
	j2, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("post-corruption submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j2)
	if got := s.snapshot(j2).Result; !bytes.Equal(got, want) {
		t.Fatal("re-solved result differs from the original bytes")
	}
	st := s.Stats()
	if st.Solves != 2 || st.StoreHits != 0 {
		t.Fatalf("stats %+v, want 2 solves and no store hit yet", st)
	}
	if st.Store.Corruptions != 1 || st.Store.Quarantined != 1 {
		t.Fatalf("store stats %+v, want the damage quarantined", st.Store)
	}
	if err := s.store.Flush(); err != nil {
		t.Fatal(err)
	}

	// A transient read fault now quarantines the freshly rewritten, intact
	// object (overwriting the corrupt quarantine copy of the same key)...
	armFaults(t, "store.read:error,count=1")
	j3, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || hit {
		t.Fatalf("faulted submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j3)
	if got := s.snapshot(j3).Result; !bytes.Equal(got, want) {
		t.Fatal("third solve differs from the original bytes")
	}
	faults.Disarm()
	if err := s.store.Flush(); err != nil {
		t.Fatal(err)
	}

	// ...which the reverifier proves clean and clears.
	if restored, deleted := s.store.Reverify(); restored != 1 || deleted != 0 {
		t.Fatalf("Reverify = (%d, %d), want (1, 0)", restored, deleted)
	}

	// With the store whole again, the next request is a disk hit.
	j4, hit, err := s.Submit(g, ecss.DefaultOptions())
	if err != nil || !hit {
		t.Fatalf("healed submit: hit=%v err=%v", hit, err)
	}
	waitJob(t, j4)
	if got := s.snapshot(j4).Result; !bytes.Equal(got, want) {
		t.Fatal("store-served result differs from the original bytes")
	}
	st = s.Stats()
	if st.StoreHits != 1 || st.Solves != 3 || st.Store.Restored != 1 {
		t.Fatalf("final stats %+v / store %+v, want a store hit after healing", st, st.Store)
	}
}

// TestReadOnlySharedServing covers the router-shard deployment shape: one
// writable service fills a store directory, then two read-only services open
// the same warm directory concurrently and both must serve every instance
// byte-identically over HTTP with zero solver invocations and zero writes —
// the directory (index and all) stays byte-for-byte untouched.
func TestReadOnlySharedServing(t *testing.T) {
	dir := t.TempDir()
	const instances = 4

	s1 := New(Config{Workers: 2, Store: openStore(t, dir, 0)})
	srv1 := httptest.NewServer(s1.Handler())
	first := make(map[int][]byte)
	for seed := 1; seed <= instances; seed++ {
		req := SolveRequest{Graph: WireGraph(testGraph(t, int64(seed))), Wait: true}
		code, resp := postSolve(t, srv1, req)
		if code != http.StatusOK || resp.Status != StatusDone {
			t.Fatalf("seed %d cold solve: code=%d resp=%+v", seed, code, resp)
		}
		first[seed] = resp.Result
	}
	srv1.Close()
	drain(t, s1)
	indexBefore, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}

	openRO := func() *store.Store {
		st, err := store.OpenWith(dir, store.Options{ReadOnly: true})
		if err != nil {
			t.Fatalf("read-only open: %v", err)
		}
		return st
	}
	shards := []*Service{
		New(Config{Workers: 1, Store: openRO()}),
		New(Config{Workers: 1, Store: openRO()}),
	}
	for i, sh := range shards {
		srv := httptest.NewServer(sh.Handler())
		for seed := 1; seed <= instances; seed++ {
			req := SolveRequest{Graph: WireGraph(testGraph(t, int64(seed))), Wait: true}
			code, resp := postSolve(t, srv, req)
			if code != http.StatusOK || resp.Status != StatusDone || !resp.Cached {
				t.Fatalf("shard %d seed %d: code=%d resp=%+v", i, seed, code, resp)
			}
			if !bytes.Equal(resp.Result, first[seed]) {
				t.Fatalf("shard %d seed %d result differs from the writer's bytes", i, seed)
			}
		}
		srv.Close()
		st := sh.Stats()
		if st.Solves != 0 {
			t.Fatalf("shard %d ran %d solves off a warm read-only store, want 0", i, st.Solves)
		}
		if st.Store.Puts != 0 {
			t.Fatalf("shard %d issued %d puts against a read-only store", i, st.Store.Puts)
		}
	}
	for _, sh := range shards {
		drain(t, sh)
	}
	if after, err := os.ReadFile(filepath.Join(dir, "index.log")); err != nil || !bytes.Equal(indexBefore, after) {
		t.Fatalf("read-only shards mutated the shared index (err=%v)", err)
	}
}

// TestTortureConcurrentSubmitEvictDrain is the satellite race/torture test
// (run under -race in CI): many goroutines hammer Submit — duplicate keys,
// distinct keys, enough volume to trigger disk eviction — while Drain cuts
// admission mid-flight. Afterwards the store must reopen with a replayable,
// corruption-free index, and with an unbounded twin store every completed
// job must be durably readable byte-for-byte (no lost writes).
func TestTortureConcurrentSubmitEvictDrain(t *testing.T) {
	for _, tc := range []struct {
		name     string
		maxBytes int64
	}{
		{name: "unbounded", maxBytes: 0},
		// A few entries of budget: puts constantly evict.
		{name: "eviction-pressure", maxBytes: 4096},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := New(Config{Workers: 4, QueueDepth: 64, Store: openStore(t, dir, tc.maxBytes)})

			const submitters = 8
			var (
				mu   sync.Mutex
				done = make(map[[32]byte][]byte) // key -> payload
			)
			var wg sync.WaitGroup
			for w := 0; w < submitters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						// Seeds overlap across goroutines: coalescing and
						// cache hits race with fresh solves and eviction.
						seed := int64(1 + (w*7+i)%13)
						j, _, err := s.Submit(testGraph(t, seed), ecss.DefaultOptions())
						if err != nil {
							return // draining or queue-full: stop submitting
						}
						select {
						case <-j.Done():
						case <-time.After(60 * time.Second):
							t.Error("job stuck")
							return
						}
						snap := s.snapshot(j)
						if snap.Status != StatusDone {
							t.Errorf("seed %d failed: %s", seed, snap.Error)
							return
						}
						mu.Lock()
						done[[32]byte(j.key)] = snap.Result
						mu.Unlock()
					}
				}(w)
			}
			// Cut admission while submitters are mid-flight.
			time.Sleep(50 * time.Millisecond)
			drain(t, s)
			wg.Wait()
			if len(done) == 0 {
				t.Fatal("no job completed before drain")
			}

			// The index must replay cleanly after the concurrent churn.
			re := openStore(t, dir, tc.maxBytes)
			defer re.Close()
			sst := re.Stats()
			if sst.Corruptions != 0 {
				t.Fatalf("replayed index reports %d corruptions (stats %+v)", sst.Corruptions, sst)
			}
			if tc.maxBytes > 0 {
				// Budget enforced, modulo the keep-one rule for a single
				// oversized entry.
				if sst.Entries < 1 || (sst.Bytes > tc.maxBytes && sst.Entries > 1) {
					t.Fatalf("budget not enforced across restart: %+v", sst)
				}
				// Whatever survived eviction must be byte-identical.
				for k, want := range done {
					if got, ok := re.Get(k); ok && !bytes.Equal(got, want) {
						t.Fatalf("surviving key %x altered", k[:4])
					}
				}
			} else {
				// Unbounded: every completed job's write must have survived
				// the drain — nothing lost, bytes identical.
				if sst.Entries != len(done) {
					t.Fatalf("store holds %d entries, want %d completed keys", sst.Entries, len(done))
				}
				for k, want := range done {
					got, ok := re.Get(k)
					if !ok || !bytes.Equal(got, want) {
						t.Fatalf("completed key %x lost or altered (ok=%v)", k[:4], ok)
					}
				}
			}
		})
	}
}
