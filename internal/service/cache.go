package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"

	"twoecss/internal/ecss"
)

// Key is the content address of a solve: SHA-256 over the canonical graph
// digest (graph.Hash) concatenated with the result-relevant Options fields.
// Execution knobs (Workers, Progress) are excluded — the engine is
// deterministic for any worker count (DESIGN.md §3.4), so they cannot
// change the result.
type Key [32]byte

func keyFor(graphHash [32]byte, opt ecss.Options) Key {
	var buf [64]byte
	copy(buf[:32], graphHash[:])
	blob := optionsBlob(opt)
	copy(buf[32:], blob[:])
	return sha256.Sum256(buf[:])
}

// optionsBlob is the fixed-width encoding of the result-relevant options:
// the second half of the key preimage, and the Options field persisted in
// every store entry header so on-disk files are self-describing.
func optionsBlob(opt ecss.Options) (b [32]byte) {
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(opt.Eps))
	binary.LittleEndian.PutUint64(b[8:], uint64(opt.Variant))
	binary.LittleEndian.PutUint64(b[16:], uint64(opt.MST))
	binary.LittleEndian.PutUint64(b[24:], uint64(opt.Root))
	return b
}

// jobCache is an LRU of completed jobs addressed by Key. It is not
// self-locking: the Service serializes access under its own mutex, which
// also keeps cache insertion atomic with in-flight table removal.
type jobCache struct {
	capN int
	m    map[Key]*list.Element
	ll   *list.List // front = most recently used
}

type cacheEntry struct {
	key Key
	job *Job
}

func newJobCache(capN int) *jobCache {
	return &jobCache{capN: capN, m: make(map[Key]*list.Element), ll: list.New()}
}

func (c *jobCache) get(key Key) (*Job, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).job, true
}

// put inserts a completed job and returns the evicted job, if any, so the
// caller can drop its id from the job table.
func (c *jobCache) put(key Key, j *Job) *Job {
	if c.capN <= 0 {
		return j
	}
	if el, ok := c.m[key]; ok {
		// One in-flight job per key makes this unreachable in the service,
		// but keep the cache self-consistent for direct use.
		old := el.Value.(*cacheEntry).job
		el.Value.(*cacheEntry).job = j
		c.ll.MoveToFront(el)
		if old != j {
			return old
		}
		return nil
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, job: j})
	if c.ll.Len() <= c.capN {
		return nil
	}
	back := c.ll.Back()
	c.ll.Remove(back)
	ev := back.Value.(*cacheEntry)
	delete(c.m, ev.key)
	return ev.job
}

func (c *jobCache) len() int { return c.ll.Len() }
