module twoecss

go 1.24
