// Command bench regenerates every reproduction experiment table (E1-E12,
// see DESIGN.md and EXPERIMENTS.md) and prints them to stdout.
//
// Usage:
//
//	bench [-seed N] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"

	"twoecss/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "random seed for instance generation")
	only := flag.String("only", "", "run a single experiment id (e.g. E3)")
	flag.Parse()

	tables, err := experiments.All(*seed)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t.Render())
	}
	return nil
}
