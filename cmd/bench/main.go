// Command bench regenerates every reproduction experiment table (E1-E12,
// see DESIGN.md) and prints them to stdout. Experiment cells run on a
// worker pool (deterministic output for any pool size); with -json the
// command also records a machine-readable benchmark trajectory point
// (wall time, allocations, engine rounds and messages per experiment).
//
// Usage:
//
//	bench [-seed N] [-only E1,E4] [-workers K] [-json BENCH_PR1.json]
//	      [-store-bench] [-engine-bench]
//
// -only takes a comma-separated list of experiment ids; with no -only every
// experiment runs. -store-bench additionally measures the result store's
// warm read path — zero-copy mmap views vs. the read-and-verify fallback —
// and records ns/op, bytes/op, and allocs/op under "store_get" in the -json
// trajectory. -engine-bench measures the engine round observer's overhead —
// repeated solves on one reused network, disarmed vs armed with a
// profile-sized RoundRecorder — and records wall time, allocations, and the
// engine's round/message bill per solve under "engine_observer".
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"twoecss/internal/congest"
	"twoecss/internal/ecss"
	"twoecss/internal/experiments"
	"twoecss/internal/graph"
	"twoecss/internal/store"
)

// record is one experiment's entry in the benchmark trajectory file.
// TotalNs and TotalAllocs are whole-run totals for one single-shot
// execution of the experiment (wall time and MemStats Mallocs delta), not
// benchstat-style per-operation averages.
type record struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	TotalNs     int64  `json:"total_ns"`
	TotalAllocs uint64 `json:"total_allocs"`
	Rounds      int64  `json:"rounds"`
	Messages    int64  `json:"messages"`
	Rows        int    `json:"rows"`
}

// storeGetRow is one warm-read measurement of the result store: the same
// 1MiB entry fetched repeatedly, either as a pinned mmap view (zero-copy)
// or through the NoMmap fallback that re-reads and re-verifies the file.
type storeGetRow struct {
	Mode         string  `json:"mode"` // "mmap" or "readfile"
	PayloadBytes int64   `json:"payload_bytes"`
	Ops          int     `json:"ops"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// engineObsRow is one engine-observer measurement: the same instance solved
// repeatedly on a reused network with the round observer disarmed (the
// default serving path: one nil-check per round) or armed with a
// RoundRecorder (per-round samples retained, as GET /v1/jobs/{id}/profile
// serves them). Comparing the two rows is the observer's overhead bill.
type engineObsRow struct {
	Mode        string  `json:"mode"` // "disarmed" or "armed"
	N           int     `json:"n"`
	Ops         int     `json:"ops"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	RoundsPerOp int64   `json:"rounds_per_op"` // simulated + charged
	MsgsPerOp   int64   `json:"messages_per_op"`
	SamplesKept int     `json:"samples_kept,omitempty"` // armed: ring occupancy after the last solve
}

// trajectory is the top-level schema of the -json output; future PRs append
// comparable files (BENCH_PR2.json, ...) to track the perf trend.
type trajectory struct {
	Seed           int64          `json:"seed"`
	Workers        int            `json:"workers"`
	GoMaxProcs     int            `json:"gomaxprocs"`
	Experiments    []record       `json:"experiments"`
	StoreGet       []storeGetRow  `json:"store_get,omitempty"`
	EngineObserver []engineObsRow `json:"engine_observer,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "random seed for instance generation")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E4)")
	workers := flag.Int("workers", 0, "experiment-cell worker pool size (<=0: GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark trajectory to this file")
	storeBench := flag.Bool("store-bench", false, "also benchmark the store's warm read path (mmap vs readfile)")
	engineBench := flag.Bool("engine-bench", false, "also benchmark the engine round observer (disarmed vs armed)")
	flag.Parse()

	experiments.Workers = *workers
	specs := experiments.Specs()
	var onlySet map[string]bool
	if *only != "" {
		onlySet = make(map[string]bool)
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			known := false
			for _, sp := range specs {
				if sp.ID == id {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("unknown experiment id %q (known: %s..%s)",
					id, specs[0].ID, specs[len(specs)-1].ID)
			}
			onlySet[id] = true
		}
		if len(onlySet) == 0 {
			return fmt.Errorf("-only %q lists no experiment ids", *only)
		}
	}
	traj := trajectory{Seed: *seed, Workers: *workers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, sp := range specs {
		if onlySet != nil && !onlySet[sp.ID] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		begin := time.Now()
		t, err := sp.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", sp.ID, err)
		}
		elapsed := time.Since(begin)
		runtime.ReadMemStats(&after)
		fmt.Println(t.Render())
		traj.Experiments = append(traj.Experiments, record{
			ID:          t.ID,
			Title:       t.Title,
			TotalNs:     elapsed.Nanoseconds(),
			TotalAllocs: after.Mallocs - before.Mallocs,
			Rounds:      t.Rounds,
			Messages:    t.Messages,
			Rows:        len(t.Rows),
		})
	}
	if *storeBench {
		rows, err := runStoreBench()
		if err != nil {
			return fmt.Errorf("store bench: %w", err)
		}
		traj.StoreGet = rows
		fmt.Println("store warm Get (1MiB payload)")
		fmt.Println("  mode       ops     ns/op    bytes/op  allocs/op")
		for _, r := range rows {
			fmt.Printf("  %-8s %6d %9d %11d %10.1f\n",
				r.Mode, r.Ops, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
	}
	if *engineBench {
		rows, err := runEngineBench(*seed)
		if err != nil {
			return fmt.Errorf("engine bench: %w", err)
		}
		traj.EngineObserver = rows
		fmt.Printf("engine observer overhead (ring n=%d, reused network)\n", rows[0].N)
		fmt.Println("  mode       ops     ns/op  allocs/op  rounds/op    msgs/op  samples")
		for _, r := range rows {
			fmt.Printf("  %-8s %6d %9d %10.1f %10d %10d %8d\n",
				r.Mode, r.Ops, r.NsPerOp, r.AllocsPerOp, r.RoundsPerOp, r.MsgsPerOp, r.SamplesKept)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&traj, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote trajectory to %s\n", *jsonPath)
	}
	return nil
}

// runEngineBench solves the same ring instance repeatedly on one reused
// network — the pooled-network serving path — with the round observer
// disarmed and then armed with a profile-sized RoundRecorder, reporting
// per-solve wall time, allocations, and the engine's own cost counters.
// The disarmed row is the baseline every solve pays; the armed row is what
// -profile-rounds adds per job.
func runEngineBench(seed int64) ([]engineObsRow, error) {
	const n, ops = 96, 20
	g, err := graph.ByFamily("ring", n, seed)
	if err != nil {
		return nil, err
	}
	opt := ecss.DefaultOptions()
	net := congest.NewNetwork(g)
	defer net.Close()
	if _, err := ecss.SolveOn(net, opt); err != nil { // warm engine scratch
		return nil, err
	}

	var rows []engineObsRow
	for _, mode := range []struct {
		name string
		rec  *congest.RoundRecorder
	}{
		{"disarmed", nil},
		{"armed", congest.NewRoundRecorder(512, 1)},
	} {
		var rounds, msgs int64
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		begin := time.Now()
		for i := 0; i < ops; i++ {
			net.ResetAccounting()
			if mode.rec != nil {
				mode.rec.Reset()
				net.Observer = mode.rec
			}
			res, err := ecss.SolveOn(net, opt)
			net.Observer = nil
			if err != nil {
				return nil, fmt.Errorf("%s solve %d: %w", mode.name, i, err)
			}
			rounds += res.Stats.TotalRounds()
			msgs += res.Stats.Messages
		}
		elapsed := time.Since(begin)
		runtime.ReadMemStats(&after)
		row := engineObsRow{
			Mode:        mode.name,
			N:           n,
			Ops:         ops,
			NsPerOp:     elapsed.Nanoseconds() / ops,
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / ops,
			RoundsPerOp: rounds / ops,
			MsgsPerOp:   msgs / ops,
		}
		if mode.rec != nil {
			row.SamplesKept = len(mode.rec.Samples())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runStoreBench measures a warm 1MiB store read in both modes. The "mmap"
// row pins and releases an already-mapped view (the serving hot path after
// PR 9); the "readfile" row opens a NoMmap store, where every Get re-reads
// and re-verifies the object file — the pre-mmap cost model.
func runStoreBench() ([]storeGetRow, error) {
	payload := make([]byte, 0, 1<<20+32)
	block := sha256.Sum256([]byte{42})
	for len(payload) < 1<<20 {
		payload = append(payload, block[:]...)
		block = sha256.Sum256(block[:])
	}
	payload = payload[:1<<20]
	key := sha256.Sum256([]byte("bench-store-get"))
	ghash := sha256.Sum256([]byte("bench-graph"))
	opts := sha256.Sum256([]byte("bench-options"))

	var rows []storeGetRow
	for _, mode := range []struct {
		name   string
		noMmap bool
		ops    int
	}{
		{"mmap", false, 20000},
		{"readfile", true, 200},
	} {
		dir, err := os.MkdirTemp("", "bench-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		s, err := store.OpenWith(dir, store.Options{NoMmap: mode.noMmap})
		if err != nil {
			return nil, err
		}
		if err := s.Put(key, ghash, opts, payload); err != nil {
			return nil, err
		}
		if err := s.Flush(); err != nil {
			return nil, err
		}
		get := func() error {
			v, ok := s.GetView(key)
			if !ok {
				return fmt.Errorf("%s: warm GetView missed", mode.name)
			}
			if len(v.Bytes()) != len(payload) {
				return fmt.Errorf("%s: short view", mode.name)
			}
			v.Release()
			return nil
		}
		if err := get(); err != nil { // warm the mapping / page cache
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		begin := time.Now()
		for i := 0; i < mode.ops; i++ {
			if err := get(); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(begin)
		runtime.ReadMemStats(&after)
		if err := s.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, storeGetRow{
			Mode:         mode.name,
			PayloadBytes: int64(len(payload)),
			Ops:          mode.ops,
			NsPerOp:      elapsed.Nanoseconds() / int64(mode.ops),
			BytesPerOp:   int64((after.TotalAlloc - before.TotalAlloc)) / int64(mode.ops),
			AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(mode.ops),
		})
	}
	return rows, nil
}
