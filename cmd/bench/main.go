// Command bench regenerates every reproduction experiment table (E1-E12,
// see DESIGN.md) and prints them to stdout. Experiment cells run on a
// worker pool (deterministic output for any pool size); with -json the
// command also records a machine-readable benchmark trajectory point
// (wall time, allocations, engine rounds and messages per experiment).
//
// Usage:
//
//	bench [-seed N] [-only E1,E4] [-workers K] [-json BENCH_PR1.json]
//
// -only takes a comma-separated list of experiment ids; with no -only every
// experiment runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"twoecss/internal/experiments"
)

// record is one experiment's entry in the benchmark trajectory file.
// TotalNs and TotalAllocs are whole-run totals for one single-shot
// execution of the experiment (wall time and MemStats Mallocs delta), not
// benchstat-style per-operation averages.
type record struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	TotalNs     int64  `json:"total_ns"`
	TotalAllocs uint64 `json:"total_allocs"`
	Rounds      int64  `json:"rounds"`
	Messages    int64  `json:"messages"`
	Rows        int    `json:"rows"`
}

// trajectory is the top-level schema of the -json output; future PRs append
// comparable files (BENCH_PR2.json, ...) to track the perf trend.
type trajectory struct {
	Seed        int64    `json:"seed"`
	Workers     int      `json:"workers"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	Experiments []record `json:"experiments"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "random seed for instance generation")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E4)")
	workers := flag.Int("workers", 0, "experiment-cell worker pool size (<=0: GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark trajectory to this file")
	flag.Parse()

	experiments.Workers = *workers
	specs := experiments.Specs()
	var onlySet map[string]bool
	if *only != "" {
		onlySet = make(map[string]bool)
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			known := false
			for _, sp := range specs {
				if sp.ID == id {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("unknown experiment id %q (known: %s..%s)",
					id, specs[0].ID, specs[len(specs)-1].ID)
			}
			onlySet[id] = true
		}
		if len(onlySet) == 0 {
			return fmt.Errorf("-only %q lists no experiment ids", *only)
		}
	}
	traj := trajectory{Seed: *seed, Workers: *workers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, sp := range specs {
		if onlySet != nil && !onlySet[sp.ID] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		begin := time.Now()
		t, err := sp.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", sp.ID, err)
		}
		elapsed := time.Since(begin)
		runtime.ReadMemStats(&after)
		fmt.Println(t.Render())
		traj.Experiments = append(traj.Experiments, record{
			ID:          t.ID,
			Title:       t.Title,
			TotalNs:     elapsed.Nanoseconds(),
			TotalAllocs: after.Mallocs - before.Mallocs,
			Rounds:      t.Rounds,
			Messages:    t.Messages,
			Rows:        len(t.Rows),
		})
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&traj, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote trajectory to %s\n", *jsonPath)
	}
	return nil
}
