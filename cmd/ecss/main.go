// Command ecss runs the (5+eps)-approximation 2-ECSS algorithm of
// Theorem 1.1 end to end on a generated instance and reports the solution,
// its certificate, and the CONGEST round bill per phase.
//
// Usage:
//
//	ecss [-family er|grid|ring|treeleafcycle|random|ba] [-n 256] [-seed 1]
//	     [-eps 0.25] [-variant cover2|cover4] [-boruvka]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"twoecss/internal/ecss"
	"twoecss/internal/graph"
	"twoecss/internal/tap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecss:", err)
		os.Exit(1)
	}
}

func run() error {
	famName := flag.String("family", "er", "graph family ("+strings.Join(graph.Families(), "|")+")")
	n := flag.Int("n", 256, "number of vertices")
	seed := flag.Int64("seed", 1, "generator seed")
	eps := flag.Float64("eps", 0.25, "approximation slack")
	variant := flag.String("variant", "cover2", "reverse-delete variant: cover2|cover4")
	boruvka := flag.Bool("boruvka", false, "simulate the Boruvka MST at message level")
	flag.Parse()

	g, err := graph.ByFamily(*famName, *n, *seed)
	if err != nil {
		return err
	}
	opt := ecss.DefaultOptions()
	opt.Eps = *eps
	switch *variant {
	case "cover2":
		opt.Variant = tap.Cover2
	case "cover4":
		opt.Variant = tap.Cover4
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	if *boruvka {
		opt.MST = ecss.MSTSimulateBoruvka
	}

	res, net, err := ecss.Solve(g, opt)
	if err != nil {
		return err
	}
	defer net.Close()
	if err := ecss.Verify(g, res); err != nil {
		return err
	}
	diam, err := g.DiameterApprox()
	if err != nil {
		return err
	}
	fmt.Printf("instance: family=%s n=%d m=%d D~%d\n", *famName, g.N, g.M(), diam)
	fmt.Printf("solution: %d edges, weight %d (tree %d + augmentation %d)\n",
		len(res.Edges), res.Weight, res.TreeWeight, res.AugWeight)
	fmt.Printf("certificate: lower bound %.1f, certified ratio %.3f (proven bound %.2f)\n",
		res.LowerBound, res.CertifiedRatio, 5+*eps)
	st := net.Stats()
	fmt.Printf("rounds: %d simulated + %d charged = %d total (messages %d)\n",
		st.SimulatedRounds, st.ChargedRounds, st.TotalRounds(), st.Messages)
	fmt.Printf("normalized: %.3f x (D+sqrt n)log^2(n)/eps\n",
		float64(st.TotalRounds())/((float64(diam)+math.Sqrt(float64(g.N)))*
			math.Log2(float64(g.N))*math.Log2(float64(g.N))/(*eps)))
	fmt.Println("phases:")
	for _, ph := range net.Phases() {
		fmt.Printf("  %-22s sim=%-8d charged=%-8d msgs=%d\n", ph.Name, ph.Simulated, ph.Charged, ph.Messages)
	}
	return nil
}
