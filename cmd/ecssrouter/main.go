// Command ecssrouter is the fault-tolerant routing tier in front of N ecssd
// shards (internal/router, DESIGN.md §10). It consistent-hashes each solve
// on the instance's content hash so identical graphs hit the same shard's
// warm cache, health-checks every shard actively (/healthz probes, drain
// detection) and passively (consecutive-failure circuit breaker with
// exponential backoff and half-open trials), retries connect errors and 5xx
// on the next replica with bounded jitter, and hedges requests that outlive
// the EWMA-derived p99 estimate to a second shard — first ack wins, the
// loser is canceled. The solver is deterministic and results are
// content-addressed, so any shard serves byte-identical bytes for a key:
// one shard's kill -9 costs cache warmth, never acknowledged results.
//
//	POST /v1/solve     routed, retried, hedged
//	GET  /v1/jobs/{id} fanned out to eligible shards
//	GET  /v1/jobs/{id}/stream  SSE job stream proxied from the owning shard
//	GET  /v1/jobs/{id}/trace   per-job event trace fanned out to shards
//	GET  /v1/jobs/{id}/profile engine round profile fanned out to shards
//	GET  /v1/events    aggregated firehose: every shard's events, shard-tagged
//	GET  /v1/stats     router + per-shard health, ejections, retries, hedges
//	GET  /metrics      Prometheus text exposition (router + per-shard health,
//	                   shard-tagged ecss_engine_* fleet totals, SLO burn rates)
//	GET  /healthz      200 while >=1 shard eligible; 503 otherwise/draining
//
// SIGINT/SIGTERM marks the router draining (healthz 503), then gracefully
// finishes in-flight forwards and exits 0. -faults (or ECSS_FAULTS) arms
// the shared injection plan; the router wires the router.forward point.
//
// Usage:
//
//	ecssrouter -addr :8080 -shards http://s1:8081,http://s2:8082,... \
//	           [-replicas 2] [-vnodes 64] [-probe-interval 500ms]
//	           [-probe-timeout 2s] [-eject-after 3] [-eject-backoff 500ms]
//	           [-eject-backoff-max 15s] [-hedge-after 0] [-retry-jitter 25ms]
//	           [-slo-latency 2s] [-drain-timeout 30s] [-debug-addr ADDR]
//	           [-faults SPEC]
//
// -debug-addr starts a second listener serving net/http/pprof away from the
// routed API port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"twoecss/internal/faults"
	"twoecss/internal/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecssrouter:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	replicas := flag.Int("replicas", 2, "replica-set size per key")
	vnodes := flag.Int("vnodes", 64, "virtual ring points per shard")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "active health-check period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "health-check timeout")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before ejection")
	ejectBackoff := flag.Duration("eject-backoff", 500*time.Millisecond, "first ejection backoff (doubles per re-ejection)")
	ejectBackoffMax := flag.Duration("eject-backoff-max", 15*time.Second, "ejection backoff ceiling")
	hedgeAfter := flag.Duration("hedge-after", 0, "fixed hedging trigger (0: adaptive EWMA p99 policy)")
	retryJitter := flag.Duration("retry-jitter", 25*time.Millisecond, "max random delay before each retry")
	sloLatency := flag.Duration("slo-latency", 2*time.Second, "route-latency SLO threshold for burn-rate exposition")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	debugAddr := flag.String("debug-addr", "", "pprof/debug listen address (empty: disabled)")
	faultSpec := flag.String("faults", "", "fault-injection plan (overrides ECSS_FAULTS; see internal/faults)")
	flag.Parse()

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("ECSS_FAULTS")
	}
	if spec != "" {
		if err := faults.Arm(spec); err != nil {
			return err
		}
		log.Printf("ecssrouter: fault injection ARMED: %v", faults.Points())
	}

	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	rt, err := router.New(router.Config{
		Replicas:        *replicas,
		VNodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		EjectAfter:      *ejectAfter,
		EjectBackoff:    *ejectBackoff,
		EjectBackoffMax: *ejectBackoffMax,
		HedgeAfter:      *hedgeAfter,
		RetryJitter:     *retryJitter,
		SLOLatency:      *sloLatency,
	}, addrs)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("ecssrouter: debug/pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("ecssrouter: debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: rt.Handler(),
		// No overall Read/WriteTimeout: wait=true solves legitimately block
		// through the forward; header reads and idle conns stay bounded.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("ecssrouter: listening on %s, %d shards %v (replicas=%d)", *addr, len(addrs), addrs, *replicas)

	select {
	case err := <-errCh:
		rt.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills hard

	log.Printf("ecssrouter: signal received, draining (budget %s)", *drainTimeout)
	rt.MarkDraining() // healthz flips to 503 so upstream balancers eject us
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	rt.Close()
	st := rt.Stats()
	log.Printf("ecssrouter: drained clean: %d requests, %d retries, %d hedges (%d won), %d ejections, %d no-shard",
		st.Requests, st.Retries, st.Hedges, st.HedgesWon, st.Ejections, st.NoShard)
	return nil
}
