// Command loadgen drives a live ecssd with a concurrent mixed-graph-family
// workload and reports throughput, latency percentiles, and the cache hit
// ratio. The workload is a matrix of (family, seed) instances generated
// with graph.ByFamily — the same deterministic construction the rest of the
// repository uses — so replaying a seed re-submits a content-identical
// graph and exercises the service's content-addressed cache.
//
// Gates (CI smoke uses these; each <0 value disables its check):
// -min-cache-hits fails unless the server reports at least that many
// memory-cache hits; -min-store-hits does the same for disk-store hits;
// -max-solves fails if the server ran MORE than that many solver
// invocations — `-max-solves 0` against a warm-restarted ecssd asserts that
// every request was served from the persisted store with zero new solves.
// -min-mmap-maps fails unless the stores mapped at least that many entry
// files, asserting the zero-copy read path (not the heap fallback) carried
// the serving.
//
// Chaos mode (-chaos) drives a server with armed fault injection: requests
// carry randomized priority classes and deadlines, and every response is
// classified — acknowledged results, explicit deadline expiries, 429/503
// shedding (whose Retry-After contract is asserted), injected 5xx failures,
// and connection errors are all tolerated, but a failure without an explicit
// error message is not. Acknowledged results are appended to -acked-out as
// "name sha256(result)" lines; a later run with -verify-acked FILE (against
// a restarted server) replays exactly those instances and fails if any is no
// longer served, or served with different bytes — the zero-lost-acks gate.
// -min-acked and -min-restored gate the chaos run itself (the latter polls
// the server until the store reports that many reverifier restores).
//
// Multi-target mode (-targets) spreads the workload round-robin over a
// comma-separated list of servers — ecssd shards directly, or one or more
// ecssrouter fronts — and reports outcomes per target, so a shard loss in a
// kill-one chaos run shows up as that target's counted connection errors
// (and nothing else): never a silent failure. -min-acked-per-target gates
// that every target actually acknowledged work.
//
// Stream mode (-stream) submits with wait=false and consumes each job's
// lifecycle over GET /v1/jobs/{id}/stream instead of polling: the SSE
// stream must open, start with an admission event (job.admitted,
// job.cached, or job.coalesced), carry strictly increasing sequence
// numbers, and end with exactly one terminal event — anything else is a
// protocol violation and fails the run. Terminal job.done / job.cached
// outcomes are confirmed acked via GET /v1/jobs/{id}; explicit expiries,
// sheds, and injected faults are tolerated the same way chaos mode
// tolerates them. -min-streamed gates how many protocol-clean streams the
// run must complete.
//
// -check-metrics (any mode) scrapes GET /metrics from every target after
// the load and fails on an unparseable Prometheus exposition. When metrics
// are scraped (-check-metrics or -min-engine-rounds >= 0) the run also
// reports the fleet's engine cost totals — CONGEST rounds and messages,
// summed over every ecss_engine_rounds_total / ecss_engine_messages_total
// series (a router re-exports its shards' counters shard-tagged, so one
// router target sees the whole fleet) — and -min-engine-rounds fails the
// run unless at least that many engine rounds were consumed, asserting the
// engine telemetry pipeline end to end: solver -> accounting -> registry ->
// exposition.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8080] [-targets URL1,URL2,...]
//	        [-duration 10s] [-concurrency 8]
//	        [-n 96] [-families er,grid,ring,random,ba] [-seeds 4]
//	        [-eps 0.25] [-min-cache-hits -1] [-min-store-hits -1]
//	        [-max-solves -1] [-min-mmap-maps -1] [-check-metrics]
//	        [-min-engine-rounds -1]
//	        [-stream] [-min-streamed -1]
//	        [-chaos] [-acked-out FILE] [-verify-acked FILE]
//	        [-min-acked -1] [-min-restored -1] [-min-acked-per-target -1]
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"maps"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twoecss/internal/graph"
	"twoecss/internal/obs"
	"twoecss/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type workItem struct {
	name string
	req  service.SolveRequest // template; chaos mode varies priority/deadline
	body []byte               // pre-marshaled req for the steady-state path
}

type sample struct {
	ns     int64
	cached bool
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "ecssd base URL")
	targetsFlag := flag.String("targets", "", "comma-separated server base URLs, round-robin per request (overrides -addr)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	n := flag.Int("n", 96, "vertices per instance")
	families := flag.String("families", "er,grid,ring,random,ba", "comma-separated graph families")
	seeds := flag.Int("seeds", 4, "seeds per family (workload matrix size = families x seeds)")
	eps := flag.Float64("eps", 0.25, "approximation slack")
	minCacheHits := flag.Int64("min-cache-hits", -1, "fail unless the server reports at least this many cache hits (<0: no check)")
	minStoreHits := flag.Int64("min-store-hits", -1, "fail unless the server reports at least this many disk-store hits (<0: no check)")
	minMmapMaps := flag.Int64("min-mmap-maps", -1, "fail unless the server stores report at least this many mmapped entry files in total (<0: no check; asserts the zero-copy read path is live)")
	maxSolves := flag.Int64("max-solves", -1, "fail if the server ran more than this many solves (<0: no check; 0 gates a warm restart)")
	stream := flag.Bool("stream", false, "stream mode: submit wait=false and consume per-job SSE streams instead of polling")
	minStreamed := flag.Int64("min-streamed", -1, "stream mode: fail unless at least this many protocol-clean streams completed (<0: no check)")
	checkMetrics := flag.Bool("check-metrics", false, "scrape /metrics from every target after the load and fail on an unparseable exposition")
	minEngineRounds := flag.Int64("min-engine-rounds", -1, "fail unless the targets' /metrics report at least this many engine rounds in total (<0: no check; asserts engine telemetry end to end)")
	chaos := flag.Bool("chaos", false, "chaos mode: mixed priorities and deadlines, fault-tolerant outcome classification")
	ackedOut := flag.String("acked-out", "", "chaos mode: write acknowledged results here as 'name sha256' lines")
	verifyAcked := flag.String("verify-acked", "", "replay the acked file against the server and fail on any lost or altered result")
	minAcked := flag.Int64("min-acked", -1, "chaos mode: fail unless at least this many results were acknowledged (<0: no check)")
	minExpired := flag.Int64("min-expired", -1, "chaos mode: fail unless at least this many requests expired with an explicit deadline error (<0: no check)")
	minRestored := flag.Int64("min-restored", -1, "fail unless the server stores report at least this many reverifier restores in total (<0: no check)")
	minAckedPerTarget := flag.Int64("min-acked-per-target", -1, "chaos mode: fail unless every target acknowledged at least this many results (<0: no check)")
	flag.Parse()

	targets := []string{strings.TrimRight(*addr, "/")}
	if *targetsFlag != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, strings.TrimRight(t, "/"))
			}
		}
		if len(targets) == 0 {
			return fmt.Errorf("-targets %q names no server", *targetsFlag)
		}
	}
	items, err := buildWorkload(*families, *n, *seeds, *eps)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	for _, t := range targets {
		if err := waitHealthy(client, t, 15*time.Second); err != nil {
			return err
		}
	}
	var modeErr error
	switch {
	case *verifyAcked != "":
		// Replay through the first target: via a router that is the whole
		// fleet; against shards directly, any single live one must serve
		// (or deterministically re-produce) every acknowledged byte.
		modeErr = runVerifyAcked(client, targets[0], items, *verifyAcked)
	case *chaos:
		modeErr = runChaos(client, targets, items, *duration, *concurrency, *ackedOut, *minAcked, *minExpired, *minRestored, *minAckedPerTarget)
	case *stream:
		modeErr = runStream(client, targets, items, *duration, *concurrency, *minStreamed)
	default:
		modeErr = runSteady(client, targets, items, *duration, *concurrency, *minCacheHits, *minStoreHits, *maxSolves, *minMmapMaps)
	}
	if modeErr != nil {
		return modeErr
	}
	if *checkMetrics {
		if err := checkAllMetrics(client, targets); err != nil {
			return err
		}
	}
	if *checkMetrics || *minEngineRounds >= 0 {
		return reportEngineTotals(client, targets, *minEngineRounds)
	}
	return nil
}

// reportEngineTotals sums the engine cost counters — CONGEST rounds and
// messages — over every series of the fleet's expositions and gates the run
// on -min-engine-rounds. Against ecssd shards the counters partition the
// fleet's work; against a router they are its shard-tagged re-export of the
// same ledgers, so either target shape sums to the fleet total.
func reportEngineTotals(client *http.Client, targets []string, minEngineRounds int64) error {
	var rounds, msgs float64
	for _, t := range targets {
		resp, err := client.Get(t + "/metrics")
		if err != nil {
			return fmt.Errorf("scrape %s/metrics for engine totals: %w", t, err)
		}
		doc, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return fmt.Errorf("scrape %s/metrics for engine totals: %w", t, rerr)
		}
		if r, ok := obs.SumSeries(doc, "ecss_engine_rounds_total"); ok {
			rounds += r
		}
		if m, ok := obs.SumSeries(doc, "ecss_engine_messages_total"); ok {
			msgs += m
		}
	}
	fmt.Printf("engine:        %.0f rounds, %.0f messages consumed across %d target(s)\n",
		rounds, msgs, len(targets))
	if minEngineRounds >= 0 && int64(rounds) < minEngineRounds {
		return fmt.Errorf("targets report %.0f engine rounds, need >= %d (engine telemetry not flowing)", rounds, minEngineRounds)
	}
	return nil
}

func runSteady(client *http.Client, targets []string, items []workItem, duration time.Duration, concurrency int, minCacheHits, minStoreHits, maxSolves, minMmapMaps int64) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		rr       atomic.Int64 // round-robin target cursor
		samples  []sample
		failures int
		firstErr error
		perOK    = make([]int64, len(targets))
		perFail  = make([]int64, len(targets))
	)
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var local []sample
			localOK := make([]int64, len(targets))
			localFail := make([]int64, len(targets))
			var localErr error
			for time.Now().Before(deadline) {
				it := items[rng.Intn(len(items))]
				ti := int(rr.Add(1)-1) % len(targets)
				t0 := time.Now()
				cached, err := postSolve(client, targets[ti], it.body)
				ns := time.Since(t0).Nanoseconds()
				if err != nil {
					localFail[ti]++
					if localErr == nil {
						localErr = fmt.Errorf("%s via %s: %w", it.name, targets[ti], err)
					}
					continue
				}
				localOK[ti]++
				local = append(local, sample{ns: ns, cached: cached})
			}
			mu.Lock()
			samples = append(samples, local...)
			for i := range targets {
				perOK[i] += localOK[i]
				perFail[i] += localFail[i]
				failures += int(localFail[i])
			}
			if firstErr == nil {
				firstErr = localErr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	if len(samples) == 0 {
		if firstErr != nil {
			return fmt.Errorf("no request succeeded: %w", firstErr)
		}
		return fmt.Errorf("no request completed within %s", duration)
	}
	report(samples, failures, wall, len(items))
	if firstErr != nil {
		fmt.Printf("first error:   %v\n", firstErr)
	}
	if len(targets) > 1 {
		for i, t := range targets {
			fmt.Printf("target %-28s %d ok, %d failed\n", t+":", perOK[i], perFail[i])
		}
	}

	// Gate counters sum over targets: against N shards they partition the
	// traffic; against one router they are its fleet-wide view.
	var total service.Stats
	var totalMmapMaps int64
	for _, t := range targets {
		st, err := fetchStats(client, t)
		if err != nil {
			return fmt.Errorf("fetch server stats from %s: %w", t, err)
		}
		fmt.Printf("server stats:  %s: %d submitted, %d solves, %d cache hits, %d store hits, %d coalesced, %d failed, pool %d/%d reuse/create\n",
			t, st.Submitted, st.Solves, st.CacheHits, st.StoreHits, st.Coalesced, st.Failed, st.Pool.Reuses, st.Pool.Creates)
		if st.Store != nil {
			fmt.Printf("server store:  %s: %d entries / %d bytes, %d hits, %d misses, %d puts, %d evictions, %d corruptions, %d/%d mmap maps/fallbacks, %d touch drops\n",
				t, st.Store.Entries, st.Store.Bytes, st.Store.Hits, st.Store.Misses,
				st.Store.Puts, st.Store.Evictions, st.Store.Corruptions,
				st.Store.Mmap.Maps, st.Store.Mmap.Fallbacks, st.Store.TouchDrops)
			totalMmapMaps += st.Store.Mmap.Maps
		}
		total.Submitted += st.Submitted
		total.Solves += st.Solves
		total.CacheHits += st.CacheHits
		total.StoreHits += st.StoreHits
	}
	if minCacheHits >= 0 && total.CacheHits < minCacheHits {
		return fmt.Errorf("servers report %d cache hits, need >= %d", total.CacheHits, minCacheHits)
	}
	if minStoreHits >= 0 && total.StoreHits < minStoreHits {
		return fmt.Errorf("servers report %d store hits, need >= %d", total.StoreHits, minStoreHits)
	}
	if maxSolves >= 0 && total.Solves > maxSolves {
		return fmt.Errorf("servers ran %d solves, allowed <= %d (cold-served traffic on a warm restart)", total.Solves, maxSolves)
	}
	if minMmapMaps >= 0 && totalMmapMaps < minMmapMaps {
		return fmt.Errorf("server stores report %d mmapped entries, need >= %d (zero-copy read path not exercised)", totalMmapMaps, minMmapMaps)
	}
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}

// streamOutcome classifies one stream-mode request.
type streamOutcome int

const (
	streamAcked     streamOutcome = iota // terminal done/cached, GET confirms done
	streamExpired                        // explicit deadline expiry
	streamTolerated                      // shed / unavailable / injected fault, explicitly reported
	streamConnErr                        // transport error (server may be restarting)
	streamViolation                      // SSE protocol break — the fatal class
)

// admissionEvents are the event types allowed to open a per-job stream:
// every job enters the system by being admitted, served from cache, or
// coalesced onto an in-flight twin.
var admissionEvents = map[string]bool{
	obs.EvJobAdmitted:  true,
	obs.EvJobCached:    true,
	obs.EvJobCoalesced: true,
}

func runStream(client *http.Client, targets []string, items []workItem, duration time.Duration, concurrency int, minStreamed int64) error {
	// Stream-mode bodies submit wait=false: the lifecycle arrives over SSE,
	// not in the POST response.
	bodies := make([][]byte, len(items))
	for i, it := range items {
		req := it.req
		req.Wait = false
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		bodies[i] = b
	}
	var (
		wg             sync.WaitGroup
		mu             sync.Mutex
		rr             atomic.Int64
		streamed       int64 // protocol-clean streams (ended in a terminal event)
		acked          int64
		expired        int64
		tolerated      int64
		connErrs       int64
		violations     int64
		firstViolation error
	)
	deadline := time.Now().Add(duration)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + w)))
			for time.Now().Before(deadline) {
				i := rng.Intn(len(items))
				ti := int(rr.Add(1)-1) % len(targets)
				out, err := streamJob(client, targets[ti], items[i].name, bodies[i])
				mu.Lock()
				switch out {
				case streamAcked:
					streamed++
					acked++
				case streamExpired:
					streamed++
					expired++
				case streamTolerated:
					tolerated++
				case streamConnErr:
					connErrs++
				case streamViolation:
					violations++
					if firstViolation == nil {
						firstViolation = err
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("stream outcomes: %d protocol-clean streams (%d acked, %d expired), %d tolerated, %d conn errors, %d VIOLATIONS\n",
		streamed, acked, expired, tolerated, connErrs, violations)
	if violations > 0 {
		return fmt.Errorf("%d stream protocol violations, first: %w", violations, firstViolation)
	}
	if minStreamed >= 0 && streamed < minStreamed {
		return fmt.Errorf("only %d protocol-clean streams completed, need >= %d", streamed, minStreamed)
	}
	return nil
}

// streamJob submits one wait=false solve and follows its SSE stream to the
// terminal event, validating the stream protocol along the way. The
// returned error is non-nil only for streamViolation outcomes.
func streamJob(client *http.Client, addr, name string, body []byte) (streamOutcome, error) {
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return streamConnErr, nil
	}
	var jr service.JobResponse
	derr := json.NewDecoder(resp.Body).Decode(&jr)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		return streamTolerated, nil
	case resp.StatusCode == http.StatusGatewayTimeout:
		return streamExpired, nil
	case resp.StatusCode >= 500:
		return streamTolerated, nil // injected http-layer fault
	case derr != nil:
		return streamConnErr, nil
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		return streamViolation, fmt.Errorf("%s: submit HTTP %d: %s", name, resp.StatusCode, jr.Error)
	case jr.JobID == "":
		return streamViolation, fmt.Errorf("%s: HTTP %d acknowledged submit without a job id", name, resp.StatusCode)
	}

	sresp, err := client.Get(addr + "/v1/jobs/" + jr.JobID + "/stream")
	if err != nil {
		return streamConnErr, nil
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, sresp.Body)
		return streamViolation, fmt.Errorf("%s: job %s was just acknowledged but its stream answered HTTP %d", name, jr.JobID, sresp.StatusCode)
	}
	var (
		first    = true
		lastSeq  uint64
		terminal *obs.Event
		perr     error
	)
	rerr := obs.ReadSSE(sresp.Body, func(ev obs.SSEvent) error {
		var e obs.Event
		if err := json.Unmarshal(ev.Data, &e); err != nil {
			perr = fmt.Errorf("%s: job %s: undecodable event frame: %w", name, jr.JobID, err)
			return obs.ErrStopSSE
		}
		if terminal != nil {
			perr = fmt.Errorf("%s: job %s: event %s after terminal %s", name, jr.JobID, e.Type, terminal.Type)
			return obs.ErrStopSSE
		}
		if first {
			first = false
			if !admissionEvents[e.Type] {
				perr = fmt.Errorf("%s: job %s: stream opened with %s, want an admission event", name, jr.JobID, e.Type)
				return obs.ErrStopSSE
			}
		}
		// Seq 0 marks a synthesized replay of an evicted trace's terminal
		// event; real bus events carry strictly increasing sequence numbers.
		if e.Seq != 0 {
			if lastSeq != 0 && e.Seq <= lastSeq {
				perr = fmt.Errorf("%s: job %s: seq %d after %d", name, jr.JobID, e.Seq, lastSeq)
				return obs.ErrStopSSE
			}
			lastSeq = e.Seq
		}
		if e.Terminal {
			terminal = &e
		}
		return nil
	})
	switch {
	case perr != nil:
		return streamViolation, perr
	case rerr != nil:
		return streamConnErr, nil
	case terminal == nil:
		return streamViolation, fmt.Errorf("%s: job %s: stream ended without a terminal event", name, jr.JobID)
	}
	switch terminal.Type {
	case obs.EvJobDone, obs.EvJobCached:
		// The stream says done; the job endpoint must agree and hold bytes.
		final, err := fetchJob(client, addr, jr.JobID)
		if err != nil {
			return streamConnErr, nil
		}
		if final.Status != service.StatusDone || len(final.Result) == 0 {
			return streamViolation, fmt.Errorf("%s: job %s: stream ended %s but GET reports status %s with %d result bytes",
				name, jr.JobID, terminal.Type, final.Status, len(final.Result))
		}
		return streamAcked, nil
	case obs.EvJobExpired:
		return streamExpired, nil
	case obs.EvJobShed, obs.EvJobCanceled:
		return streamTolerated, nil
	case obs.EvJobFailed:
		if strings.Contains(terminal.Err, "deadline") {
			return streamExpired, nil
		}
		if terminal.Err == "" {
			return streamViolation, fmt.Errorf("%s: job %s: terminal job.failed carried no error", name, jr.JobID)
		}
		return streamTolerated, nil
	}
	return streamViolation, fmt.Errorf("%s: job %s: unknown terminal event %s", name, jr.JobID, terminal.Type)
}

func fetchJob(client *http.Client, addr, id string) (service.JobResponse, error) {
	var jr service.JobResponse
	resp, err := client.Get(addr + "/v1/jobs/" + id)
	if err != nil {
		return jr, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return jr, err
	}
	if resp.StatusCode != http.StatusOK {
		return jr, fmt.Errorf("GET /v1/jobs/%s: HTTP %d", id, resp.StatusCode)
	}
	return jr, nil
}

// checkAllMetrics scrapes /metrics from every target and validates the
// Prometheus text exposition, failing the run on the first malformed line.
func checkAllMetrics(client *http.Client, targets []string) error {
	for _, t := range targets {
		resp, err := client.Get(t + "/metrics")
		if err != nil {
			return fmt.Errorf("scrape %s/metrics: %w", t, err)
		}
		doc, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return fmt.Errorf("scrape %s/metrics: %w", t, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape %s/metrics: HTTP %d", t, resp.StatusCode)
		}
		st, err := obs.ValidateExposition(doc)
		if err != nil {
			return fmt.Errorf("%s/metrics: malformed exposition: %w", t, err)
		}
		fmt.Printf("metrics:       %s: %d families, %d samples, exposition clean\n", t, st.Families, st.Samples)
	}
	return nil
}

func buildWorkload(families string, n, seeds int, eps float64) ([]workItem, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("need seeds >= 1, got %d", seeds)
	}
	var items []workItem
	for _, fam := range strings.Split(families, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			g, err := graph.ByFamily(fam, n, seed)
			if err != nil {
				return nil, err
			}
			req := service.SolveRequest{
				Graph:   service.WireGraph(g),
				Options: service.OptionsWire{Eps: eps},
				Wait:    true,
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			items = append(items, workItem{
				name: fmt.Sprintf("%s/n%d/s%d", fam, g.N, seed),
				req:  req,
				body: body,
			})
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty workload (families %q)", families)
	}
	return items, nil
}

func waitHealthy(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ecssd at %s not healthy within %s (last: %v)", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postSolve(client *http.Client, addr string, body []byte) (cached bool, err error) {
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var jr service.JobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	// Drain to EOF so the connection is reused; otherwise chunked responses
	// force a fresh dial per request and skew the latency measurement.
	io.Copy(io.Discard, resp.Body)
	if err != nil {
		return false, fmt.Errorf("decode response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, jr.Error)
	}
	if jr.Status != service.StatusDone {
		return false, fmt.Errorf("job %s finished %s: %s", jr.JobID, jr.Status, jr.Error)
	}
	return jr.Cached, nil
}

// chaosTally classifies every chaos-mode response. Only outcomes that are
// silent about their cause are fatal; everything an operator can attribute —
// injected faults, shed load, expired deadlines, dropped connections around
// a restart — is counted and tolerated.
type chaosTally struct {
	acked       int64 // 200, done, result bytes in hand
	expired     int64 // explicit deadline error (504 or failed job)
	shed        int64 // 429 with Retry-After
	unavailable int64 // 503 with Retry-After (draining)
	injected    int64 // 5xx from an armed fault point, or explicit fault error
	connErrs    int64 // transport errors (tolerated: the server may be dying)
	silent      int64 // failures with no explicit error — the fatal class
}

// add accumulates another tally into t.
func (t *chaosTally) add(o chaosTally) {
	t.acked += o.acked
	t.expired += o.expired
	t.shed += o.shed
	t.unavailable += o.unavailable
	t.injected += o.injected
	t.connErrs += o.connErrs
	t.silent += o.silent
}

type ackedRec struct {
	name string
	sum  string // hex sha256 of the result bytes
}

func runChaos(client *http.Client, targets []string, items []workItem, duration time.Duration, concurrency int, ackedOut string, minAcked, minExpired, minRestored, minAckedPerTarget int64) error {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		rr     atomic.Int64 // round-robin target cursor
		tally  chaosTally
		perTgt = make([]chaosTally, len(targets))
		acked  []ackedRec
	)
	deadline := time.Now().Add(duration)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			for time.Now().Before(deadline) {
				it := items[rng.Intn(len(items))]
				ti := int(rr.Add(1)-1) % len(targets)
				req := it.req
				switch r := rng.Float64(); {
				case r < 0.45:
					req.Priority = "interactive"
				case r < 0.80:
					req.Priority = "batch"
				default:
					req.Priority = "background"
				}
				coldEps := rng.Float64() < 0.3
				if coldEps {
					// A fresh eps means a fresh content key: a guaranteed cold
					// solve, so the queue sees real work even after the finite
					// (family, seed) matrix is fully cached.
					req.Options.Eps = 0.2 + 0.3*rng.Float64()
				}
				if rng.Float64() < 0.4 {
					// Deadlines from DOA-tight to comfortably generous, so
					// both the expiry and the success path stay exercised.
					req.DeadlineMS = int64(1 + rng.Intn(500))
				}
				name, sum, out := classifyChaosResponse(client, targets[ti], it.name, req)
				mu.Lock()
				tally.add(out)
				perTgt[ti].add(out)
				// Cold-eps results are not replayable from the acked file
				// (its verify pass re-posts the default-options body), so
				// only template-faithful acks are recorded.
				if out.acked > 0 && !coldEps {
					acked = append(acked, ackedRec{name: name, sum: sum})
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("chaos outcomes: %d acked, %d expired, %d shed (429), %d unavailable (503), %d injected, %d conn errors, %d SILENT\n",
		tally.acked, tally.expired, tally.shed, tally.unavailable, tally.injected, tally.connErrs, tally.silent)
	if len(targets) > 1 {
		// Per-target classification: a killed shard reads as that target's
		// conn errors, attributably, while the others keep acking.
		for i, tgt := range targets {
			o := perTgt[i]
			fmt.Printf("target %-28s %d acked, %d expired, %d shed, %d unavailable, %d injected, %d conn errors, %d SILENT\n",
				tgt+":", o.acked, o.expired, o.shed, o.unavailable, o.injected, o.connErrs, o.silent)
		}
	}
	for _, tgt := range targets {
		st, err := fetchStats(client, tgt)
		if err != nil {
			fmt.Printf("server stats:  %s: unreachable (%v)\n", tgt, err)
			continue
		}
		fmt.Printf("server stats:  %s: %d submitted, %d solves, %d retries, %d panics recovered, %d failed\n",
			tgt, st.Submitted, st.Solves, st.Retries, st.PanicsRecovered, st.Failed)
		for class, cs := range st.Classes {
			fmt.Printf("  class %-12s %d submitted, %d queued, %d shed, %d expired, %d canceled, %d rejected-full\n",
				class+":", cs.Submitted, cs.Queued, cs.Shed, cs.Expired, cs.Canceled, cs.RejectedFull)
		}
		if st.Store != nil {
			fmt.Printf("server store:  %d entries, %d corruptions, %d quarantined (%d failed), %d restored, %d reverify-deleted\n",
				st.Store.Entries, st.Store.Corruptions, st.Store.Quarantined,
				st.Store.QuarantineFails, st.Store.Restored, st.Store.ReverifyDeleted)
		}
		for _, name := range slices.Sorted(maps.Keys(st.Faults)) {
			fmt.Printf("  fault %-18s %d hits, %d fires\n", name+":", st.Faults[name].Hits, st.Faults[name].Fires)
		}
	}

	if ackedOut != "" {
		var b strings.Builder
		for _, rec := range acked {
			fmt.Fprintf(&b, "%s %s\n", rec.name, rec.sum)
		}
		if err := os.WriteFile(ackedOut, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("write acked file: %w", err)
		}
		fmt.Printf("acked file:    %d records -> %s\n", len(acked), ackedOut)
	}
	if tally.silent > 0 {
		return fmt.Errorf("%d failures carried no explicit error — every chaos failure must be attributable", tally.silent)
	}
	if minAcked >= 0 && tally.acked < minAcked {
		return fmt.Errorf("only %d results acknowledged, need >= %d", tally.acked, minAcked)
	}
	if minAckedPerTarget >= 0 {
		for i, tgt := range targets {
			if perTgt[i].acked < minAckedPerTarget {
				return fmt.Errorf("target %s acknowledged only %d results, need >= %d", tgt, perTgt[i].acked, minAckedPerTarget)
			}
		}
	}
	if minExpired >= 0 && tally.expired < minExpired {
		return fmt.Errorf("only %d requests expired with a deadline error, need >= %d", tally.expired, minExpired)
	}
	if minRestored >= 0 {
		// The background reverifiers run on their own clocks; give them a
		// moment. Restores sum across targets (each shard owns a store).
		waitUntil := time.Now().Add(15 * time.Second)
		for {
			restored := int64(0)
			for _, tgt := range targets {
				if st, err := fetchStats(client, tgt); err == nil && st.Store != nil {
					restored += st.Store.Restored
				}
			}
			if restored >= minRestored {
				break
			}
			if time.Now().After(waitUntil) {
				return fmt.Errorf("stores report %d reverifier restores, need >= %d", restored, minRestored)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	return nil
}

// classifyChaosResponse performs one chaos request and buckets its outcome;
// for acknowledged results it returns the item name and result digest.
func classifyChaosResponse(client *http.Client, addr, name string, req service.SolveRequest) (string, string, chaosTally) {
	var out chaosTally
	body, err := json.Marshal(req)
	if err != nil {
		out.silent++
		return name, "", out
	}
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		out.connErrs++
		return name, "", out
	}
	defer resp.Body.Close()
	var jr service.JobResponse
	derr := json.NewDecoder(resp.Body).Decode(&jr)
	io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			out.silent++ // the shed contract promises a retry hint
		} else {
			out.shed++
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") == "" {
			out.silent++
		} else {
			out.unavailable++
		}
	case resp.StatusCode == http.StatusGatewayTimeout:
		out.expired++ // deadline dead on arrival
	case resp.StatusCode >= 500:
		out.injected++ // armed http-layer fault
	case derr != nil:
		out.connErrs++ // truncated response mid-restart
	case jr.Status == service.StatusDone && len(jr.Result) > 0:
		out.acked++
		sum := sha256.Sum256(jr.Result)
		return name, hex.EncodeToString(sum[:]), out
	case jr.Status == service.StatusFailed && strings.Contains(jr.Error, "deadline"):
		out.expired++
	case jr.Error != "":
		out.injected++ // recovered panic / injected fault, explicitly reported
	default:
		out.silent++
	}
	return name, "", out
}

// runVerifyAcked replays every acknowledged record from a previous chaos run
// and fails on the first lost or altered result: the zero-lost-acks gate.
func runVerifyAcked(client *http.Client, addr string, items []workItem, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read acked file: %w", err)
	}
	byName := make(map[string]workItem, len(items))
	for _, it := range items {
		byName[it.name] = it
	}
	seen := make(map[string]string) // name -> expected sum (dedup replays)
	verified := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, sum, ok := strings.Cut(line, " ")
		if !ok {
			return fmt.Errorf("%s:%d: malformed record %q", path, lineNo+1, line)
		}
		if prev, dup := seen[name]; dup {
			if prev != sum {
				return fmt.Errorf("%s acknowledged with two different digests (%s vs %s)", name, prev[:12], sum[:12])
			}
			continue
		}
		seen[name] = sum
		it, ok := byName[name]
		if !ok {
			return fmt.Errorf("acked item %q not in this workload (check -families/-n/-seeds match the chaos run)", name)
		}
		resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(it.body))
		if err != nil {
			return fmt.Errorf("replay %s: %w", name, err)
		}
		var jr service.JobResponse
		derr := json.NewDecoder(resp.Body).Decode(&jr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if derr != nil {
			return fmt.Errorf("replay %s: decode (HTTP %d): %w", name, resp.StatusCode, derr)
		}
		if resp.StatusCode != http.StatusOK || jr.Status != service.StatusDone {
			return fmt.Errorf("ACKED RESULT LOST: %s now HTTP %d status %s: %s", name, resp.StatusCode, jr.Status, jr.Error)
		}
		got := sha256.Sum256(jr.Result)
		if hex.EncodeToString(got[:]) != sum {
			return fmt.Errorf("ACKED RESULT ALTERED: %s digest changed", name)
		}
		verified++
	}
	fmt.Printf("verify-acked:  %d distinct acknowledged results replayed byte-identically\n", verified)
	return nil
}

func fetchStats(client *http.Client, addr string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func report(samples []sample, failures int, wall time.Duration, workloadSize int) {
	lat := make([]int64, len(samples))
	cached := 0
	for i, s := range samples {
		lat[i] = s.ns
		if s.cached {
			cached++
		}
	}
	slices.Sort(lat)
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lat)-1))
		return time.Duration(lat[idx])
	}
	fmt.Printf("workload:      %d distinct instances\n", workloadSize)
	fmt.Printf("requests:      %d ok, %d failed in %s (%.1f req/s)\n",
		len(samples), failures, wall.Round(time.Millisecond), float64(len(samples))/wall.Seconds())
	fmt.Printf("latency:       p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), time.Duration(lat[len(lat)-1]).Round(time.Microsecond))
	fmt.Printf("client cache:  %d/%d hit responses (%.1f%%)\n",
		cached, len(samples), 100*float64(cached)/float64(len(samples)))
}
