// Command loadgen drives a live ecssd with a concurrent mixed-graph-family
// workload and reports throughput, latency percentiles, and the cache hit
// ratio. The workload is a matrix of (family, seed) instances generated
// with graph.ByFamily — the same deterministic construction the rest of the
// repository uses — so replaying a seed re-submits a content-identical
// graph and exercises the service's content-addressed cache.
//
// Gates (CI smoke uses these; each <0 value disables its check):
// -min-cache-hits fails unless the server reports at least that many
// memory-cache hits; -min-store-hits does the same for disk-store hits;
// -max-solves fails if the server ran MORE than that many solver
// invocations — `-max-solves 0` against a warm-restarted ecssd asserts that
// every request was served from the persisted store with zero new solves.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8080] [-duration 10s] [-concurrency 8]
//	        [-n 96] [-families er,grid,ring,random,ba] [-seeds 4]
//	        [-eps 0.25] [-min-cache-hits -1] [-min-store-hits -1]
//	        [-max-solves -1]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"twoecss/internal/graph"
	"twoecss/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type workItem struct {
	name string
	body []byte
}

type sample struct {
	ns     int64
	cached bool
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "ecssd base URL")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	n := flag.Int("n", 96, "vertices per instance")
	families := flag.String("families", "er,grid,ring,random,ba", "comma-separated graph families")
	seeds := flag.Int("seeds", 4, "seeds per family (workload matrix size = families x seeds)")
	eps := flag.Float64("eps", 0.25, "approximation slack")
	minCacheHits := flag.Int64("min-cache-hits", -1, "fail unless the server reports at least this many cache hits (<0: no check)")
	minStoreHits := flag.Int64("min-store-hits", -1, "fail unless the server reports at least this many disk-store hits (<0: no check)")
	maxSolves := flag.Int64("max-solves", -1, "fail if the server ran more than this many solves (<0: no check; 0 gates a warm restart)")
	flag.Parse()

	items, err := buildWorkload(*families, *n, *seeds, *eps)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	if err := waitHealthy(client, *addr, 15*time.Second); err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []sample
		failures int
		firstErr error
	)
	start := time.Now()
	deadline := start.Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var local []sample
			localFail := 0
			var localErr error
			for time.Now().Before(deadline) {
				it := items[rng.Intn(len(items))]
				t0 := time.Now()
				cached, err := postSolve(client, *addr, it.body)
				ns := time.Since(t0).Nanoseconds()
				if err != nil {
					localFail++
					if localErr == nil {
						localErr = fmt.Errorf("%s: %w", it.name, err)
					}
					continue
				}
				local = append(local, sample{ns: ns, cached: cached})
			}
			mu.Lock()
			samples = append(samples, local...)
			failures += localFail
			if firstErr == nil {
				firstErr = localErr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	if len(samples) == 0 {
		if firstErr != nil {
			return fmt.Errorf("no request succeeded: %w", firstErr)
		}
		return fmt.Errorf("no request completed within %s", *duration)
	}
	report(samples, failures, wall, len(items))
	if firstErr != nil {
		fmt.Printf("first error:   %v\n", firstErr)
	}

	st, err := fetchStats(client, *addr)
	if err != nil {
		return fmt.Errorf("fetch server stats: %w", err)
	}
	fmt.Printf("server stats:  %d submitted, %d solves, %d cache hits, %d store hits, %d coalesced, %d failed, pool %d/%d reuse/create\n",
		st.Submitted, st.Solves, st.CacheHits, st.StoreHits, st.Coalesced, st.Failed, st.Pool.Reuses, st.Pool.Creates)
	if st.Store != nil {
		fmt.Printf("server store:  %d entries / %d bytes, %d hits, %d misses, %d puts, %d evictions, %d corruptions\n",
			st.Store.Entries, st.Store.Bytes, st.Store.Hits, st.Store.Misses,
			st.Store.Puts, st.Store.Evictions, st.Store.Corruptions)
	}
	if *minCacheHits >= 0 && st.CacheHits < *minCacheHits {
		return fmt.Errorf("server reports %d cache hits, need >= %d", st.CacheHits, *minCacheHits)
	}
	if *minStoreHits >= 0 && st.StoreHits < *minStoreHits {
		return fmt.Errorf("server reports %d store hits, need >= %d", st.StoreHits, *minStoreHits)
	}
	if *maxSolves >= 0 && st.Solves > *maxSolves {
		return fmt.Errorf("server ran %d solves, allowed <= %d (cold-served traffic on a warm restart)", st.Solves, *maxSolves)
	}
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}

func buildWorkload(families string, n, seeds int, eps float64) ([]workItem, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("need seeds >= 1, got %d", seeds)
	}
	var items []workItem
	for _, fam := range strings.Split(families, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			g, err := graph.ByFamily(fam, n, seed)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(service.SolveRequest{
				Graph:   service.WireGraph(g),
				Options: service.OptionsWire{Eps: eps},
				Wait:    true,
			})
			if err != nil {
				return nil, err
			}
			items = append(items, workItem{name: fmt.Sprintf("%s/n%d/s%d", fam, g.N, seed), body: body})
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty workload (families %q)", families)
	}
	return items, nil
}

func waitHealthy(client *http.Client, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ecssd at %s not healthy within %s (last: %v)", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postSolve(client *http.Client, addr string, body []byte) (cached bool, err error) {
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var jr service.JobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	// Drain to EOF so the connection is reused; otherwise chunked responses
	// force a fresh dial per request and skew the latency measurement.
	io.Copy(io.Discard, resp.Body)
	if err != nil {
		return false, fmt.Errorf("decode response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, jr.Error)
	}
	if jr.Status != service.StatusDone {
		return false, fmt.Errorf("job %s finished %s: %s", jr.JobID, jr.Status, jr.Error)
	}
	return jr.Cached, nil
}

func fetchStats(client *http.Client, addr string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func report(samples []sample, failures int, wall time.Duration, workloadSize int) {
	lat := make([]int64, len(samples))
	cached := 0
	for i, s := range samples {
		lat[i] = s.ns
		if s.cached {
			cached++
		}
	}
	slices.Sort(lat)
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lat)-1))
		return time.Duration(lat[idx])
	}
	fmt.Printf("workload:      %d distinct instances\n", workloadSize)
	fmt.Printf("requests:      %d ok, %d failed in %s (%.1f req/s)\n",
		len(samples), failures, wall.Round(time.Millisecond), float64(len(samples))/wall.Seconds())
	fmt.Printf("latency:       p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), time.Duration(lat[len(lat)-1]).Round(time.Microsecond))
	fmt.Printf("client cache:  %d/%d hit responses (%.1f%%)\n",
		cached, len(samples), 100*float64(cached)/float64(len(samples)))
}
