// Command gengraph emits a generated 2-edge-connected weighted instance as
// an edge list ("u v w" per line, first line "n m"), for use by external
// tools or regression corpora.
//
// Usage:
//
//	gengraph [-family er|grid|ring|treeleafcycle|random] [-n 256] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"twoecss/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	fam := flag.String("family", "er", "graph family")
	n := flag.Int("n", 256, "number of vertices")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := graph.DefaultGenConfig(*seed)
	var g *graph.Graph
	switch *fam {
	case "er":
		p := 4 * math.Log(float64(*n)) / float64(*n)
		g = graph.ErdosRenyi(*n, p, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return err
		}
	case "grid":
		side := int(math.Sqrt(float64(*n)))
		g = graph.Grid(side, side, cfg)
	case "ring":
		g = graph.RingWithChords(*n, *n/4, cfg)
	case "treeleafcycle":
		depth := 1
		for (1<<(depth+2))-1 <= *n {
			depth++
		}
		g = graph.TreeLeafCycle(depth, cfg)
	case "random":
		g = graph.RandomSpanningTreePlus(*n, *n, cfg)
		if _, err := graph.Ensure2EC(g, cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown family %q", *fam)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%d %d\n", g.N, g.M())
	for _, e := range g.Edges {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, e.W)
	}
	return nil
}
