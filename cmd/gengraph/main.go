// Command gengraph emits a generated 2-edge-connected weighted instance as
// an edge list ("u v w" per line, first line "n m"), for use by external
// tools or regression corpora.
//
// Usage:
//
//	gengraph [-family er|grid|ring|treeleafcycle|random|ba] [-n 256] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"twoecss/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	fam := flag.String("family", "er", "graph family ("+strings.Join(graph.Families(), "|")+")")
	n := flag.Int("n", 256, "number of vertices")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	g, err := graph.ByFamily(*fam, *n, *seed)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%d %d\n", g.N, g.M())
	for _, e := range g.Edges {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, e.W)
	}
	return nil
}
