// Command ecssd is the long-running 2-ECSS solver service: it fronts the
// Theorem 1.1 pipeline with a bounded job queue, a solver worker pool
// reusing pooled CONGEST networks, and a content-addressed result cache
// (internal/service, DESIGN.md §7), exposed as an HTTP JSON API:
//
//	POST /v1/solve     submit a solve ({"graph":{"n":..,"edges":[[u,v,w],..]},
//	                   "options":{"eps":..,"variant":..,"mst":..,"root":..},
//	                   "wait":true})
//	GET  /v1/jobs/{id} job status, progress phase, and result
//	GET  /v1/jobs/{id}/stream  live SSE of the job's lifecycle events
//	GET  /v1/jobs/{id}/trace   recorded per-job event trace (JSON)
//	GET  /v1/jobs/{id}/profile engine round profile and per-stage costs (JSON)
//	GET  /v1/events    SSE firehose of every lifecycle event (?types= filter)
//	GET  /v1/stats     queue/cache/pool counters
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness
//
// With -store-dir the result cache is disk-backed and crash-safe
// (internal/store, DESIGN.md §8): completed solves are written through to
// content-addressed files, a restart replays the store's index — verifying
// checksums and quarantining corrupt entries — and pre-warms the memory
// cache, so previously solved instances are served byte-identically with no
// new solves. -store-max-bytes bounds the on-disk size via LRU eviction.
// Warm reads are served zero-copy from mmapped entry files. With
// -store-read-only the directory is never mutated, so N shards can serve
// one warm store concurrently (behind ecssrouter, say) while sharing the
// mapped pages.
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops (503), queued
// jobs finish, the network pool is released, pending store writes are
// flushed, then the process exits 0.
//
// For chaos testing, -faults (or the ECSS_FAULTS environment variable; the
// flag wins) arms the internal/faults injection plan — see that package for
// the spec grammar — and -reverify starts the store's background reverifier,
// which periodically re-checks quarantined entries, restoring the ones that
// verify clean and deleting the ones that fail twice (DESIGN.md §9).
//
// Usage:
//
//	ecssd [-addr :8080] [-queue 256] [-workers N] [-cache 512] [-pool N]
//	      [-net-workers 1] [-drain-timeout 30s] [-debug-addr ADDR]
//	      [-store-dir DIR] [-store-max-bytes 268435456] [-reverify 0]
//	      [-profile-rounds 512] [-slo-latency 2s]
//	      [-faults "solve.stage:panic,p=0.01;store.fsync:error,p=0.05"]
//
// -debug-addr starts a second listener serving net/http/pprof (profiles,
// goroutine dumps) away from the public API port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"twoecss/internal/faults"
	"twoecss/internal/obs"
	"twoecss/internal/service"
	"twoecss/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecssd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	workers := flag.Int("workers", 0, "solver workers (<=0: GOMAXPROCS)")
	cache := flag.Int("cache", 512, "result cache entries")
	pool := flag.Int("pool", 0, "idle network pool entries (<=0: workers)")
	netWorkers := flag.Int("net-workers", 1, "engine workers per solve")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	storeDir := flag.String("store-dir", "", "disk-backed result store directory (empty: results are not persisted)")
	storeMaxBytes := flag.Int64("store-max-bytes", 256<<20, "on-disk store budget, LRU-evicted (<=0: unbounded)")
	storeReadOnly := flag.Bool("store-read-only", false, "open -store-dir read-only: serve a warm directory without writing, evicting, or quarantining (shareable across shards)")
	reverify := flag.Duration("reverify", 0, "background store reverifier interval (0: disabled)")
	profileRounds := flag.Int("profile-rounds", 512, "per-job engine round profile samples (<0: profiling disabled)")
	sloLatency := flag.Duration("slo-latency", 2*time.Second, "solve-latency SLO threshold for burn-rate exposition")
	debugAddr := flag.String("debug-addr", "", "pprof/debug listen address (empty: disabled)")
	faultSpec := flag.String("faults", "", "fault-injection plan (overrides ECSS_FAULTS; see internal/faults)")
	flag.Parse()

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("ECSS_FAULTS")
	}
	if spec != "" {
		if err := faults.Arm(spec); err != nil {
			return err
		}
		log.Printf("ecssd: fault injection ARMED: %v", faults.Points())
	}

	// One observability hub per process: the store and the service publish
	// to the same bus, so /v1/events interleaves both layers' lifecycles.
	o := obs.New()

	if *storeReadOnly && *storeDir == "" {
		return errors.New("-store-read-only requires -store-dir")
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.OpenWith(*storeDir, store.Options{
			MaxBytes:      *storeMaxBytes,
			ReverifyEvery: *reverify,
			Bus:           o.Bus,
			ReadOnly:      *storeReadOnly,
		})
		if err != nil {
			return fmt.Errorf("open store %s: %w", *storeDir, err)
		}
		mode := ""
		if *storeReadOnly {
			mode = " (read-only)"
		}
		sst := st.Stats()
		log.Printf("ecssd: store %s%s: %d entries / %d bytes warm, %d quarantined",
			*storeDir, mode, sst.Entries, sst.Bytes, sst.Corruptions)
	}
	svc := service.New(service.Config{
		QueueDepth:    *queue,
		Workers:       *workers,
		CacheEntries:  *cache,
		PoolEntries:   *pool,
		NetWorkers:    *netWorkers,
		Store:         st, // service owns it: Drain flushes and closes
		Obs:           o,
		ProfileRounds: *profileRounds,
		SLOLatency:    *sloLatency,
	})
	if *debugAddr != "" {
		go func() {
			log.Printf("ecssd: debug/pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("ecssd: debug listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Bound header reads and idle keep-alives so a stalled client
		// cannot hold Shutdown past the drain budget. No overall
		// Read/WriteTimeout: wait=true solve requests legitimately block.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := svc.Config()
	log.Printf("ecssd: listening on %s (workers=%d queue=%d cache=%d pool=%d net-workers=%d)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.CacheEntries, cfg.PoolEntries, cfg.NetWorkers)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Printf("ecssd: signal received, draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the service first so in-flight wait=true requests complete as
	// their jobs finish and new submissions are rejected with 503; then
	// close the listener and idle connections.
	if err := svc.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	stats := svc.Stats()
	log.Printf("ecssd: drained clean: %d submitted, %d solves, %d cache hits, %d store hits, %d coalesced, %d failed",
		stats.Submitted, stats.Solves, stats.CacheHits, stats.StoreHits, stats.Coalesced, stats.Failed)
	if stats.Store != nil {
		log.Printf("ecssd: store flushed: %d entries / %d bytes on disk, %d puts, %d evictions, %d corruptions, %d quarantined, %d restored",
			stats.Store.Entries, stats.Store.Bytes, stats.Store.Puts, stats.Store.Evictions,
			stats.Store.Corruptions, stats.Store.Quarantined, stats.Store.Restored)
	}
	return nil
}
