// Package main_test holds one testing.B benchmark per reproduction
// experiment (E1-E12, see DESIGN.md / EXPERIMENTS.md). Each benchmark
// regenerates its experiment table and reports domain metrics
// (rounds, certified ratios) via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the full evaluation.
package main_test

import (
	"strconv"
	"testing"

	"twoecss/internal/experiments"
)

func reportRatio(b *testing.B, t *experiments.Table, col string) {
	b.Helper()
	idx := -1
	for i, c := range t.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 || len(t.Rows) == 0 {
		return
	}
	worst, sum, count := 0.0, 0.0, 0
	for _, r := range t.Rows {
		v, err := strconv.ParseFloat(r[idx], 64)
		if err != nil {
			continue
		}
		if v > worst {
			worst = v
		}
		sum += v
		count++
	}
	if count == 0 {
		return
	}
	b.ReportMetric(worst, "worst-"+col)
	b.ReportMetric(sum/float64(count), "mean-"+col)
}

func BenchmarkE1_Ecss5ApproxCertified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E1([]int{64, 128}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "certified-ratio")
	}
}

func BenchmarkE2_TapApproxVsExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2([]int{40, 80}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "ratio")
		reportRatio(b, t, "ratio(G')")
	}
}

func BenchmarkE3_RoundScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3([]int{64, 128, 256}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "normalized")
	}
}

func BenchmarkE4_ShortcutTap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4([]int{63}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "alpha+beta")
	}
}

func BenchmarkE5_Layering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5([]int{64, 256, 1024}, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_UnweightedTap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E6([]int{32, 64}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "ratio<=2")
	}
}

func BenchmarkE7_ReverseDeleteAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7([]int{48}, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8(5, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "ours/opt")
		reportRatio(b, t, "greedy/opt")
	}
}

func BenchmarkE9_PetalStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9(300, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_CoverageMultiplicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10([]int{40, 80}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t.Rows {
			if r[3] != "true" || r[4] != "true" {
				b.Fatalf("Lemma 4.18 violated: %v", r)
			}
		}
	}
}

func BenchmarkE11_ShortcutTools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E11([]int{63}, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportRatio(b, t, "max-alpha+beta")
	}
}

func BenchmarkE12_CoverageDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12(2, 60, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t.Rows {
			if r[3] != "0" || r[4] != "0" {
				b.Fatalf("detector errors: %v", r)
			}
		}
	}
}
